"""Partially-synchronous network fault model.

The paper's convergence analysis assumes perfect synchrony: every honest
gradient arrives in its round, so silence alone proves faultiness. This
module drops that assumption in a controlled, *deterministic* way. A
:class:`PartiallySynchronousNetwork` can

- **drop** a message outright,
- **delay** it by a bounded number of rounds (the partial-synchrony bound
  ``B``),
- **duplicate** it (the copy possibly arriving later than the original),
- **reorder** deliveries within a round,
- **corrupt** a gradient payload in place (NaN-poison, Inf-poison, or a
  single bit-flip — what a flaky link or DMA error does to real traffic),
- model **stragglers** (periodic extra latency on an agent's uplink) and
  **crash-recovery** agents (an endpoint that is down for a window of
  rounds and then returns).

Every fault decision is a pure function of ``(seed, message coordinates)``
via :func:`repro.system.faultinjection.deterministic_draw` — the same
determinism discipline the infrastructure chaos harness uses. Two
consequences matter:

- a degraded run is exactly replayable from its seed, and
- a **checkpoint/resume** of a degraded run replays identical faults
  without persisting any RNG stream position (there is none).

Faults compose per agent through a :class:`FaultProfile`; the model applies
a sender's profile to its uplink traffic and a receiver's profile to its
downlink traffic, so "agent 3 is a straggler behind a lossy link" is one
profile attached to one id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.system.faultinjection import (
    deterministic_choice,
    deterministic_draw,
    deterministic_draw_array,
)
from repro.system.messages import GradientMessage, Message
from repro.system.network import DeliveryRecord, SynchronousNetwork
from repro.utils.validation import check_probability

__all__ = [
    "CORRUPTION_MODES",
    "ChurnWindow",
    "FaultProfile",
    "LinkFaultModel",
    "LinkFaultProfile",
    "NetworkFaultModel",
    "PartiallySynchronousNetwork",
    "PartitionWindow",
    "corrupt_gradient",
    "corrupt_payload_rows",
]

#: Supported payload corruption modes.
CORRUPTION_MODES = ("nan", "inf", "bitflip")


@dataclass(frozen=True)
class FaultProfile:
    """Composable per-agent network fault knobs.

    All probabilities are per message; all schedules are deterministic in
    the round index, in the style of the :mod:`repro.system.faultinjection`
    policies (``FailEveryNth`` and friends).

    Attributes
    ----------
    drop_prob:
        Probability a message is lost.
    delay_prob / max_delay:
        Probability a message is delayed, and the inclusive bound ``B`` on
        the delay in rounds (delays are uniform on ``{1, …, B}``). The
        bound is what makes the model *partially* synchronous rather than
        asynchronous.
    duplicate_prob:
        Probability the network re-delivers a second copy of the message
        (possibly with its own delay draw).
    corrupt_prob / corrupt_mode:
        Probability a gradient payload is corrupted in flight and how:
        ``"nan"`` poisons one coordinate with NaN, ``"inf"`` with ±Inf,
        ``"bitflip"`` flips one bit of one float64 (which may yield a
        plausible-but-wrong finite value — the nastiest case).
    straggle_every / straggle_delay:
        Deterministic straggler schedule: on every ``straggle_every``-th
        round (indices ``k−1, 2k−1, …``, matching ``FailEveryNth``) the
        agent's uplink is ``straggle_delay`` rounds late.
    crash_round / recover_round:
        Crash-recovery window: the endpoint is down (sends and receives
        nothing) for rounds in ``[crash_round, recover_round)``; with
        ``recover_round=None`` the crash is permanent.
    """

    drop_prob: float = 0.0
    delay_prob: float = 0.0
    max_delay: int = 0
    duplicate_prob: float = 0.0
    corrupt_prob: float = 0.0
    corrupt_mode: str = "nan"
    straggle_every: int = 0
    straggle_delay: int = 1
    crash_round: Optional[int] = None
    recover_round: Optional[int] = None

    def __post_init__(self):
        for name in ("drop_prob", "delay_prob", "duplicate_prob", "corrupt_prob"):
            check_probability(getattr(self, name), name=name)
        if self.max_delay < 0:
            raise InvalidParameterError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.delay_prob > 0 and self.max_delay < 1:
            raise InvalidParameterError(
                "delay_prob > 0 requires max_delay >= 1 (the partial-synchrony bound)"
            )
        if self.corrupt_mode not in CORRUPTION_MODES:
            raise InvalidParameterError(
                f"corrupt_mode must be one of {CORRUPTION_MODES}, got {self.corrupt_mode!r}"
            )
        if self.straggle_every < 0:
            raise InvalidParameterError(
                f"straggle_every must be >= 0, got {self.straggle_every}"
            )
        if self.straggle_every > 0 and self.straggle_delay < 1:
            raise InvalidParameterError(
                f"straggle_delay must be >= 1, got {self.straggle_delay}"
            )
        if self.crash_round is not None and self.crash_round < 0:
            raise InvalidParameterError(
                f"crash_round must be non-negative, got {self.crash_round}"
            )
        if self.recover_round is not None:
            if self.crash_round is None:
                raise InvalidParameterError("recover_round requires crash_round")
            if self.recover_round <= self.crash_round:
                raise InvalidParameterError(
                    f"recover_round ({self.recover_round}) must exceed "
                    f"crash_round ({self.crash_round})"
                )

    @property
    def is_null(self) -> bool:
        """Whether this profile injects no fault at all."""
        return (
            self.drop_prob == 0.0
            and self.delay_prob == 0.0
            and self.duplicate_prob == 0.0
            and self.corrupt_prob == 0.0
            and self.straggle_every == 0
            and self.crash_round is None
        )

    @property
    def preserves_synchrony(self) -> bool:
        """Whether silence under this profile still proves faultiness.

        Any fault that can make an *honest* agent's reply miss its round —
        a drop, a delay, a straggle, a crash window — breaks the
        synchrony proof; duplication and corruption do not.
        """
        return (
            self.drop_prob == 0.0
            and self.delay_prob == 0.0
            and self.straggle_every == 0
            and self.crash_round is None
        )

    def is_down(self, round_index: int) -> bool:
        """Whether the endpoint is inside its crash-recovery window."""
        if self.crash_round is None or round_index < self.crash_round:
            return False
        return self.recover_round is None or round_index < self.recover_round

    def straggles_at(self, round_index: int) -> bool:
        """Whether the deterministic straggler schedule fires this round."""
        if self.straggle_every <= 0:
            return False
        return round_index % self.straggle_every == self.straggle_every - 1

    def worst_case_delay(self) -> int:
        """The largest delay (in rounds) this profile can inflict."""
        delay = self.max_delay if self.delay_prob > 0 else 0
        straggle = self.straggle_delay if self.straggle_every > 0 else 0
        return delay + straggle


#: The profile of an agent with no configured faults.
NULL_PROFILE = FaultProfile()


@dataclass(frozen=True)
class NetworkFaultModel:
    """Per-agent fault profiles plus the model-wide determinism seed.

    Attributes
    ----------
    profiles:
        Map from agent id to its :class:`FaultProfile`; absent agents get
        :data:`NULL_PROFILE`.
    seed:
        Seed of every deterministic draw the model makes.
    reorder:
        When set, each round's due deliveries are permuted by a seeded
        shuffle instead of arriving in canonical order.
    """

    profiles: Mapping[int, FaultProfile] = field(default_factory=dict)
    seed: int = 0
    reorder: bool = False

    def __post_init__(self):
        object.__setattr__(
            self,
            "profiles",
            {int(k): v for k, v in dict(self.profiles).items()},
        )
        for agent_id, profile in self.profiles.items():
            if not isinstance(profile, FaultProfile):
                raise InvalidParameterError(
                    f"profiles[{agent_id}] must be a FaultProfile, "
                    f"got {type(profile).__name__}"
                )

    @classmethod
    def uniform(
        cls,
        agent_ids: Iterable[int],
        profile: FaultProfile,
        seed: int = 0,
        reorder: bool = False,
    ) -> "NetworkFaultModel":
        """One profile applied to every listed agent."""
        return cls(
            profiles={int(i): profile for i in agent_ids}, seed=seed, reorder=reorder
        )

    def profile(self, agent_id: int) -> FaultProfile:
        return self.profiles.get(int(agent_id), NULL_PROFILE)

    @property
    def is_null(self) -> bool:
        """Whether the model injects no fault (perfect synchrony)."""
        return all(profile.is_null for profile in self.profiles.values())

    @property
    def preserves_synchrony(self) -> bool:
        """Whether silence is still proof of faultiness under this model."""
        return all(p.preserves_synchrony for p in self.profiles.values())

    def delay_bound(self) -> int:
        """The model-wide bound ``B`` on message delay, in rounds."""
        if not self.profiles:
            return 0
        return max(p.worst_case_delay() for p in self.profiles.values())

    def staleness_bound(self) -> int:
        """Worst-case age of an honest gradient when it finally arrives.

        A round-``t`` broadcast can reach an agent ``B`` rounds late and
        the reply can take another ``B`` rounds back, so the server may
        receive an honest gradient up to ``2B`` rounds after the round it
        was computed for. A model with drops (but no delays) still
        warrants a bound of one round of reuse, so a single lost reply
        does not cost an agent its round.
        """
        bound = 2 * self.delay_bound()
        if bound == 0 and not self.is_null:
            return 1
        return bound


def corrupt_gradient(
    gradient: np.ndarray, mode: str, seed: int, *key
) -> np.ndarray:
    """Deterministically corrupt one coordinate of a gradient payload.

    The damaged coordinate (and, for ``"bitflip"``, the damaged bit) is a
    pure function of ``(seed, key)``; the input array is never modified.
    """
    if mode not in CORRUPTION_MODES:
        raise InvalidParameterError(
            f"mode must be one of {CORRUPTION_MODES}, got {mode!r}"
        )
    damaged = np.array(gradient, dtype=float, copy=True)
    if damaged.size == 0:
        return damaged
    position = deterministic_choice(seed, 0, damaged.size - 1, "corrupt-pos", *key)
    if mode == "nan":
        damaged[position] = np.nan
    elif mode == "inf":
        sign = 1.0 if deterministic_draw(seed, "corrupt-sign", *key) < 0.5 else -1.0
        damaged[position] = sign * np.inf
    else:  # bitflip
        bit = deterministic_choice(seed, 0, 63, "corrupt-bit", *key)
        bits = damaged.view(np.uint64)
        bits[position] ^= np.uint64(1) << np.uint64(bit)
    return damaged


@dataclass(frozen=True)
class _InFlight:
    """One queued delivery: a message bound for ``receiver`` at ``due``."""

    due: int
    receiver: int
    sequence: int
    message: Message
    copy_index: int = 0


class PartiallySynchronousNetwork(SynchronousNetwork):
    """A round-based network whose deliveries obey a fault model.

    Unlike the synchronous parent — where :meth:`deliver` resolves a
    message immediately — this network separates **submission** from
    **collection**: :meth:`submit` applies the sender-or-receiver profile
    (drop, delay, duplicate, corrupt) and queues surviving copies;
    :meth:`collect` releases the copies due in the current round, in a
    deterministic (optionally seeded-shuffled) order. With a null fault
    model every submission is collectable in its own round in submission
    order, so the schedule degenerates to the synchronous one.

    Traffic accounting extends the parent's: ``messages_delayed``,
    ``messages_duplicated``, and ``messages_corrupted`` count fault
    activity, and the delivery log records each copy when it is collected.

    The queue (plus counters) round-trips through :meth:`state` /
    :meth:`restore_state` so a checkpointed run can resume with its
    in-flight messages intact; fault draws need no state because they are
    pure functions of the model seed.
    """

    def __init__(
        self,
        fault_model: Optional[NetworkFaultModel] = None,
        log_capacity: int = 10_000,
    ):
        super().__init__(drop_probabilities=None, rng=None, log_capacity=log_capacity)
        self._model = fault_model if fault_model is not None else NetworkFaultModel()
        self._queue: List[_InFlight] = []
        self._sequence = 0
        self._messages_delayed = 0
        self._messages_duplicated = 0
        self._messages_corrupted = 0

    @property
    def fault_model(self) -> NetworkFaultModel:
        return self._model

    @property
    def messages_delayed(self) -> int:
        return self._messages_delayed

    @property
    def messages_duplicated(self) -> int:
        return self._messages_duplicated

    @property
    def messages_corrupted(self) -> int:
        return self._messages_corrupted

    @property
    def pending_count(self) -> int:
        """Queued copies not yet collected."""
        return len(self._queue)

    def traffic_summary(self) -> Dict[str, int]:
        summary = super().traffic_summary()
        summary.update(
            messages_delayed=self._messages_delayed,
            messages_duplicated=self._messages_duplicated,
            messages_corrupted=self._messages_corrupted,
        )
        return summary

    # ------------------------------------------------------------------
    # Fault application
    # ------------------------------------------------------------------

    def _endpoint_profile(self, message: Message, receiver: int) -> Tuple[int, FaultProfile]:
        """The agent-side endpoint whose profile governs this message.

        Server→agent traffic is shaped by the receiving agent's link;
        agent→server traffic by the sending agent's. (The trusted server
        itself is assumed reliable, as in the paper.)
        """
        endpoint = message.sender if message.sender >= 0 else int(receiver)
        return endpoint, self._model.profile(endpoint)

    def _record_drop(self, message: Message, receiver: int) -> None:
        record = DeliveryRecord(
            round_index=message.round_index,
            sender=message.sender,
            receiver=int(receiver),
            message_type=type(message).__name__,
            size_bytes=message.size_bytes(),
            dropped=True,
        )
        self._log.append(record)
        self._records_seen += 1
        self._messages_dropped += 1
        self._bytes_dropped += record.size_bytes

    def submit(self, message: Message, receiver: int, current_round: int) -> None:
        """Hand one message to the network in ``current_round``.

        Applies the governing endpoint profile and queues zero, one, or
        two copies for future collection.
        """
        endpoint, profile = self._endpoint_profile(message, receiver)
        key = (endpoint, int(receiver), message.sender, message.round_index, current_round)
        seed = self._model.seed

        if profile.is_down(current_round):
            self._record_drop(message, receiver)
            return
        if profile.drop_prob > 0 and deterministic_draw(seed, "drop", *key) < profile.drop_prob:
            self._record_drop(message, receiver)
            return

        delay = 0
        if profile.straggle_every > 0 and message.sender >= 0 and profile.straggles_at(current_round):
            delay += profile.straggle_delay
        if profile.delay_prob > 0 and deterministic_draw(seed, "delay", *key) < profile.delay_prob:
            delay += deterministic_choice(seed, 1, profile.max_delay, "delay-len", *key)
        if delay > 0:
            self._messages_delayed += 1

        payload = message
        if (
            profile.corrupt_prob > 0
            and isinstance(message, GradientMessage)
            and deterministic_draw(seed, "corrupt", *key) < profile.corrupt_prob
        ):
            payload = GradientMessage(
                sender=message.sender,
                round_index=message.round_index,
                gradient=corrupt_gradient(
                    message.gradient, profile.corrupt_mode, seed, *key
                ),
            )
            self._messages_corrupted += 1

        self._enqueue(payload, receiver, current_round + delay, copy_index=0)

        if profile.duplicate_prob > 0 and deterministic_draw(seed, "dup", *key) < profile.duplicate_prob:
            extra = 0
            if profile.max_delay > 0:
                extra = deterministic_choice(seed, 0, profile.max_delay, "dup-delay", *key)
            self._messages_duplicated += 1
            self._enqueue(payload, receiver, current_round + delay + extra, copy_index=1)

    def _enqueue(self, message: Message, receiver: int, due: int, copy_index: int) -> None:
        self._queue.append(
            _InFlight(
                due=int(due),
                receiver=int(receiver),
                sequence=self._sequence,
                message=message,
                copy_index=copy_index,
            )
        )
        self._sequence += 1

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def collect(self, receiver: int, current_round: int) -> List[Message]:
        """Release the copies due for ``receiver`` by ``current_round``.

        Due copies arrive sorted by ``(message round, sender, submission
        sequence)`` — a canonical order so results are reproducible — or in
        a deterministic seeded shuffle when the model's ``reorder`` flag is
        set. Each released copy is logged and counted as delivered.
        """
        receiver = int(receiver)
        due = [e for e in self._queue if e.receiver == receiver and e.due <= current_round]
        if not due:
            return []
        self._queue = [
            e for e in self._queue if not (e.receiver == receiver and e.due <= current_round)
        ]
        due.sort(key=lambda e: (e.message.round_index, e.message.sender, e.sequence))
        if self._model.reorder and len(due) > 1:
            order = sorted(
                range(len(due)),
                key=lambda i: deterministic_draw(
                    self._model.seed, "reorder", current_round, receiver, i
                ),
            )
            due = [due[i] for i in order]
        released: List[Message] = []
        for entry in due:
            record = DeliveryRecord(
                round_index=entry.message.round_index,
                sender=entry.message.sender,
                receiver=receiver,
                message_type=type(entry.message).__name__,
                size_bytes=entry.message.size_bytes(),
                dropped=False,
            )
            self._log.append(record)
            self._records_seen += 1
            self._messages_delivered += 1
            self._bytes_delivered += record.size_bytes
            released.append(entry.message)
        return released

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state(self) -> Dict:
        """JSON-serializable snapshot of queue and counters.

        The delivery log is deliberately excluded: it is diagnostics, not
        execution state, and resumed runs only need counters to keep the
        traffic totals consistent.
        """
        return {
            "sequence": self._sequence,
            "queue": [
                {
                    "due": e.due,
                    "receiver": e.receiver,
                    "sequence": e.sequence,
                    "copy_index": e.copy_index,
                    "kind": type(e.message).__name__,
                    "sender": e.message.sender,
                    "round_index": e.message.round_index,
                    "payload": self._payload_of(e.message),
                }
                for e in self._queue
            ],
            "counters": {
                "messages_delivered": self._messages_delivered,
                "messages_dropped": self._messages_dropped,
                "bytes_delivered": self._bytes_delivered,
                "bytes_dropped": self._bytes_dropped,
                "messages_delayed": self._messages_delayed,
                "messages_duplicated": self._messages_duplicated,
                "messages_corrupted": self._messages_corrupted,
                "records_seen": self._records_seen,
            },
        }

    @staticmethod
    def _payload_of(message: Message) -> Optional[List]:
        if isinstance(message, GradientMessage):
            # float(hex) round-trips every float64 bit pattern; plain JSON
            # floats cannot carry NaN/Inf, which corrupted payloads contain.
            return [float(v).hex() for v in np.asarray(message.gradient, dtype=float)]
        from repro.system.messages import EstimateBroadcast

        if isinstance(message, EstimateBroadcast):
            return [float(v).hex() for v in np.asarray(message.estimate, dtype=float)]
        return None

    def restore_state(self, state: Dict) -> None:
        """Restore a snapshot produced by :meth:`state`."""
        from repro.system.messages import EstimateBroadcast

        self._sequence = int(state["sequence"])
        counters = state["counters"]
        self._messages_delivered = int(counters["messages_delivered"])
        self._messages_dropped = int(counters["messages_dropped"])
        self._bytes_delivered = int(counters["bytes_delivered"])
        self._bytes_dropped = int(counters["bytes_dropped"])
        self._messages_delayed = int(counters["messages_delayed"])
        self._messages_duplicated = int(counters["messages_duplicated"])
        self._messages_corrupted = int(counters["messages_corrupted"])
        self._records_seen = int(counters["records_seen"])
        queue: List[_InFlight] = []
        for entry in state["queue"]:
            payload = (
                None
                if entry["payload"] is None
                else np.array([float.fromhex(v) for v in entry["payload"]])
            )
            if entry["kind"] == "GradientMessage":
                message: Message = GradientMessage(
                    sender=entry["sender"],
                    round_index=entry["round_index"],
                    gradient=payload,
                )
            elif entry["kind"] == "EstimateBroadcast":
                message = EstimateBroadcast(
                    sender=entry["sender"],
                    round_index=entry["round_index"],
                    estimate=payload,
                )
            else:
                raise InvalidParameterError(
                    f"cannot restore in-flight message of kind {entry['kind']!r}"
                )
            queue.append(
                _InFlight(
                    due=int(entry["due"]),
                    receiver=int(entry["receiver"]),
                    sequence=int(entry["sequence"]),
                    message=message,
                    copy_index=int(entry["copy_index"]),
                )
            )
        self._queue = queue


# ----------------------------------------------------------------------
# Link-level faults (sparse-topology decentralized architecture)
# ----------------------------------------------------------------------
#
# The classes above model faults per *agent* — the right granularity for
# the server architecture, where every message shares one logical channel.
# On a sparse graph the failure unit is the *link*: one edge can be lossy
# while the rest of a neighborhood is clean, a cut can split the graph
# into components, and an agent can churn (leave and rejoin) without any
# Byzantine behaviour. ``LinkFaultModel`` expresses those modes with the
# same determinism discipline: every draw is a pure function of
# ``(seed, tag, round, sender, receiver)`` via the vectorized
# :func:`repro.system.faultinjection.deterministic_draw_array`, so a run
# over 10k edges costs a few array ops per round and replays exactly.

#: Integer draw-domain tags (the vectorized mixer keys on integers).
_LINK_TAG_DROP = 101
_LINK_TAG_DELAY_GATE = 102
_LINK_TAG_DELAY_LAG = 103
_LINK_TAG_CORRUPT = 104
_LINK_TAG_CORRUPT_POS = 105
_LINK_TAG_CORRUPT_SIGN = 106
_LINK_TAG_CORRUPT_BIT = 107


@dataclass(frozen=True)
class LinkFaultProfile:
    """Per-link fault knobs: drop, bounded delay, payload corruption.

    The link analogue of :class:`FaultProfile`. All probabilities are per
    message per round; delays are uniform on ``{1, …, max_delay}`` when
    the delay gate fires, preserving partial synchrony with bound
    ``max_delay``.
    """

    drop_prob: float = 0.0
    delay_prob: float = 0.0
    max_delay: int = 0
    corrupt_prob: float = 0.0
    corrupt_mode: str = "nan"

    def __post_init__(self):
        for name in ("drop_prob", "delay_prob", "corrupt_prob"):
            check_probability(getattr(self, name), name=name)
        if self.max_delay < 0:
            raise InvalidParameterError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.delay_prob > 0 and self.max_delay < 1:
            raise InvalidParameterError(
                "delay_prob > 0 requires max_delay >= 1 (the partial-synchrony bound)"
            )
        if self.corrupt_mode not in CORRUPTION_MODES:
            raise InvalidParameterError(
                f"corrupt_mode must be one of {CORRUPTION_MODES}, got {self.corrupt_mode!r}"
            )

    @property
    def is_null(self) -> bool:
        return (
            self.drop_prob == 0.0
            and self.delay_prob == 0.0
            and self.corrupt_prob == 0.0
        )

    def worst_case_delay(self) -> int:
        return self.max_delay if self.delay_prob > 0 else 0


#: The profile of a link with no configured faults.
NULL_LINK_PROFILE = LinkFaultProfile()


@dataclass(frozen=True)
class PartitionWindow:
    """A scheduled graph cut: for rounds in ``[start, end)`` only edges
    *within* a group carry traffic.

    ``groups`` lists disjoint agent sets; agents in no listed group form
    one implicit rest group (so a two-way split needs only one listed
    group). Windows are closed-open in rounds, matching every other
    schedule in this module.
    """

    start: int
    end: int
    groups: Tuple[Tuple[int, ...], ...]

    def __post_init__(self):
        if self.start < 0 or self.end <= self.start:
            raise InvalidParameterError(
                f"partition window needs 0 <= start < end, got [{self.start}, {self.end})"
            )
        canonical = tuple(
            tuple(sorted(int(i) for i in group)) for group in self.groups
        )
        if not canonical or any(not group for group in canonical):
            raise InvalidParameterError("partition groups must be non-empty")
        seen: set = set()
        for group in canonical:
            for agent in group:
                if agent < 0:
                    raise InvalidParameterError(f"negative agent id {agent} in partition")
                if agent in seen:
                    raise InvalidParameterError(
                        f"agent {agent} appears in two partition groups"
                    )
                seen.add(agent)
        object.__setattr__(self, "groups", canonical)

    def active_at(self, round_index: int) -> bool:
        return self.start <= round_index < self.end

    def labels(self, n: int) -> np.ndarray:
        """Per-agent group label in ``[0, len(groups)]``; the implicit rest
        group gets label ``len(groups)``."""
        labels = np.full(int(n), len(self.groups), dtype=np.int64)
        for index, group in enumerate(self.groups):
            for agent in group:
                if agent >= n:
                    raise InvalidParameterError(
                        f"partition agent {agent} out of range for n={n}"
                    )
                labels[agent] = index
        return labels


@dataclass(frozen=True)
class ChurnWindow:
    """An agent that leaves at ``down_round`` and rejoins at ``up_round``.

    While down the agent neither sends, receives, nor steps — it is frozen,
    not Byzantine. ``up_round=None`` makes the departure permanent (a
    crash). Closed-open in rounds.
    """

    agent: int
    down_round: int
    up_round: Optional[int] = None

    def __post_init__(self):
        if self.agent < 0:
            raise InvalidParameterError(f"agent must be >= 0, got {self.agent}")
        if self.down_round < 0:
            raise InvalidParameterError(
                f"down_round must be >= 0, got {self.down_round}"
            )
        if self.up_round is not None and self.up_round <= self.down_round:
            raise InvalidParameterError(
                f"up_round ({self.up_round}) must exceed down_round ({self.down_round})"
            )

    def is_down(self, round_index: int) -> bool:
        if round_index < self.down_round:
            return False
        return self.up_round is None or round_index < self.up_round


@dataclass(frozen=True)
class LinkFaultModel:
    """Edge-granular faults: per-link profiles, partition schedule, churn.

    Attributes
    ----------
    default_profile:
        The :class:`LinkFaultProfile` applied to every edge without an
        override.
    link_profiles:
        ``{(sender, receiver): profile}`` overrides. Lookup tries the
        directed key first, then its reverse — so one entry faults an
        undirected edge, and two entries express an asymmetric link.
    partitions:
        :class:`PartitionWindow` schedule; at most one window may be
        active at any round (overlaps are rejected).
    churn:
        :class:`ChurnWindow` entries; an agent may have several disjoint
        windows.
    seed:
        Seed of every deterministic draw the model makes.
    """

    default_profile: LinkFaultProfile = NULL_LINK_PROFILE
    link_profiles: Mapping[Tuple[int, int], LinkFaultProfile] = field(
        default_factory=dict
    )
    partitions: Tuple[PartitionWindow, ...] = ()
    churn: Tuple[ChurnWindow, ...] = ()
    seed: int = 0

    def __post_init__(self):
        links = {}
        for key, profile in dict(self.link_profiles).items():
            u, v = (int(key[0]), int(key[1]))
            if u == v or u < 0 or v < 0:
                raise InvalidParameterError(f"invalid link key ({u}, {v})")
            if not isinstance(profile, LinkFaultProfile):
                raise InvalidParameterError(
                    f"link_profiles[{(u, v)}] must be a LinkFaultProfile, "
                    f"got {type(profile).__name__}"
                )
            links[(u, v)] = profile
        object.__setattr__(self, "link_profiles", links)
        windows = tuple(self.partitions)
        for window in windows:
            if not isinstance(window, PartitionWindow):
                raise InvalidParameterError(
                    f"partitions entries must be PartitionWindow, "
                    f"got {type(window).__name__}"
                )
        for a in range(len(windows)):
            for b in range(a + 1, len(windows)):
                if windows[a].start < windows[b].end and windows[b].start < windows[a].end:
                    raise InvalidParameterError(
                        f"partition windows [{windows[a].start}, {windows[a].end}) and "
                        f"[{windows[b].start}, {windows[b].end}) overlap"
                    )
        object.__setattr__(self, "partitions", windows)
        entries = tuple(self.churn)
        for entry in entries:
            if not isinstance(entry, ChurnWindow):
                raise InvalidParameterError(
                    f"churn entries must be ChurnWindow, got {type(entry).__name__}"
                )
        object.__setattr__(self, "churn", entries)

    # -- structure ------------------------------------------------------

    @property
    def is_null(self) -> bool:
        return (
            self.default_profile.is_null
            and all(p.is_null for p in self.link_profiles.values())
            and not self.partitions
            and not self.churn
        )

    def profile_for(self, sender: int, receiver: int) -> LinkFaultProfile:
        """The profile governing the directed link ``sender -> receiver``."""
        key = (int(sender), int(receiver))
        if key in self.link_profiles:
            return self.link_profiles[key]
        return self.link_profiles.get((key[1], key[0]), self.default_profile)

    def delay_bound(self) -> int:
        """The model-wide one-way delay bound ``B``, in rounds."""
        bound = self.default_profile.worst_case_delay()
        for profile in self.link_profiles.values():
            bound = max(bound, profile.worst_case_delay())
        return bound

    def staleness_bound(self) -> int:
        """Worst-case useful age of a neighbor state under this model.

        One-way traffic (states travel one hop), so the bound is ``B``; a
        model that only drops (or cuts/churns) still warrants one round of
        reuse so a single lost broadcast does not silence a neighbor.
        """
        bound = self.delay_bound()
        if bound == 0 and not self.is_null:
            return 1
        return bound

    def edge_parameters(
        self, senders: np.ndarray, receivers: np.ndarray
    ) -> Dict[str, np.ndarray]:
        """Per-edge fault parameters for a fixed directed edge list.

        Resolves profile lookups once so the per-round draw path is pure
        array arithmetic. ``corrupt_mode_index`` indexes into
        :data:`CORRUPTION_MODES`.
        """
        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        profiles = [
            self.profile_for(u, v)
            for u, v in zip(senders.tolist(), receivers.tolist())
        ]
        return {
            "drop_prob": np.array([p.drop_prob for p in profiles]),
            "delay_prob": np.array([p.delay_prob for p in profiles]),
            "max_delay": np.array([p.max_delay for p in profiles], dtype=np.int64),
            "corrupt_prob": np.array([p.corrupt_prob for p in profiles]),
            "corrupt_mode_index": np.array(
                [CORRUPTION_MODES.index(p.corrupt_mode) for p in profiles],
                dtype=np.int64,
            ),
        }

    # -- per-round draws ------------------------------------------------

    def down_mask(self, round_index: int, n: int) -> np.ndarray:
        """Boolean ``(n,)`` mask of agents inside a churn window this round."""
        mask = np.zeros(int(n), dtype=bool)
        for window in self.churn:
            if window.is_down(round_index):
                if window.agent >= n:
                    raise InvalidParameterError(
                        f"churn agent {window.agent} out of range for n={n}"
                    )
                mask[window.agent] = True
        return mask

    def partition_labels(self, round_index: int, n: int) -> Optional[np.ndarray]:
        """Group labels if a partition window is active this round, else None."""
        for window in self.partitions:
            if window.active_at(round_index):
                return window.labels(n)
        return None

    def draw_link_faults(
        self,
        round_index: int,
        senders: np.ndarray,
        receivers: np.ndarray,
        params: Optional[Dict[str, np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        """One round of link fault draws for a directed edge list.

        Returns ``{"dropped": bool(E,), "delay": int(E,), "corrupt":
        bool(E,)}``. Partition cuts and churn silences are folded into
        ``dropped``; ``delay`` is 0 for undelayed (or dropped) edges.
        Every draw is a pure function of ``(seed, tag, round, sender,
        receiver)`` — no state, exact replay.
        """
        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if params is None:
            params = self.edge_parameters(senders, receivers)
        dropped = (
            deterministic_draw_array(
                self.seed, _LINK_TAG_DROP, round_index, senders, receivers
            )
            < params["drop_prob"]
        )
        labels = self.partition_labels(round_index, int(max(senders.max(initial=-1), receivers.max(initial=-1))) + 1 if senders.size else 0)
        if labels is not None:
            dropped |= labels[senders] != labels[receivers]
        if self.churn:
            down = self.down_mask(
                round_index,
                int(max(senders.max(initial=-1), receivers.max(initial=-1))) + 1
                if senders.size
                else 0,
            )
            dropped |= down[senders] | down[receivers]
        delay_gate = (
            deterministic_draw_array(
                self.seed, _LINK_TAG_DELAY_GATE, round_index, senders, receivers
            )
            < params["delay_prob"]
        )
        lag_draw = deterministic_draw_array(
            self.seed, _LINK_TAG_DELAY_LAG, round_index, senders, receivers
        )
        delay = np.where(
            delay_gate & ~dropped,
            1 + (lag_draw * np.maximum(params["max_delay"], 1)).astype(np.int64),
            0,
        )
        delay = np.minimum(delay, params["max_delay"])
        corrupt = (
            deterministic_draw_array(
                self.seed, _LINK_TAG_CORRUPT, round_index, senders, receivers
            )
            < params["corrupt_prob"]
        ) & ~dropped
        return {"dropped": dropped, "delay": delay, "corrupt": corrupt}


def corrupt_payload_rows(
    payloads: np.ndarray,
    mode_indices: np.ndarray,
    seed: int,
    round_index: int,
    senders: np.ndarray,
    receivers: np.ndarray,
) -> np.ndarray:
    """Vectorized in-flight corruption of ``(m, d)`` payload rows.

    The batch sibling of :func:`corrupt_gradient`: row ``i`` (the payload
    crossing edge ``senders[i] -> receivers[i]`` at ``round_index``) has
    one deterministically-chosen coordinate damaged according to
    ``CORRUPTION_MODES[mode_indices[i]]``. Returns a copy; the damaged
    coordinate, Inf sign, and flipped bit are pure functions of
    ``(seed, round, edge)``.
    """
    damaged = np.array(payloads, dtype=float, copy=True)
    if damaged.size == 0 or damaged.shape[0] == 0:
        return damaged
    m, d = damaged.shape
    senders = np.asarray(senders, dtype=np.int64)
    receivers = np.asarray(receivers, dtype=np.int64)
    mode_indices = np.asarray(mode_indices, dtype=np.int64)
    rows = np.arange(m)
    positions = (
        deterministic_draw_array(
            seed, _LINK_TAG_CORRUPT_POS, round_index, senders, receivers
        )
        * d
    ).astype(np.int64)
    nan_rows = mode_indices == CORRUPTION_MODES.index("nan")
    inf_rows = mode_indices == CORRUPTION_MODES.index("inf")
    bit_rows = mode_indices == CORRUPTION_MODES.index("bitflip")
    damaged[rows[nan_rows], positions[nan_rows]] = np.nan
    if inf_rows.any():
        signs = np.where(
            deterministic_draw_array(
                seed,
                _LINK_TAG_CORRUPT_SIGN,
                round_index,
                senders[inf_rows],
                receivers[inf_rows],
            )
            < 0.5,
            1.0,
            -1.0,
        )
        damaged[rows[inf_rows], positions[inf_rows]] = signs * np.inf
    if bit_rows.any():
        bits = (
            deterministic_draw_array(
                seed,
                _LINK_TAG_CORRUPT_BIT,
                round_index,
                senders[bit_rows],
                receivers[bit_rows],
            )
            * 64
        ).astype(np.uint64)
        view = damaged.view(np.uint64)
        view[rows[bit_rows], positions[bit_rows]] ^= np.uint64(1) << bits
    return damaged
