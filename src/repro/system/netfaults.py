"""Partially-synchronous network fault model.

The paper's convergence analysis assumes perfect synchrony: every honest
gradient arrives in its round, so silence alone proves faultiness. This
module drops that assumption in a controlled, *deterministic* way. A
:class:`PartiallySynchronousNetwork` can

- **drop** a message outright,
- **delay** it by a bounded number of rounds (the partial-synchrony bound
  ``B``),
- **duplicate** it (the copy possibly arriving later than the original),
- **reorder** deliveries within a round,
- **corrupt** a gradient payload in place (NaN-poison, Inf-poison, or a
  single bit-flip — what a flaky link or DMA error does to real traffic),
- model **stragglers** (periodic extra latency on an agent's uplink) and
  **crash-recovery** agents (an endpoint that is down for a window of
  rounds and then returns).

Every fault decision is a pure function of ``(seed, message coordinates)``
via :func:`repro.system.faultinjection.deterministic_draw` — the same
determinism discipline the infrastructure chaos harness uses. Two
consequences matter:

- a degraded run is exactly replayable from its seed, and
- a **checkpoint/resume** of a degraded run replays identical faults
  without persisting any RNG stream position (there is none).

Faults compose per agent through a :class:`FaultProfile`; the model applies
a sender's profile to its uplink traffic and a receiver's profile to its
downlink traffic, so "agent 3 is a straggler behind a lossy link" is one
profile attached to one id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.system.faultinjection import deterministic_choice, deterministic_draw
from repro.system.messages import GradientMessage, Message
from repro.system.network import DeliveryRecord, SynchronousNetwork
from repro.utils.validation import check_probability

__all__ = [
    "CORRUPTION_MODES",
    "FaultProfile",
    "NetworkFaultModel",
    "PartiallySynchronousNetwork",
    "corrupt_gradient",
]

#: Supported payload corruption modes.
CORRUPTION_MODES = ("nan", "inf", "bitflip")


@dataclass(frozen=True)
class FaultProfile:
    """Composable per-agent network fault knobs.

    All probabilities are per message; all schedules are deterministic in
    the round index, in the style of the :mod:`repro.system.faultinjection`
    policies (``FailEveryNth`` and friends).

    Attributes
    ----------
    drop_prob:
        Probability a message is lost.
    delay_prob / max_delay:
        Probability a message is delayed, and the inclusive bound ``B`` on
        the delay in rounds (delays are uniform on ``{1, …, B}``). The
        bound is what makes the model *partially* synchronous rather than
        asynchronous.
    duplicate_prob:
        Probability the network re-delivers a second copy of the message
        (possibly with its own delay draw).
    corrupt_prob / corrupt_mode:
        Probability a gradient payload is corrupted in flight and how:
        ``"nan"`` poisons one coordinate with NaN, ``"inf"`` with ±Inf,
        ``"bitflip"`` flips one bit of one float64 (which may yield a
        plausible-but-wrong finite value — the nastiest case).
    straggle_every / straggle_delay:
        Deterministic straggler schedule: on every ``straggle_every``-th
        round (indices ``k−1, 2k−1, …``, matching ``FailEveryNth``) the
        agent's uplink is ``straggle_delay`` rounds late.
    crash_round / recover_round:
        Crash-recovery window: the endpoint is down (sends and receives
        nothing) for rounds in ``[crash_round, recover_round)``; with
        ``recover_round=None`` the crash is permanent.
    """

    drop_prob: float = 0.0
    delay_prob: float = 0.0
    max_delay: int = 0
    duplicate_prob: float = 0.0
    corrupt_prob: float = 0.0
    corrupt_mode: str = "nan"
    straggle_every: int = 0
    straggle_delay: int = 1
    crash_round: Optional[int] = None
    recover_round: Optional[int] = None

    def __post_init__(self):
        for name in ("drop_prob", "delay_prob", "duplicate_prob", "corrupt_prob"):
            check_probability(getattr(self, name), name=name)
        if self.max_delay < 0:
            raise InvalidParameterError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.delay_prob > 0 and self.max_delay < 1:
            raise InvalidParameterError(
                "delay_prob > 0 requires max_delay >= 1 (the partial-synchrony bound)"
            )
        if self.corrupt_mode not in CORRUPTION_MODES:
            raise InvalidParameterError(
                f"corrupt_mode must be one of {CORRUPTION_MODES}, got {self.corrupt_mode!r}"
            )
        if self.straggle_every < 0:
            raise InvalidParameterError(
                f"straggle_every must be >= 0, got {self.straggle_every}"
            )
        if self.straggle_every > 0 and self.straggle_delay < 1:
            raise InvalidParameterError(
                f"straggle_delay must be >= 1, got {self.straggle_delay}"
            )
        if self.crash_round is not None and self.crash_round < 0:
            raise InvalidParameterError(
                f"crash_round must be non-negative, got {self.crash_round}"
            )
        if self.recover_round is not None:
            if self.crash_round is None:
                raise InvalidParameterError("recover_round requires crash_round")
            if self.recover_round <= self.crash_round:
                raise InvalidParameterError(
                    f"recover_round ({self.recover_round}) must exceed "
                    f"crash_round ({self.crash_round})"
                )

    @property
    def is_null(self) -> bool:
        """Whether this profile injects no fault at all."""
        return (
            self.drop_prob == 0.0
            and self.delay_prob == 0.0
            and self.duplicate_prob == 0.0
            and self.corrupt_prob == 0.0
            and self.straggle_every == 0
            and self.crash_round is None
        )

    @property
    def preserves_synchrony(self) -> bool:
        """Whether silence under this profile still proves faultiness.

        Any fault that can make an *honest* agent's reply miss its round —
        a drop, a delay, a straggle, a crash window — breaks the
        synchrony proof; duplication and corruption do not.
        """
        return (
            self.drop_prob == 0.0
            and self.delay_prob == 0.0
            and self.straggle_every == 0
            and self.crash_round is None
        )

    def is_down(self, round_index: int) -> bool:
        """Whether the endpoint is inside its crash-recovery window."""
        if self.crash_round is None or round_index < self.crash_round:
            return False
        return self.recover_round is None or round_index < self.recover_round

    def straggles_at(self, round_index: int) -> bool:
        """Whether the deterministic straggler schedule fires this round."""
        if self.straggle_every <= 0:
            return False
        return round_index % self.straggle_every == self.straggle_every - 1

    def worst_case_delay(self) -> int:
        """The largest delay (in rounds) this profile can inflict."""
        delay = self.max_delay if self.delay_prob > 0 else 0
        straggle = self.straggle_delay if self.straggle_every > 0 else 0
        return delay + straggle


#: The profile of an agent with no configured faults.
NULL_PROFILE = FaultProfile()


@dataclass(frozen=True)
class NetworkFaultModel:
    """Per-agent fault profiles plus the model-wide determinism seed.

    Attributes
    ----------
    profiles:
        Map from agent id to its :class:`FaultProfile`; absent agents get
        :data:`NULL_PROFILE`.
    seed:
        Seed of every deterministic draw the model makes.
    reorder:
        When set, each round's due deliveries are permuted by a seeded
        shuffle instead of arriving in canonical order.
    """

    profiles: Mapping[int, FaultProfile] = field(default_factory=dict)
    seed: int = 0
    reorder: bool = False

    def __post_init__(self):
        object.__setattr__(
            self,
            "profiles",
            {int(k): v for k, v in dict(self.profiles).items()},
        )
        for agent_id, profile in self.profiles.items():
            if not isinstance(profile, FaultProfile):
                raise InvalidParameterError(
                    f"profiles[{agent_id}] must be a FaultProfile, "
                    f"got {type(profile).__name__}"
                )

    @classmethod
    def uniform(
        cls,
        agent_ids: Iterable[int],
        profile: FaultProfile,
        seed: int = 0,
        reorder: bool = False,
    ) -> "NetworkFaultModel":
        """One profile applied to every listed agent."""
        return cls(
            profiles={int(i): profile for i in agent_ids}, seed=seed, reorder=reorder
        )

    def profile(self, agent_id: int) -> FaultProfile:
        return self.profiles.get(int(agent_id), NULL_PROFILE)

    @property
    def is_null(self) -> bool:
        """Whether the model injects no fault (perfect synchrony)."""
        return all(profile.is_null for profile in self.profiles.values())

    @property
    def preserves_synchrony(self) -> bool:
        """Whether silence is still proof of faultiness under this model."""
        return all(p.preserves_synchrony for p in self.profiles.values())

    def delay_bound(self) -> int:
        """The model-wide bound ``B`` on message delay, in rounds."""
        if not self.profiles:
            return 0
        return max(p.worst_case_delay() for p in self.profiles.values())

    def staleness_bound(self) -> int:
        """Worst-case age of an honest gradient when it finally arrives.

        A round-``t`` broadcast can reach an agent ``B`` rounds late and
        the reply can take another ``B`` rounds back, so the server may
        receive an honest gradient up to ``2B`` rounds after the round it
        was computed for. A model with drops (but no delays) still
        warrants a bound of one round of reuse, so a single lost reply
        does not cost an agent its round.
        """
        bound = 2 * self.delay_bound()
        if bound == 0 and not self.is_null:
            return 1
        return bound


def corrupt_gradient(
    gradient: np.ndarray, mode: str, seed: int, *key
) -> np.ndarray:
    """Deterministically corrupt one coordinate of a gradient payload.

    The damaged coordinate (and, for ``"bitflip"``, the damaged bit) is a
    pure function of ``(seed, key)``; the input array is never modified.
    """
    if mode not in CORRUPTION_MODES:
        raise InvalidParameterError(
            f"mode must be one of {CORRUPTION_MODES}, got {mode!r}"
        )
    damaged = np.array(gradient, dtype=float, copy=True)
    if damaged.size == 0:
        return damaged
    position = deterministic_choice(seed, 0, damaged.size - 1, "corrupt-pos", *key)
    if mode == "nan":
        damaged[position] = np.nan
    elif mode == "inf":
        sign = 1.0 if deterministic_draw(seed, "corrupt-sign", *key) < 0.5 else -1.0
        damaged[position] = sign * np.inf
    else:  # bitflip
        bit = deterministic_choice(seed, 0, 63, "corrupt-bit", *key)
        bits = damaged.view(np.uint64)
        bits[position] ^= np.uint64(1) << np.uint64(bit)
    return damaged


@dataclass(frozen=True)
class _InFlight:
    """One queued delivery: a message bound for ``receiver`` at ``due``."""

    due: int
    receiver: int
    sequence: int
    message: Message
    copy_index: int = 0


class PartiallySynchronousNetwork(SynchronousNetwork):
    """A round-based network whose deliveries obey a fault model.

    Unlike the synchronous parent — where :meth:`deliver` resolves a
    message immediately — this network separates **submission** from
    **collection**: :meth:`submit` applies the sender-or-receiver profile
    (drop, delay, duplicate, corrupt) and queues surviving copies;
    :meth:`collect` releases the copies due in the current round, in a
    deterministic (optionally seeded-shuffled) order. With a null fault
    model every submission is collectable in its own round in submission
    order, so the schedule degenerates to the synchronous one.

    Traffic accounting extends the parent's: ``messages_delayed``,
    ``messages_duplicated``, and ``messages_corrupted`` count fault
    activity, and the delivery log records each copy when it is collected.

    The queue (plus counters) round-trips through :meth:`state` /
    :meth:`restore_state` so a checkpointed run can resume with its
    in-flight messages intact; fault draws need no state because they are
    pure functions of the model seed.
    """

    def __init__(
        self,
        fault_model: Optional[NetworkFaultModel] = None,
        log_capacity: int = 10_000,
    ):
        super().__init__(drop_probabilities=None, rng=None, log_capacity=log_capacity)
        self._model = fault_model if fault_model is not None else NetworkFaultModel()
        self._queue: List[_InFlight] = []
        self._sequence = 0
        self._messages_delayed = 0
        self._messages_duplicated = 0
        self._messages_corrupted = 0

    @property
    def fault_model(self) -> NetworkFaultModel:
        return self._model

    @property
    def messages_delayed(self) -> int:
        return self._messages_delayed

    @property
    def messages_duplicated(self) -> int:
        return self._messages_duplicated

    @property
    def messages_corrupted(self) -> int:
        return self._messages_corrupted

    @property
    def pending_count(self) -> int:
        """Queued copies not yet collected."""
        return len(self._queue)

    def traffic_summary(self) -> Dict[str, int]:
        summary = super().traffic_summary()
        summary.update(
            messages_delayed=self._messages_delayed,
            messages_duplicated=self._messages_duplicated,
            messages_corrupted=self._messages_corrupted,
        )
        return summary

    # ------------------------------------------------------------------
    # Fault application
    # ------------------------------------------------------------------

    def _endpoint_profile(self, message: Message, receiver: int) -> Tuple[int, FaultProfile]:
        """The agent-side endpoint whose profile governs this message.

        Server→agent traffic is shaped by the receiving agent's link;
        agent→server traffic by the sending agent's. (The trusted server
        itself is assumed reliable, as in the paper.)
        """
        endpoint = message.sender if message.sender >= 0 else int(receiver)
        return endpoint, self._model.profile(endpoint)

    def _record_drop(self, message: Message, receiver: int) -> None:
        record = DeliveryRecord(
            round_index=message.round_index,
            sender=message.sender,
            receiver=int(receiver),
            message_type=type(message).__name__,
            size_bytes=message.size_bytes(),
            dropped=True,
        )
        self._log.append(record)
        self._records_seen += 1
        self._messages_dropped += 1
        self._bytes_dropped += record.size_bytes

    def submit(self, message: Message, receiver: int, current_round: int) -> None:
        """Hand one message to the network in ``current_round``.

        Applies the governing endpoint profile and queues zero, one, or
        two copies for future collection.
        """
        endpoint, profile = self._endpoint_profile(message, receiver)
        key = (endpoint, int(receiver), message.sender, message.round_index, current_round)
        seed = self._model.seed

        if profile.is_down(current_round):
            self._record_drop(message, receiver)
            return
        if profile.drop_prob > 0 and deterministic_draw(seed, "drop", *key) < profile.drop_prob:
            self._record_drop(message, receiver)
            return

        delay = 0
        if profile.straggle_every > 0 and message.sender >= 0 and profile.straggles_at(current_round):
            delay += profile.straggle_delay
        if profile.delay_prob > 0 and deterministic_draw(seed, "delay", *key) < profile.delay_prob:
            delay += deterministic_choice(seed, 1, profile.max_delay, "delay-len", *key)
        if delay > 0:
            self._messages_delayed += 1

        payload = message
        if (
            profile.corrupt_prob > 0
            and isinstance(message, GradientMessage)
            and deterministic_draw(seed, "corrupt", *key) < profile.corrupt_prob
        ):
            payload = GradientMessage(
                sender=message.sender,
                round_index=message.round_index,
                gradient=corrupt_gradient(
                    message.gradient, profile.corrupt_mode, seed, *key
                ),
            )
            self._messages_corrupted += 1

        self._enqueue(payload, receiver, current_round + delay, copy_index=0)

        if profile.duplicate_prob > 0 and deterministic_draw(seed, "dup", *key) < profile.duplicate_prob:
            extra = 0
            if profile.max_delay > 0:
                extra = deterministic_choice(seed, 0, profile.max_delay, "dup-delay", *key)
            self._messages_duplicated += 1
            self._enqueue(payload, receiver, current_round + delay + extra, copy_index=1)

    def _enqueue(self, message: Message, receiver: int, due: int, copy_index: int) -> None:
        self._queue.append(
            _InFlight(
                due=int(due),
                receiver=int(receiver),
                sequence=self._sequence,
                message=message,
                copy_index=copy_index,
            )
        )
        self._sequence += 1

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def collect(self, receiver: int, current_round: int) -> List[Message]:
        """Release the copies due for ``receiver`` by ``current_round``.

        Due copies arrive sorted by ``(message round, sender, submission
        sequence)`` — a canonical order so results are reproducible — or in
        a deterministic seeded shuffle when the model's ``reorder`` flag is
        set. Each released copy is logged and counted as delivered.
        """
        receiver = int(receiver)
        due = [e for e in self._queue if e.receiver == receiver and e.due <= current_round]
        if not due:
            return []
        self._queue = [
            e for e in self._queue if not (e.receiver == receiver and e.due <= current_round)
        ]
        due.sort(key=lambda e: (e.message.round_index, e.message.sender, e.sequence))
        if self._model.reorder and len(due) > 1:
            order = sorted(
                range(len(due)),
                key=lambda i: deterministic_draw(
                    self._model.seed, "reorder", current_round, receiver, i
                ),
            )
            due = [due[i] for i in order]
        released: List[Message] = []
        for entry in due:
            record = DeliveryRecord(
                round_index=entry.message.round_index,
                sender=entry.message.sender,
                receiver=receiver,
                message_type=type(entry.message).__name__,
                size_bytes=entry.message.size_bytes(),
                dropped=False,
            )
            self._log.append(record)
            self._records_seen += 1
            self._messages_delivered += 1
            self._bytes_delivered += record.size_bytes
            released.append(entry.message)
        return released

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state(self) -> Dict:
        """JSON-serializable snapshot of queue and counters.

        The delivery log is deliberately excluded: it is diagnostics, not
        execution state, and resumed runs only need counters to keep the
        traffic totals consistent.
        """
        return {
            "sequence": self._sequence,
            "queue": [
                {
                    "due": e.due,
                    "receiver": e.receiver,
                    "sequence": e.sequence,
                    "copy_index": e.copy_index,
                    "kind": type(e.message).__name__,
                    "sender": e.message.sender,
                    "round_index": e.message.round_index,
                    "payload": self._payload_of(e.message),
                }
                for e in self._queue
            ],
            "counters": {
                "messages_delivered": self._messages_delivered,
                "messages_dropped": self._messages_dropped,
                "bytes_delivered": self._bytes_delivered,
                "bytes_dropped": self._bytes_dropped,
                "messages_delayed": self._messages_delayed,
                "messages_duplicated": self._messages_duplicated,
                "messages_corrupted": self._messages_corrupted,
                "records_seen": self._records_seen,
            },
        }

    @staticmethod
    def _payload_of(message: Message) -> Optional[List]:
        if isinstance(message, GradientMessage):
            # float(hex) round-trips every float64 bit pattern; plain JSON
            # floats cannot carry NaN/Inf, which corrupted payloads contain.
            return [float(v).hex() for v in np.asarray(message.gradient, dtype=float)]
        from repro.system.messages import EstimateBroadcast

        if isinstance(message, EstimateBroadcast):
            return [float(v).hex() for v in np.asarray(message.estimate, dtype=float)]
        return None

    def restore_state(self, state: Dict) -> None:
        """Restore a snapshot produced by :meth:`state`."""
        from repro.system.messages import EstimateBroadcast

        self._sequence = int(state["sequence"])
        counters = state["counters"]
        self._messages_delivered = int(counters["messages_delivered"])
        self._messages_dropped = int(counters["messages_dropped"])
        self._bytes_delivered = int(counters["bytes_delivered"])
        self._bytes_dropped = int(counters["bytes_dropped"])
        self._messages_delayed = int(counters["messages_delayed"])
        self._messages_duplicated = int(counters["messages_duplicated"])
        self._messages_corrupted = int(counters["messages_corrupted"])
        self._records_seen = int(counters["records_seen"])
        queue: List[_InFlight] = []
        for entry in state["queue"]:
            payload = (
                None
                if entry["payload"] is None
                else np.array([float.fromhex(v) for v in entry["payload"]])
            )
            if entry["kind"] == "GradientMessage":
                message: Message = GradientMessage(
                    sender=entry["sender"],
                    round_index=entry["round_index"],
                    gradient=payload,
                )
            elif entry["kind"] == "EstimateBroadcast":
                message = EstimateBroadcast(
                    sender=entry["sender"],
                    round_index=entry["round_index"],
                    estimate=payload,
                )
            else:
                raise InvalidParameterError(
                    f"cannot restore in-flight message of kind {entry['kind']!r}"
                )
            queue.append(
                _InFlight(
                    due=int(entry["due"]),
                    receiver=int(entry["receiver"]),
                    sequence=int(entry["sequence"]),
                    message=message,
                    copy_index=int(entry["copy_index"]),
                )
            )
        self._queue = queue
