"""The trusted server of the server-based architecture."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.aggregators.base import GradientFilter
from repro.exceptions import InvalidParameterError, ProtocolViolationError
from repro.observability import TelemetryLike, ensure_telemetry
from repro.optimization.projections import ConvexSet
from repro.optimization.step_sizes import StepSizeSchedule
from repro.system.messages import SERVER_ID, EstimateBroadcast, GradientMessage
from repro.utils.validation import check_vector

#: Builds a gradient filter for current system parameters ``(n, f)``. The
#: server re-invokes the factory after eliminating silent agents, because
#: elimination shrinks both ``n`` and ``f`` (the paper's Step S1), and the
#: partially-synchronous server re-invokes it per round for partial
#: aggregation over the ``k ≤ n`` gradients that met the deadline.
FilterFactory = Callable[[int, int], GradientFilter]


def fixed_filter_factory(gradient_filter: GradientFilter) -> FilterFactory:
    """A :data:`FilterFactory` anchored to one concrete filter instance.

    Returns the given instance while the fault budget is unchanged (the
    common case, including partial aggregation at the same ``f``);
    rebuilds the same *class* with the reduced budget after an
    elimination, falling back to the instance for filters that do not
    take a plain ``f=`` constructor.
    """

    def factory(n_now: int, f_now: int) -> GradientFilter:
        if f_now == gradient_filter.f:
            return gradient_filter
        try:
            return type(gradient_filter)(f=f_now)
        except TypeError:
            return gradient_filter

    return factory


class DGDServer:
    """Runs the filtered distributed gradient-descent update rule.

    Each iteration ``t``:

    - **S1** broadcast the estimate ``x^t`` and collect one gradient per
      agent; a silent agent is provably faulty (synchrony) and is
      eliminated, decrementing both ``n`` and ``f``;
    - **S2** apply the gradient filter and update
      ``x^{t+1} = [x^t − η_t · GradFilter(g_1..g_n)]_W``.

    Parameters
    ----------
    filter_factory:
        Builds the gradient filter for given ``(n, f)``; called once up
        front and again after every elimination.
    step_sizes:
        The schedule ``η_t``.
    projection:
        The compact convex set ``W``.
    x0:
        Initial estimate (arbitrary, per the paper); projected into ``W``.
    n, f:
        Initial system size and fault bound.
    telemetry:
        Optional :class:`~repro.observability.Telemetry` handle (defaults
        to the shared no-op). When enabled, the server times every filter
        application (``"filter"`` span), logs silence eliminations, and
        emits one ``"round"`` record per :meth:`step` with the filter's
        kept/eliminated agent sets (for filters exposing
        ``kept_indices``), the received gradient-norm spread, and the
        step size.
    """

    def __init__(
        self,
        filter_factory: FilterFactory,
        step_sizes: StepSizeSchedule,
        projection: ConvexSet,
        x0,
        n: int,
        f: int,
        telemetry: TelemetryLike = None,
        validate_payloads: bool = False,
    ):
        if n <= 0:
            raise InvalidParameterError(f"n must be positive, got {n}")
        if f < 0 or f >= n:
            raise InvalidParameterError(f"f must satisfy 0 <= f < n, got f={f}, n={n}")
        self._filter_factory = filter_factory
        self._step_sizes = step_sizes
        self._projection = projection
        self._estimate = projection.project(check_vector(x0, name="x0"))
        self._n = int(n)
        self._f = int(f)
        self._round = 0
        self._active = set(range(n))
        self._filter = filter_factory(self._n, self._f)
        self._eliminated: List[int] = []
        self._last_direction: Optional[np.ndarray] = None
        self._telemetry = ensure_telemetry(telemetry)
        #: When set, :meth:`step` rejects wrong-shaped or non-finite
        #: gradient payloads with :class:`ProtocolViolationError` instead
        #: of letting ``GradientFilter.sanitize`` absorb them. Off by
        #: default: the synchronous model treats malformed payloads as
        #: ordinary Byzantine outliers.
        self.validate_payloads = bool(validate_payloads)

    @classmethod
    def with_fixed_filter(
        cls,
        gradient_filter: GradientFilter,
        step_sizes: StepSizeSchedule,
        projection: ConvexSet,
        x0,
        n: int,
        f: int,
        telemetry: TelemetryLike = None,
    ) -> "DGDServer":
        """Build a server around one concrete filter instance.

        After an elimination the same *class* of filter is rebuilt with the
        reduced fault budget, except for stateless single-instance filters
        where reuse is safe; the factory recreates via ``type(filter)(f=...)``
        when possible and falls back to the given instance otherwise.
        """
        return cls(
            fixed_filter_factory(gradient_filter),
            step_sizes,
            projection,
            x0,
            n,
            f,
            telemetry=telemetry,
        )

    @property
    def estimate(self) -> np.ndarray:
        """Current estimate ``x^t``."""
        return self._estimate.copy()

    @property
    def round_index(self) -> int:
        return self._round

    @property
    def n(self) -> int:
        """Current number of active agents (post-elimination)."""
        return self._n

    @property
    def f(self) -> int:
        """Current fault budget (post-elimination)."""
        return self._f

    @property
    def active_agents(self) -> List[int]:
        return sorted(self._active)

    @property
    def eliminated_agents(self) -> List[int]:
        return list(self._eliminated)

    @property
    def gradient_filter(self) -> GradientFilter:
        return self._filter

    @property
    def last_direction(self) -> Optional[np.ndarray]:
        """The most recent filtered direction (diagnostics)."""
        return None if self._last_direction is None else self._last_direction.copy()

    def make_broadcast(self) -> EstimateBroadcast:
        """The round's estimate broadcast message."""
        return EstimateBroadcast(
            sender=SERVER_ID, round_index=self._round, estimate=self._estimate
        )

    def eliminate_silent(self, responders: Sequence[int]) -> List[int]:
        """Eliminate active agents that sent nothing this round.

        Returns the newly eliminated ids. Silence is proof of faultiness in
        a synchronous system, so each elimination decrements ``f``; if more
        agents are silent than the remaining fault budget allows, the
        synchrony assumption itself is violated and the simulator raises
        :class:`ProtocolViolationError` (this indicates a mis-configured
        experiment, e.g. honest crash faults beyond ``f``).
        """
        silent = sorted(self._active - set(int(i) for i in responders))
        if not silent:
            return []
        if len(silent) > self._f:
            raise ProtocolViolationError(
                f"{len(silent)} agents silent but fault budget is {self._f}; "
                "synchrony guarantees honest agents always respond"
            )
        for agent_id in silent:
            self._active.remove(agent_id)
            self._eliminated.append(agent_id)
        self._n -= len(silent)
        self._f -= len(silent)
        self._filter = self._filter_factory(self._n, self._f)
        if self._telemetry:
            self._telemetry.emit(
                "silence_elimination",
                round=self._round,
                agents=silent,
                n=self._n,
                f=self._f,
            )
        return silent

    def step(self, messages: Sequence[GradientMessage]) -> np.ndarray:
        """Run one full iteration from the received gradient messages.

        Performs elimination (S1) then the filtered update (S2) and
        advances the round counter. Returns the new estimate.
        """
        for message in messages:
            if message.round_index != self._round:
                raise ProtocolViolationError(
                    f"message from agent {message.sender} carries round "
                    f"{message.round_index}, server is in round {self._round}"
                )
            if message.sender not in self._active:
                raise ProtocolViolationError(
                    f"message from inactive agent {message.sender}"
                )
            if self.validate_payloads:
                message.validate(self._estimate.shape[0])
        by_sender: Dict[int, GradientMessage] = {}
        for message in messages:
            if message.sender in by_sender:
                raise ProtocolViolationError(
                    f"duplicate gradient from agent {message.sender} in round {self._round}"
                )
            by_sender[message.sender] = message
        self.eliminate_silent(list(by_sender))
        ordered = [by_sender[agent_id] for agent_id in sorted(by_sender)]
        return self._filtered_update(ordered, self._filter)

    def _filtered_update(
        self, ordered: Sequence[GradientMessage], gradient_filter: GradientFilter
    ) -> np.ndarray:
        """Apply one filtered update from an ordered message list (S2).

        Shared by the synchronous :meth:`step` and the partially-
        synchronous :class:`~repro.system.healing.ResilientDGDServer`, so
        the two runtimes are numerically one code path.
        """
        gradients = np.stack([message.gradient for message in ordered])
        with self._telemetry.span("filter"):
            direction = gradient_filter(gradients)
        self._last_direction = np.asarray(direction, dtype=float)
        eta = self._step_sizes(self._round)
        self._estimate = self._projection.project(self._estimate - eta * self._last_direction)
        if self._telemetry:
            self._record_round_telemetry(ordered, gradients, eta, gradient_filter)
        self._round += 1
        return self.estimate

    def _record_round_telemetry(
        self,
        ordered: Sequence[GradientMessage],
        gradients: np.ndarray,
        eta: float,
        gradient_filter: Optional[GradientFilter] = None,
    ) -> None:
        """Emit this round's telemetry record (telemetry-enabled path only).

        Norms are taken on the sanitized matrix — what the filter actually
        scored — and ``kept_indices`` (CGE and friends) is re-derived the
        same way, so the record reconstructs the filter's decision exactly.
        """
        gradient_filter = self._filter if gradient_filter is None else gradient_filter
        agent_ids = [message.sender for message in ordered]
        matrix = gradient_filter.sanitize(gradients)
        kept_rows = None
        if hasattr(gradient_filter, "kept_indices"):
            kept_rows = gradient_filter.kept_indices(matrix)
        self._telemetry.record_round(
            round_index=self._round,
            filter_name=getattr(gradient_filter, "name", type(gradient_filter).__name__),
            step_size=eta,
            gradient_norms=np.linalg.norm(matrix, axis=1),
            agent_ids=agent_ids,
            kept_ids=None if kept_rows is None else [agent_ids[r] for r in kept_rows],
            estimate=self._estimate,
        )
