"""Deterministic infrastructure fault injection (chaos testing harness).

The paper's algorithms tolerate ``f`` Byzantine *agents*; the execution
harness that sweeps them must tolerate the faults *infrastructure*
exhibits: a pool worker that raises, a worker process that dies outright,
a task that hangs, a cache file truncated by a killed writer or corrupted
in place. This module provides composable, picklable failure policies that
wrap any worker callable — so the resilience machinery in
:class:`repro.experiments.sweep.SweepEngine` can be driven through every
failure mode **deterministically** and the surviving numerics asserted
bit-identical to a fault-free run (``tests/test_fault_injection.py``,
``tests/test_sweep_resilience.py``).

Design constraints, and how they are met:

- **Cross-process determinism.** Pool workers live in separate processes,
  so a plain instance attribute cannot count calls globally.
  :class:`CallCounter` claims monotonically increasing indices through
  ``O_CREAT | O_EXCL`` marker files in a shared directory — atomic on
  every POSIX filesystem — giving all policies one global call ordering
  regardless of how chunks are scheduled.
- **Picklability.** Policies are frozen dataclasses and
  :class:`FaultyWorker` holds only picklable state, so a faulty worker
  travels through a :class:`~concurrent.futures.ProcessPoolExecutor`
  exactly like a healthy one.
- **Composability.** A :class:`FaultyWorker` applies an arbitrary list of
  policies in order before delegating to the wrapped callable; each policy
  sees the global call index and the item, so call-indexed and
  item-matched faults combine freely.

Nothing in this module is imported by production code paths; it exists so
the test layer can prove the production paths survive it.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import InjectedFault, InvalidParameterError

__all__ = [
    "CallCounter",
    "FaultPolicy",
    "FailEveryNth",
    "FailOnCalls",
    "FailMatching",
    "HangOnCalls",
    "CrashOnCalls",
    "RandomFaults",
    "FaultyWorker",
    "TransientlyUnpicklable",
    "corrupt_json_file",
    "corrupt_cache_entry",
    "deterministic_draw",
    "deterministic_draw_array",
    "deterministic_choice",
]


def deterministic_draw(seed: int, *key) -> float:
    """A uniform draw in ``[0, 1)`` that is a pure function of ``(seed, key)``.

    SHA-256 over the stringified key, mapped to the unit interval. This is
    the determinism discipline every fault schedule in this module (and the
    network fault model in :mod:`repro.system.netfaults`) follows: a chaos
    run is exactly replayable from its seed, and — unlike a stateful
    ``Generator`` — a resumed run replays the *same* draws without having
    to persist any stream position in a checkpoint.
    """
    material = ":".join(str(part) for part in (seed, *key))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


_SM64_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_SM64_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_MIX2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over a uint64 array (wrapping arithmetic)."""
    z = x + _SM64_GOLDEN
    z = (z ^ (z >> np.uint64(30))) * _SM64_MIX1
    z = (z ^ (z >> np.uint64(27))) * _SM64_MIX2
    return z ^ (z >> np.uint64(31))


def deterministic_draw_array(seed: int, *keys) -> np.ndarray:
    """Vectorized uniform draws in ``[0, 1)``, pure functions of ``(seed, keys)``.

    The array sibling of :func:`deterministic_draw` for schedules that need
    thousands of draws per round (one per graph edge): each key may be an
    integer or an integer array; the keys broadcast together and the result
    has the broadcast shape. Built on splitmix64-style uint64 mixing in
    numpy, so drawing for 10k edges costs a handful of array ops instead of
    10k SHA-256 hashes.

    This is a *distinct* primitive from :func:`deterministic_draw` — the
    two do not produce matching streams for matching keys. Both share the
    property that matters: every draw is a stateless pure function of its
    coordinates, so replay and resume need no RNG stream position.
    """
    if not keys:
        raise InvalidParameterError("deterministic_draw_array needs at least one key")
    with np.errstate(over="ignore"):
        arrays = [
            np.asarray(k, dtype=np.int64).astype(np.uint64) for k in keys
        ]
        shape = np.broadcast_shapes(*(a.shape for a in arrays))
        state = _splitmix64(
            np.full(shape, np.uint64(int(seed) & 0xFFFFFFFFFFFFFFFF))
        )
        for index, key in enumerate(arrays):
            salted = key + np.uint64(index + 1) * _SM64_GOLDEN
            state = _splitmix64(state ^ _splitmix64(salted))
    return (state >> np.uint64(11)).astype(np.float64) * (1.0 / 2**53)


def deterministic_choice(seed: int, low: int, high: int, *key) -> int:
    """A deterministic integer draw in ``[low, high]`` (inclusive)."""
    if high < low:
        raise InvalidParameterError(f"empty choice range [{low}, {high}]")
    span = high - low + 1
    return low + int(deterministic_draw(seed, "choice", *key) * span) % span


@dataclass(frozen=True)
class CallCounter:
    """A multiprocess-safe monotone counter backed by marker files.

    ``claim()`` returns the next unclaimed non-negative integer; two
    processes can never claim the same index because creating the marker
    file with ``O_EXCL`` is atomic. The directory is created on first use
    so a counter can be declared before its scratch space exists.
    """

    directory: str

    def claim(self) -> int:
        os.makedirs(self.directory, exist_ok=True)
        index = len(os.listdir(self.directory))
        while True:
            try:
                fd = os.open(
                    os.path.join(self.directory, f"{index:08d}"),
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
                os.close(fd)
                return index
            except FileExistsError:
                index += 1

    def value(self) -> int:
        """How many calls have been claimed so far."""
        if not os.path.isdir(self.directory):
            return 0
        return len(os.listdir(self.directory))


class FaultPolicy:
    """Base class: inspect ``(call_index, item)`` and possibly misbehave.

    ``apply`` either returns normally (no fault) or injects one — raising
    :class:`~repro.exceptions.InjectedFault`, sleeping, or killing the
    process. Subclasses are frozen dataclasses so policies hash, compare,
    and pickle cleanly.
    """

    def apply(self, call_index: int, item) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class FailEveryNth(FaultPolicy):
    """Raise :class:`InjectedFault` on every ``n``-th call (1 in ``n``).

    Call indices ``n-1, 2n-1, …`` fail; with a shared :class:`CallCounter`
    a retry of the same item draws a fresh index and succeeds — modelling
    a transient crash.
    """

    n: int
    message: str = "injected worker failure"

    def __post_init__(self):
        if self.n <= 0:
            raise InvalidParameterError(f"n must be positive, got {self.n}")

    def apply(self, call_index: int, item) -> None:
        if call_index % self.n == self.n - 1:
            raise InjectedFault(f"{self.message} (call {call_index})")


@dataclass(frozen=True)
class FailOnCalls(FaultPolicy):
    """Raise :class:`InjectedFault` on an explicit set of call indices."""

    calls: Tuple[int, ...]
    message: str = "injected worker failure"

    def apply(self, call_index: int, item) -> None:
        if call_index in self.calls:
            raise InjectedFault(f"{self.message} (call {call_index})")


@dataclass(frozen=True)
class FailMatching(FaultPolicy):
    """Raise on every item whose ``repr`` contains ``needle``.

    Item-keyed (not call-keyed): the fault is *persistent*, so retries
    fail identically and the engine must quarantine the item rather than
    ride it out.
    """

    needle: str
    message: str = "injected persistent failure"

    def apply(self, call_index: int, item) -> None:
        if self.needle in repr(item):
            raise InjectedFault(f"{self.message} (item matched {self.needle!r})")


@dataclass(frozen=True)
class HangOnCalls(FaultPolicy):
    """Sleep ``duration`` seconds on the given call indices (a hung worker).

    The duration is finite so an un-timeouted run still terminates; pick a
    duration comfortably above the engine timeout under test.
    """

    calls: Tuple[int, ...]
    duration: float = 5.0

    def apply(self, call_index: int, item) -> None:
        if call_index in self.calls:
            time.sleep(self.duration)


@dataclass(frozen=True)
class CrashOnCalls(FaultPolicy):
    """Kill the worker process outright (``os._exit``) on given calls.

    Unlike :class:`FailOnCalls` this is a *hard* crash: no exception
    propagates, the process just dies, and the pool surfaces it as a
    :class:`~concurrent.futures.process.BrokenProcessPool`. Never apply
    in-process — the engine's degraded (non-pool) paths must not execute
    this policy, which is exactly what the chaos tests assert.
    """

    calls: Tuple[int, ...]
    exit_code: int = 13

    def apply(self, call_index: int, item) -> None:
        if call_index in self.calls:
            os._exit(self.exit_code)


@dataclass(frozen=True)
class RandomFaults(FaultPolicy):
    """Raise with probability ``rate`` per call, deterministically.

    The decision for call ``k`` is a pure function of ``(seed, k)`` — a
    SHA-256 hash mapped to ``[0, 1)`` — so a chaos run is exactly
    replayable from its seed, unlike ``random.random()``-based injection.
    """

    rate: float
    seed: int = 0
    message: str = "injected random failure"

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise InvalidParameterError(f"rate must be in [0, 1], got {self.rate}")

    def apply(self, call_index: int, item) -> None:
        draw = deterministic_draw(self.seed, call_index)
        if draw < self.rate:
            raise InjectedFault(f"{self.message} (call {call_index}, draw {draw:.3f})")


class FaultyWorker:
    """Wrap a worker callable with an ordered list of fault policies.

    Every call claims a global index (from ``counter_dir`` when given, so
    indices are shared across pool processes; otherwise a per-process
    counter) and offers ``(index, item)`` to each policy before delegating
    to the wrapped worker. Picklable whenever the wrapped worker and the
    policies are.
    """

    def __init__(
        self,
        worker: Callable,
        policies: Sequence[FaultPolicy],
        counter_dir: Optional[str] = None,
    ):
        self.worker = worker
        self.policies = tuple(policies)
        self.counter_dir = counter_dir
        self._local_count = 0

    def _next_index(self) -> int:
        if self.counter_dir is not None:
            return CallCounter(self.counter_dir).claim()
        index = self._local_count
        self._local_count += 1
        return index

    def __call__(self, item):
        index = self._next_index()
        for policy in self.policies:
            policy.apply(index, item)
        return self.worker(item)

    def __reduce__(self):
        return (
            _rebuild_faulty_worker,
            (self.worker, self.policies, self.counter_dir),
        )


def _rebuild_faulty_worker(worker, policies, counter_dir):
    return FaultyWorker(worker, policies, counter_dir=counter_dir)


class TransientlyUnpicklable:
    """A callable whose first ``failures`` pickle attempts raise.

    Models a transiently unpicklable payload: the engine's up-front pickle
    probe fails, it degrades to in-process execution (warning once), and a
    later map call — once the transient has passed — pools normally.
    Attempts are counted through a :class:`CallCounter` in ``state_dir``
    so the transient spans processes and engine instances.
    """

    def __init__(self, worker: Callable, failures: int, state_dir: str):
        self.worker = worker
        self.failures = failures
        self.state_dir = state_dir

    def __call__(self, item):
        return self.worker(item)

    def __reduce__(self):
        attempt = CallCounter(self.state_dir).claim()
        if attempt < self.failures:
            raise pickle.PicklingError(
                f"injected transient pickle failure (attempt {attempt})"
            )
        return (_rebuild_transiently_unpicklable,
                (self.worker, self.failures, self.state_dir))


def _rebuild_transiently_unpicklable(worker, failures, state_dir):
    return TransientlyUnpicklable(worker, failures, state_dir)


def corrupt_json_file(path: str, mode: str = "truncate", seed: int = 0) -> str:
    """Deterministically damage a JSON file in place; return ``path``.

    Modes
    -----
    ``"truncate"``
        Keep only the first half of the bytes — what a writer killed
        mid-``write`` (without atomic rename) leaves behind.
    ``"bitflip"``
        Flip one bit at a position derived from ``seed`` — in-place media
        corruption. May or may not still parse as JSON; the checksum read
        path must catch it either way.
    ``"garbage"``
        Replace the content with bytes that are not JSON at all.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if mode == "truncate":
        damaged = data[: max(1, len(data) // 2)]
    elif mode == "bitflip":
        if not data:
            raise InvalidParameterError(f"cannot bit-flip empty file {path}")
        digest = hashlib.sha256(f"{seed}:{len(data)}".encode("utf-8")).digest()
        position = int.from_bytes(digest[:8], "big") % len(data)
        bit = digest[8] % 8
        damaged = bytearray(data)
        damaged[position] ^= 1 << bit
        damaged = bytes(damaged)
    elif mode == "garbage":
        damaged = b"{this is not json"
    else:
        raise InvalidParameterError(
            f"mode must be 'truncate', 'bitflip', or 'garbage', got {mode!r}"
        )
    with open(path, "wb") as handle:
        handle.write(damaged)
    return path


def corrupt_cache_entry(
    cache_dir: str, index: int = 0, mode: str = "truncate", seed: int = 0
) -> str:
    """Corrupt the ``index``-th cache entry (sorted order) in ``cache_dir``.

    Skips manifest files so the damage lands on a trace entry; returns the
    corrupted path. Raises :class:`InvalidParameterError` when the cache
    has no such entry — a chaos test asking to corrupt a missing entry is
    a bug in the test, not a fault to inject.
    """
    entries = sorted(
        name
        for name in os.listdir(cache_dir)
        if name.endswith(".json") and not name.startswith("manifest")
    )
    if not 0 <= index < len(entries):
        raise InvalidParameterError(
            f"cache {cache_dir} has {len(entries)} entries, cannot corrupt #{index}"
        )
    return corrupt_json_file(os.path.join(cache_dir, entries[index]), mode=mode,
                             seed=seed)
