"""Synchronous distributed-system substrate.

Implements the paper's system model from scratch: a synchronous, round-based
message-passing system in either the **server-based** architecture (trusted
server, up to ``f`` Byzantine agents) or the **peer-to-peer** architecture
(agents simulate the server via Byzantine broadcast, requiring ``f < n/3``).

The :mod:`repro.system.netfaults` / :mod:`repro.system.healing` pair drops
the synchrony assumption: a deterministic partially-synchronous network
(bounded delay, drops, duplicates, payload corruption, stragglers,
crash-recovery) and the self-healing server runtime that survives it.
"""

from repro.system.adversary import Adversary
from repro.system.backends import (
    ArrayBackend,
    available_backends,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.system.agents import Agent, CrashAgent, HonestAgent
from repro.system.broadcast import BroadcastResult, EquivocatingSender, byzantine_broadcast
from repro.system.messages import EstimateBroadcast, GradientMessage, Message
from repro.system.network import DeliveryRecord, SynchronousNetwork
from repro.system.batch import batch_unsupported_reason, run_dgd_batch
from repro.system.faultinjection import (
    CallCounter,
    CrashOnCalls,
    FailEveryNth,
    FailMatching,
    FailOnCalls,
    FaultPolicy,
    FaultyWorker,
    HangOnCalls,
    RandomFaults,
    TransientlyUnpicklable,
    corrupt_cache_entry,
    corrupt_json_file,
    deterministic_choice,
    deterministic_draw,
)
from repro.system.decentralized import (
    DECENTRALIZED_AGGREGATIONS,
    DecentralizedExecutionResult,
    run_decentralized_dgd,
)
from repro.system.healing import (
    LivenessTracker,
    NeighborhoodLiveness,
    ResiliencePolicy,
    ResilientDGDServer,
    RoundInbox,
)
from repro.system.netfaults import (
    CORRUPTION_MODES,
    ChurnWindow,
    FaultProfile,
    LinkFaultModel,
    LinkFaultProfile,
    NetworkFaultModel,
    PartiallySynchronousNetwork,
    PartitionWindow,
    corrupt_gradient,
    corrupt_payload_rows,
)
from repro.system.peer_to_peer import PeerExecutionResult, run_peer_to_peer_dgd
from repro.system.topology import (
    Topology,
    available_topologies,
    complete_topology,
    make_topology,
    random_geometric_topology,
    random_regular_topology,
    ring_topology,
    scale_free_topology,
    torus_topology,
)
from repro.system.runner import DGDConfig, Trace, apply_config_overrides, run_dgd
from repro.system.server import DGDServer, fixed_filter_factory

__all__ = [
    "Message",
    "EstimateBroadcast",
    "GradientMessage",
    "SynchronousNetwork",
    "DeliveryRecord",
    "Agent",
    "HonestAgent",
    "CrashAgent",
    "Adversary",
    "DGDServer",
    "DGDConfig",
    "Trace",
    "run_dgd",
    "run_dgd_batch",
    "batch_unsupported_reason",
    "ArrayBackend",
    "available_backends",
    "backend_names",
    "register_backend",
    "resolve_backend",
    "apply_config_overrides",
    "byzantine_broadcast",
    "BroadcastResult",
    "EquivocatingSender",
    "run_peer_to_peer_dgd",
    "PeerExecutionResult",
    "FaultPolicy",
    "FaultyWorker",
    "CallCounter",
    "FailEveryNth",
    "FailOnCalls",
    "FailMatching",
    "HangOnCalls",
    "CrashOnCalls",
    "RandomFaults",
    "TransientlyUnpicklable",
    "corrupt_json_file",
    "corrupt_cache_entry",
    "deterministic_draw",
    "deterministic_choice",
    "CORRUPTION_MODES",
    "FaultProfile",
    "NetworkFaultModel",
    "PartiallySynchronousNetwork",
    "corrupt_gradient",
    "ResiliencePolicy",
    "LivenessTracker",
    "NeighborhoodLiveness",
    "RoundInbox",
    "ResilientDGDServer",
    "fixed_filter_factory",
    "ChurnWindow",
    "LinkFaultModel",
    "LinkFaultProfile",
    "PartitionWindow",
    "corrupt_payload_rows",
    "Topology",
    "available_topologies",
    "complete_topology",
    "make_topology",
    "random_geometric_topology",
    "random_regular_topology",
    "ring_topology",
    "scale_free_topology",
    "torus_topology",
    "DECENTRALIZED_AGGREGATIONS",
    "DecentralizedExecutionResult",
    "run_decentralized_dgd",
]
