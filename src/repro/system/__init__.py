"""Synchronous distributed-system substrate.

Implements the paper's system model from scratch: a synchronous, round-based
message-passing system in either the **server-based** architecture (trusted
server, up to ``f`` Byzantine agents) or the **peer-to-peer** architecture
(agents simulate the server via Byzantine broadcast, requiring ``f < n/3``).
"""

from repro.system.adversary import Adversary
from repro.system.agents import Agent, CrashAgent, HonestAgent
from repro.system.broadcast import BroadcastResult, EquivocatingSender, byzantine_broadcast
from repro.system.messages import EstimateBroadcast, GradientMessage, Message
from repro.system.network import DeliveryRecord, SynchronousNetwork
from repro.system.batch import batch_unsupported_reason, run_dgd_batch
from repro.system.faultinjection import (
    CallCounter,
    CrashOnCalls,
    FailEveryNth,
    FailMatching,
    FailOnCalls,
    FaultPolicy,
    FaultyWorker,
    HangOnCalls,
    RandomFaults,
    TransientlyUnpicklable,
    corrupt_cache_entry,
    corrupt_json_file,
)
from repro.system.peer_to_peer import PeerExecutionResult, run_peer_to_peer_dgd
from repro.system.runner import DGDConfig, Trace, apply_config_overrides, run_dgd
from repro.system.server import DGDServer

__all__ = [
    "Message",
    "EstimateBroadcast",
    "GradientMessage",
    "SynchronousNetwork",
    "DeliveryRecord",
    "Agent",
    "HonestAgent",
    "CrashAgent",
    "Adversary",
    "DGDServer",
    "DGDConfig",
    "Trace",
    "run_dgd",
    "run_dgd_batch",
    "batch_unsupported_reason",
    "apply_config_overrides",
    "byzantine_broadcast",
    "BroadcastResult",
    "EquivocatingSender",
    "run_peer_to_peer_dgd",
    "PeerExecutionResult",
    "FaultPolicy",
    "FaultyWorker",
    "CallCounter",
    "FailEveryNth",
    "FailOnCalls",
    "FailMatching",
    "HangOnCalls",
    "CrashOnCalls",
    "RandomFaults",
    "TransientlyUnpicklable",
    "corrupt_json_file",
    "corrupt_cache_entry",
]
