"""Adaptive (filter-aware) Byzantine behaviours.

These attacks exploit knowledge of the honest gradients' statistics — the
strongest setting the synchronous rushing adversary permits — and are the
standard stress tests for robust aggregation rules.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import AttackContext, ByzantineBehavior
from repro.exceptions import InvalidParameterError


class ALittleIsEnough(ByzantineBehavior):
    """ALIE attack (Baruch et al., 2019).

    Sends ``mean(honest) − z · std(honest)`` per coordinate: a perturbation
    small enough to hide inside the honest spread yet consistently biased.
    ``z`` defaults to a value matched to the honest population size via the
    normal quantile heuristic of the original paper.
    """

    name = "alie"

    def __init__(self, z: Optional[float] = None):
        if z is not None and z <= 0:
            raise InvalidParameterError(f"z must be positive, got {z}")
        self._z = z

    def _z_value(self, context: AttackContext) -> float:
        if self._z is not None:
            return self._z
        n = context.honest_gradients.shape[0] + context.num_faulty
        f = context.num_faulty
        # Number of honest agents the adversary must out-vote.
        s = max(int(np.floor(n / 2.0 + 1.0)) - f, 1)
        fraction = min(max((n - f - s) / max(n - f, 1), 1e-6), 1.0 - 1e-6)
        from scipy.stats import norm

        return float(norm.ppf(1.0 - fraction) if fraction < 0.5 else norm.ppf(fraction))

    def forge(self, context: AttackContext) -> np.ndarray:
        z = abs(self._z_value(context))
        forged = context.honest_mean() - z * context.honest_std()
        return np.tile(forged, (context.num_faulty, 1))


class InnerProductManipulation(ByzantineBehavior):
    """IPM attack (Xie, Koyejo & Gupta, 2020).

    Every faulty agent sends ``−scale · mean(honest)``. For small ``scale``
    the forged gradients look individually plausible but flip the sign of
    the aggregate's inner product with the true descent direction.
    """

    name = "ipm"

    def __init__(self, scale: float = 0.5):
        if scale <= 0:
            raise InvalidParameterError(f"scale must be positive, got {scale}")
        self._scale = float(scale)

    def forge(self, context: AttackContext) -> np.ndarray:
        forged = -self._scale * context.honest_mean()
        return np.tile(forged, (context.num_faulty, 1))


class Mimic(ByzantineBehavior):
    """All faulty agents copy one fixed honest agent's gradient.

    Defeats no filter on its own but skews heterogeneity-sensitive rules by
    over-representing one data distribution (Karimireddy et al., 2021).
    """

    name = "mimic"

    def __init__(self, target_position: int = 0):
        if target_position < 0:
            raise InvalidParameterError(
                f"target_position must be non-negative, got {target_position}"
            )
        self._target_position = int(target_position)

    def forge(self, context: AttackContext) -> np.ndarray:
        honest = context.honest_gradients
        if honest.shape[0] == 0:
            return np.zeros((context.num_faulty, context.dimension))
        row = honest[self._target_position % honest.shape[0]]
        return np.tile(row, (context.num_faulty, 1))


class OptimalDirectionAttack(ByzantineBehavior):
    """Norm-camouflaged push toward an adversarial target point.

    Each forged gradient points from the target toward the current estimate
    (so descent moves the estimate toward the target) and is scaled to the
    median honest gradient norm — specifically crafted to survive
    norm-based elimination such as CGE while remaining maximally harmful.
    """

    name = "optimal-direction"

    def __init__(self, target):
        self._target = np.asarray(target, dtype=float)
        if self._target.ndim != 1:
            raise InvalidParameterError("target must be a 1-D point")

    def forge(self, context: AttackContext) -> np.ndarray:
        if self._target.shape[0] != context.dimension:
            raise InvalidParameterError(
                f"target dimension {self._target.shape[0]} does not match problem "
                f"dimension {context.dimension}"
            )
        direction = context.estimate - self._target
        norm = float(np.linalg.norm(direction))
        if norm < 1e-12:
            return np.zeros((context.num_faulty, context.dimension))
        honest_norms = np.linalg.norm(context.honest_gradients, axis=1)
        camouflage = float(np.median(honest_norms)) if honest_norms.size else 1.0
        forged = direction / norm * camouflage
        return np.tile(forged, (context.num_faulty, 1))


class IntermittentAttack(ByzantineBehavior):
    """Wrap an attack so the faulty agents misbehave only sometimes.

    In rounds where the attack is dormant the faulty agents behave
    *honestly* (sending their true gradients), which makes the fault
    pattern time-varying and much harder to detect than a constant
    misbehaviour — the server can never amortize an identification over
    rounds. Byzantine agents are allowed any behaviour, so this is strictly
    inside the model.

    Parameters
    ----------
    inner:
        The behaviour used in active rounds.
    active_probability:
        Per-round probability of attacking (drawn from the adversary's
        stream); ``period`` may be given instead for deterministic duty
        cycles.
    period:
        When set, attack exactly every ``period``-th round (overrides the
        probability).
    """

    name = "intermittent"

    def __init__(
        self,
        inner: ByzantineBehavior,
        active_probability: float = 0.5,
        period: Optional[int] = None,
    ):
        if not 0.0 <= active_probability <= 1.0:
            raise InvalidParameterError(
                f"active_probability must lie in [0, 1], got {active_probability}"
            )
        if period is not None and period <= 0:
            raise InvalidParameterError(f"period must be positive, got {period}")
        self._inner = inner
        self._probability = float(active_probability)
        self._period = period

    def _active(self, context: AttackContext) -> bool:
        if self._period is not None:
            return context.round_index % self._period == 0
        return bool(context.rng.random() < self._probability)

    def forge(self, context: AttackContext) -> np.ndarray:
        if self._active(context):
            return self._inner(context)
        return context.true_faulty_gradients()
