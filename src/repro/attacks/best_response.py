"""Best-response adversary: minimize the convergence inner product φ_t.

The generic convergence argument for filtered gradient descent rests on the
round quantity ``φ_t = ⟨x^t − x_H, GradFilter(g_1..g_n)⟩`` staying positive
(bounded away from 0) whenever the estimate is far from the honest
minimizer. The strongest per-round adversary therefore chooses its forged
gradients to *minimize* ``φ_t`` — which this behaviour does by brute force:
it knows the filter (Kerckhoffs's principle), enumerates a candidate set of
forged vectors, evaluates the filter on each, and plays the minimizer.

Candidates are crafted to cover the known attack archetypes: pushes along
``±(x^t − x_H)``, ``±mean(honest)``, copies of honest gradients (norm
camouflage against CGE), the zero vector, and random probes — each at
several magnitudes calibrated to the honest norm distribution.

This is an *empirical certification* tool: the measured error under this
adversary is a lower bound on the filter's true worst case, far tighter
than any fixed attack (experiment E13).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.aggregators.base import GradientFilter
from repro.attacks.base import AttackContext, ByzantineBehavior
from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_vector


class PhiMinimizingAttack(ByzantineBehavior):
    """Per-round brute-force minimization of ``φ_t`` over a candidate set.

    Parameters
    ----------
    gradient_filter:
        The server's filter (the adversary knows the defence).
    target:
        The honest minimizer ``x_H`` the server is trying to reach (the
        omniscient adversary knows the problem).
    num_random_probes:
        Random candidate directions added per round.
    magnitudes:
        Multipliers applied to the honest-norm quantiles to build candidate
        lengths.
    """

    name = "phi-minimizing"

    def __init__(
        self,
        gradient_filter: GradientFilter,
        target,
        num_random_probes: int = 8,
        magnitudes=(0.25, 0.5, 1.0, 2.0, 8.0, 32.0, 128.0),
    ):
        self._filter = gradient_filter
        self._target = check_vector(target, name="target")
        if num_random_probes < 0:
            raise InvalidParameterError(
                f"num_random_probes must be non-negative, got {num_random_probes}"
            )
        self._num_random_probes = int(num_random_probes)
        self._magnitudes = tuple(float(m) for m in magnitudes)
        if not self._magnitudes or any(m <= 0 for m in self._magnitudes):
            raise InvalidParameterError("magnitudes must be positive and non-empty")

    def _candidate_directions(self, context: AttackContext) -> List[np.ndarray]:
        directions: List[np.ndarray] = []
        gap = context.estimate - self._target
        gap_norm = float(np.linalg.norm(gap))
        if gap_norm > 1e-12:
            directions.append(gap / gap_norm)
            directions.append(-gap / gap_norm)
        mean = context.honest_mean()
        mean_norm = float(np.linalg.norm(mean))
        if mean_norm > 1e-12:
            directions.append(-mean / mean_norm)
        for row in context.honest_gradients:
            norm = float(np.linalg.norm(row))
            if norm > 1e-12:
                directions.append(-row / norm)
        for _ in range(self._num_random_probes):
            probe = context.rng.normal(size=context.dimension)
            norm = float(np.linalg.norm(probe))
            if norm > 1e-12:
                directions.append(probe / norm)
        return directions

    def forge(self, context: AttackContext) -> np.ndarray:
        honest = context.honest_gradients
        dimension = context.dimension
        norms = np.linalg.norm(honest, axis=1) if honest.size else np.zeros(1)
        reference = float(np.median(norms)) if norms.size else 1.0
        reference = max(reference, 1e-9)
        gap = context.estimate - self._target

        candidates: List[np.ndarray] = [np.zeros(dimension)]
        for direction in self._candidate_directions(context):
            for magnitude in self._magnitudes:
                candidates.append(magnitude * reference * direction)

        best_vector: Optional[np.ndarray] = None
        best_phi = np.inf
        for candidate in candidates:
            forged = np.tile(candidate, (context.num_faulty, 1))
            stacked = np.vstack([honest, forged]) if honest.size else forged
            aggregate = self._filter(stacked)
            phi = float(gap @ aggregate)
            if phi < best_phi:
                best_phi = phi
                best_vector = candidate
        assert best_vector is not None
        return np.tile(best_vector, (context.num_faulty, 1))
