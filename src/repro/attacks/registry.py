"""Name-based construction of Byzantine behaviours for sweep configs."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.attacks.adaptive import (
    ALittleIsEnough,
    IntermittentAttack,
    InnerProductManipulation,
    Mimic,
    OptimalDirectionAttack,
)
from repro.attacks.base import ByzantineBehavior
from repro.attacks.simple import (
    ConstantBias,
    GradientReverse,
    CostSubstitution,
    RandomGaussian,
    SignFlip,
    ZeroGradient,
)
from repro.exceptions import UnknownRegistryEntryError

_FACTORIES: Dict[str, Callable[..., ByzantineBehavior]] = {
    GradientReverse.name: GradientReverse,
    RandomGaussian.name: RandomGaussian,
    SignFlip.name: SignFlip,
    ZeroGradient.name: ZeroGradient,
    ConstantBias.name: ConstantBias,
    CostSubstitution.name: CostSubstitution,
    ALittleIsEnough.name: ALittleIsEnough,
    InnerProductManipulation.name: InnerProductManipulation,
    Mimic.name: Mimic,
    OptimalDirectionAttack.name: OptimalDirectionAttack,
    IntermittentAttack.name: IntermittentAttack,
}


def available_attacks() -> List[str]:
    """Sorted list of registered behaviour names."""
    return sorted(_FACTORIES)


def make_attack(name: str, **kwargs) -> ByzantineBehavior:
    """Instantiate a Byzantine behaviour by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise UnknownRegistryEntryError("attack", name, available_attacks()) from None
    return factory(**kwargs)
