"""Non-adaptive Byzantine behaviours.

Includes the two fault models of the paper's evaluation — *gradient-reverse*
and *random* (isotropic Gaussian with large standard deviation) — plus
standard simple baselines.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackContext, ByzantineBehavior
from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_vector


class GradientReverse(ByzantineBehavior):
    """Send the negation of the agent's true gradient, scaled by ``strength``.

    The paper's first fault model: with ``strength = 1`` a faulty agent
    sends exactly ``−∇Q_i(x^t)``.
    """

    name = "gradient-reverse"

    def __init__(self, strength: float = 1.0):
        if strength <= 0:
            raise InvalidParameterError(f"strength must be positive, got {strength}")
        self._strength = float(strength)

    @property
    def strength(self) -> float:
        return self._strength

    def forge(self, context: AttackContext) -> np.ndarray:
        return -self._strength * context.true_faulty_gradients()


class RandomGaussian(ByzantineBehavior):
    """Send an i.i.d. Gaussian vector with isotropic covariance.

    The paper's second fault model; the evaluation uses standard deviation
    200, which is this class's default.
    """

    name = "random"

    def __init__(self, scale: float = 200.0):
        if scale <= 0:
            raise InvalidParameterError(f"scale must be positive, got {scale}")
        self._scale = float(scale)

    @property
    def scale(self) -> float:
        return self._scale

    def forge(self, context: AttackContext) -> np.ndarray:
        return context.rng.normal(
            loc=0.0, scale=self._scale, size=(context.num_faulty, context.dimension)
        )


class SignFlip(ByzantineBehavior):
    """Send the negated honest mean, amplified by ``strength``.

    Unlike :class:`GradientReverse` this does not require the faulty agents
    to hold cost functions — it pushes directly against the honest descent
    direction.
    """

    name = "sign-flip"

    def __init__(self, strength: float = 1.0):
        if strength <= 0:
            raise InvalidParameterError(f"strength must be positive, got {strength}")
        self._strength = float(strength)

    @property
    def strength(self) -> float:
        return self._strength

    def forge(self, context: AttackContext) -> np.ndarray:
        direction = -self._strength * context.honest_mean()
        return np.tile(direction, (context.num_faulty, 1))


class ZeroGradient(ByzantineBehavior):
    """Send the zero vector — a "lazy" fault that biases sums toward stalling."""

    name = "zero"

    def forge(self, context: AttackContext) -> np.ndarray:
        return np.zeros((context.num_faulty, context.dimension))


class ConstantBias(ByzantineBehavior):
    """Send a fixed vector every round, dragging the estimate toward it."""

    name = "constant-bias"

    def __init__(self, bias):
        self._bias = check_vector(bias, name="bias")

    @property
    def bias(self) -> np.ndarray:
        return self._bias.copy()

    def forge(self, context: AttackContext) -> np.ndarray:
        if self._bias.shape[0] != context.dimension:
            raise InvalidParameterError(
                f"bias dimension {self._bias.shape[0]} does not match problem "
                f"dimension {context.dimension}"
            )
        return np.tile(self._bias, (context.num_faulty, 1))


class CostSubstitution(ByzantineBehavior):
    """Faulty agents follow the protocol — for *substituted* cost functions.

    The general data-poisoning fault model: each controlled agent honestly
    reports gradients, but of a replacement cost (e.g. its local dataset
    with every label flipped — see
    :func:`repro.problems.learning.label_flip_attack`, which builds this
    behaviour from a learning instance). Because the forged gradients are
    genuine gradients of plausible costs, this fault is *undetectable* from
    any single round, making it the canonical stress test for the
    redundancy theory rather than for outlier filtering.
    """

    name = "cost-substitution"

    def __init__(self, substituted_costs):
        self._substituted = dict(substituted_costs)
        if not self._substituted:
            raise InvalidParameterError("substituted_costs must be non-empty")

    def forge(self, context: AttackContext) -> np.ndarray:
        rows = []
        for agent_id in context.faulty_ids:
            cost = self._substituted.get(agent_id)
            if cost is None:
                raise InvalidParameterError(
                    f"no substituted cost configured for faulty agent {agent_id}"
                )
            rows.append(cost.gradient(context.estimate))
        if not rows:
            return np.zeros((0, context.dimension))
        return np.stack(rows)
