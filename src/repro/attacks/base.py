"""Adversary interface shared by all Byzantine behaviours."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import CostFunction


@dataclass(frozen=True)
class AttackContext:
    """Everything a rushing omniscient adversary sees in one round.

    Attributes
    ----------
    round_index:
        The server's iteration counter ``t``.
    estimate:
        The broadcast estimate ``x^t``.
    honest_gradients:
        ``(n_h, d)`` matrix of the honest agents' gradients this round, in
        the order of ``honest_ids`` (the rushing adversary sees these
        before speaking).
    honest_ids:
        Agent indices corresponding to the rows of ``honest_gradients``.
    faulty_ids:
        Indices of the agents the adversary controls.
    faulty_costs:
        The faulty agents' *true* cost functions (entries may be ``None``
        when a faulty agent has no meaningful local cost). Behaviours like
        gradient-reverse use these to compute the gradients they corrupt.
    rng:
        Dedicated adversary randomness stream.
    """

    round_index: int
    estimate: np.ndarray
    honest_gradients: np.ndarray
    honest_ids: Sequence[int]
    faulty_ids: Sequence[int]
    faulty_costs: Sequence[Optional[CostFunction]]
    rng: np.random.Generator

    @property
    def dimension(self) -> int:
        return int(self.estimate.shape[0])

    @property
    def num_faulty(self) -> int:
        return len(self.faulty_ids)

    def true_faulty_gradients(self) -> np.ndarray:
        """The gradients the faulty agents *would* send if honest.

        Requires every faulty agent to hold a cost function; behaviours
        needing this raise a clear error otherwise.
        """
        rows: List[np.ndarray] = []
        for agent_id, cost in zip(self.faulty_ids, self.faulty_costs):
            if cost is None:
                raise InvalidParameterError(
                    f"faulty agent {agent_id} has no cost function; this behaviour "
                    "requires the faulty agents' true gradients"
                )
            rows.append(cost.gradient(self.estimate))
        if not rows:
            return np.zeros((0, self.dimension))
        return np.stack(rows)

    def honest_mean(self) -> np.ndarray:
        """Mean of the honest gradients (the direction most attacks target)."""
        if self.honest_gradients.shape[0] == 0:
            return np.zeros(self.dimension)
        return self.honest_gradients.mean(axis=0)

    def honest_std(self) -> np.ndarray:
        """Per-coordinate standard deviation of the honest gradients."""
        if self.honest_gradients.shape[0] == 0:
            return np.zeros(self.dimension)
        return self.honest_gradients.std(axis=0)


class ByzantineBehavior(abc.ABC):
    """A strategy producing the faulty agents' messages each round."""

    #: Registry name used by the experiment harness.
    name: str = "behavior"

    def __call__(self, context: AttackContext) -> np.ndarray:
        """Produce the ``(num_faulty, d)`` matrix of forged gradients."""
        forged = self.forge(context)
        forged = np.asarray(forged, dtype=float)
        expected = (context.num_faulty, context.dimension)
        if forged.shape != expected:
            raise InvalidParameterError(
                f"{type(self).__name__} produced shape {forged.shape}, expected {expected}"
            )
        return forged

    @abc.abstractmethod
    def forge(self, context: AttackContext) -> np.ndarray:
        """Strategy body; must return ``(num_faulty, d)``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
