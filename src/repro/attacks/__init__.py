"""Byzantine adversary behaviours.

The simulator models a *rushing, omniscient* adversary: each round it
observes the server's broadcast estimate **and** every honest agent's
gradient before choosing the faulty agents' messages — the strongest
adversary consistent with the paper's synchronous model, and the one
against which the filters must therefore be evaluated.
"""

from repro.attacks.base import AttackContext, ByzantineBehavior
from repro.attacks.best_response import PhiMinimizingAttack
from repro.attacks.adaptive import (
    ALittleIsEnough,
    IntermittentAttack,
    InnerProductManipulation,
    Mimic,
    OptimalDirectionAttack,
)
from repro.attacks.simple import (
    ConstantBias,
    GradientReverse,
    CostSubstitution,
    RandomGaussian,
    SignFlip,
    ZeroGradient,
)
from repro.attacks.registry import available_attacks, make_attack

__all__ = [
    "ByzantineBehavior",
    "AttackContext",
    "GradientReverse",
    "RandomGaussian",
    "SignFlip",
    "ZeroGradient",
    "ConstantBias",
    "CostSubstitution",
    "ALittleIsEnough",
    "InnerProductManipulation",
    "Mimic",
    "OptimalDirectionAttack",
    "PhiMinimizingAttack",
    "IntermittentAttack",
    "make_attack",
    "available_attacks",
]
