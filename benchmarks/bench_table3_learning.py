"""E7 — Table 3: distributed learning under attack.

Paper artefact: the distributed-learning application (the paper's SVM-style
experiments) — accuracy and honest loss per filter/attack, i.i.d. vs
heterogeneous local data.

Expected shape: robust filters reach near-fault-free accuracy in the i.i.d.
(redundant) regime; averaging collapses under the amplified sign-flip.
"""


def test_table3_learning(bench, reporter):
    result = bench("table3_learning").value
    reporter(result)
    iid = {(row[1], row[2]): row[4] for row in result.rows if row[0] == 0.0}
    reference = iid[("fault-free", "(none)")]
    assert iid[("cge", "sign-flip")] > reference - 0.05
    assert iid[("cwtm", "sign-flip")] > reference - 0.05
    assert iid[("average", "sign-flip")] < reference - 0.2
