"""E14 — Figure 7: accuracy vs inter-agent data correlation.

Paper artefact: the stated observation that learning accuracy under
Byzantine faults depends on the correlation (redundancy) between honest
agents' data.

Expected shape: near-zero robustness gap in the i.i.d. regime; the gap
widens monotonically-in-trend as heterogeneity grows.
"""


def test_fig7_heterogeneity(bench, reporter):
    result = bench("fig7_heterogeneity").value
    reporter(result)
    first, last = result.rows[0], result.rows[-1]
    num_filters = (len(first) - 2) // 2
    first_gaps = first[2 + num_filters :]
    last_gaps = last[2 + num_filters :]
    # Tiny gap under full redundancy; a visibly larger one at the extreme.
    assert all(gap < 0.05 for gap in first_gaps)
    assert all(gap > 0.1 for gap in last_gaps)
