"""E16 — DGD+CGE under a degraded (partially-synchronous) network.

Beyond the paper: the paper's guarantee assumes perfect synchrony. This
bench sweeps the delay bound B and the straggler count and measures how
far the self-healing runtime (bounded-staleness reuse, partial
aggregation, liveness suspicion instead of elimination) lets the output
drift from the honest minimizer.

Expected shape: the B=0 / 0-straggler corner matches the synchronous
engine exactly; degraded cells pay a modest, bounded accuracy cost and
never stall or drop messages under delay-only degradation.
"""


def test_degraded_network(bench, reporter):
    result = bench("degraded_network").value
    reporter(result)
    rows = result.rows
    by_cell = {(row[0], row[1]): row for row in rows}
    base_err = by_cell[(0, 0)][2]
    # Graceful degradation: every cell stays within a constant factor of
    # the fault-free corner (plus a small absolute floor).
    for (bound, stragglers), row in by_cell.items():
        assert row[2] < max(6.0 * base_err, 0.2), (bound, stragglers, row[2])
    # Delay-only degradation loses no messages outright.
    assert all(row[5] == 0 for row in rows)
    # Degraded cells actually exercise the staleness machinery.
    assert any(row[3] > 0 for row in rows if row[0] > 0)
