"""E9 — Figure 6: aggregation wall-time vs n and d.

Paper artefact: the practicality argument for gradient filters — CGE and
the trimmed mean are near-linear in input size, Krum quadratic in n, and
the subset-enumeration algorithm exponentially out of reach.

Expected shape: cge/cwtm times grow mildly in n; krum grows superlinearly.
"""

from repro.experiments import run_aggregator_scaling


def test_fig6_aggregator_scaling(benchmark, reporter):
    result = benchmark(
        lambda: run_aggregator_scaling(
            agent_counts=(10, 25, 50, 100), dimensions=(2, 100), repeats=3
        )
    )
    reporter(result)
    def times(name, d):
        return [row[3] for row in result.rows if row[0] == name and row[2] == d]

    cge_times = times("cge", 100)
    krum_times = times("krum", 100)
    # Krum's n² pairwise term dominates at the largest n.
    assert krum_times[-1] > cge_times[-1]
