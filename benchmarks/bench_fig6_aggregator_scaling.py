"""E9 — Figure 6: aggregation wall-time vs n and d.

Paper artefact: the practicality argument for gradient filters — CGE and
the trimmed mean are near-linear in input size, Krum quadratic in n, and
the subset-enumeration algorithm exponentially out of reach.

Expected shape: cge/cwtm times grow mildly in n; krum grows superlinearly.
The registered workload forwards the harness's telemetry handle into
``run_aggregator_scaling``, so the emitted ``BENCH_*.json`` carries one
timing phase per (filter, n, d) cell.
"""


def test_fig6_aggregator_scaling(bench, reporter):
    outcome = bench("fig6_aggregator_scaling")
    result = outcome.value
    reporter(result)

    def times(name, d):
        return [row[3] for row in result.rows if row[0] == name and row[2] == d]

    cge_times = times("cge", 100)
    krum_times = times("krum", 100)
    # Krum's n² pairwise term dominates at the largest n.
    assert krum_times[-1] > cge_times[-1]
    # The per-cell spans made it into the bench record's phase attribution.
    assert any(phase.startswith("filter:krum") for phase in outcome.result.phases)
