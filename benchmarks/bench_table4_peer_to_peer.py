"""E8 — Table 4: peer-to-peer simulation of the server-based algorithm.

Paper artefact: the architectural equivalence claim (``f < n/3`` via
Byzantine broadcast).

Expected shape: with a deterministic non-equivocating adversary the two
architectures produce bitwise-identical trajectories; equivocation inside
broadcast degenerates to the zero attack; messages scale with T·n²·f.
"""


def test_table4_peer_to_peer(bench, reporter):
    result = bench("table4_peer_to_peer").value
    reporter(result)
    for row in result.rows:
        n, f, server_error, p2p_error, gap, equivocating_error, messages = row
        assert gap < 1e-10
        assert messages > 0
