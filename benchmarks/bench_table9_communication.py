"""E15 — Table 9: communication cost per algorithm family.

Paper artefact: the systems trade-off implicit in the paper's three
algorithmic options (server-based DGD, peer-to-peer via broadcast, the
combinatorial subset algorithm).

Expected shape: server traffic is Θ(T·n); the peer-to-peer overhead ratio
grows with n·f; the subset algorithm's argmin-solve count grows
combinatorially while its communication stays one-shot.
"""


def test_table9_communication(bench, reporter):
    result = bench("table9_communication").value
    reporter(result)
    rows = result.rows
    # Server messages: exactly 2n per round.
    for row in rows:
        n, f = row[0], row[1]
        assert row[2] == 100 * 2 * n
    # P2P overhead ratio strictly increasing across configurations.
    ratios = [row[5] for row in rows]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
    # Subset solve counts grow combinatorially.
    solves = [row[6] for row in rows]
    assert all(a < b for a, b in zip(solves, solves[1:]))
