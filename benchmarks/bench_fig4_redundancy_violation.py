"""E5 — Figure 4: graceful degradation under redundancy violation.

Paper artefact: the redundancy/accuracy trade-off — the central message of
the characterization, swept empirically by injecting observation noise.

Expected shape: measured margin ε*(σ) and final errors grow together; at
σ = 0 the exact algorithm's error is numerically zero.
"""

import numpy as np


def test_fig4_redundancy_violation(bench, reporter):
    result = bench("fig4_redundancy_violation").value
    reporter(result)
    margins = result.series["margin eps*(sigma)"]
    errors = result.series["cge final error(sigma)"]
    assert margins[0] < 1e-9
    assert np.all(np.diff(margins) > 0)
    # Errors grow with the margin once above the optimization floor.
    assert errors[-1] > errors[0]
    for row in result.rows:
        _, margin, _, exact_error, _ = row
        assert exact_error <= 2.0 * margin + 1e-9
