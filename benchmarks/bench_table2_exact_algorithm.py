"""E4 — Table 2: exact fault-tolerance of the subset-enumeration algorithm.

Paper artefact: the achievability theorem, exercised end-to-end — under
exact 2f-redundancy the algorithm must output the honest minimizer for
*every* adversarial cost submission in the battery.

Expected shape: every configuration row reports "exact".
"""


def test_table2_exact_algorithm(bench, reporter):
    result = bench("table2_exact_algorithm").value
    reporter(result)
    assert all(row[-1] == "yes" for row in result.rows)
