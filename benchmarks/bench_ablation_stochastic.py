"""A4 — Ablation: step sizes under stochastic gradients (SGD extension).

Extension of the paper's deterministic setting to the SGD oracle of the
authors' follow-up work. Expected shape: the Robbins–Monro (diminishing)
schedule reaches a tail error far below the constant-step noise floors,
and the floors scale with the step size — the behaviour absent from the
deterministic ablation A2.
"""


def test_ablation_stochastic_step_sizes(bench, reporter):
    result = bench("ablation_stochastic").value
    reporter(result)
    tail = {row[0]: row[2] for row in result.rows}
    rm = tail["diminishing 1/t (RM)"]
    floors = [value for name, value in tail.items() if "constant" in name]
    assert all(rm < floor for floor in floors)
    # Larger constant step -> larger floor.
    assert tail["constant 0.05 (not RM)"] > tail["constant 0.01 (not RM)"]
