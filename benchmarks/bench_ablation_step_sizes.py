"""A2 — Ablation: step-size schedules (Robbins–Monro vs constant).

Design choice called out in DESIGN.md §4. Expected shape: every schedule
converges in this deterministic-gradient setting (CGE caps surviving
Byzantine norms, so there is no stochastic floor); the conservative 1/t
schedule is the slowest at a fixed horizon.
"""


def test_ablation_step_sizes(bench, reporter):
    result = bench("ablation_step_sizes").value
    reporter(result)
    errors = {row[0]: row[2] for row in result.rows}
    assert all(error < 0.5 for error in errors.values())
