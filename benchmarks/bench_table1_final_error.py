"""E1 — Table 1: final error of filtered DGD under Byzantine attacks.

Paper artefact: the headline results table (outputs ``x_out`` and errors
``dist(x_H, x_out)`` for CGE/CWTM under gradient-reverse and random faults,
``n = 6, f = 1, d = 2`` linear regression).

Expected shape: robust filters land within the instance's redundancy margin
of ``x_H``; plain averaging does not; the fault-free run brackets them.
"""


def test_table1_final_error(bench, reporter):
    outcome = bench("table1_final_error")
    result = outcome.value
    reporter(result)
    errors = {(row[0], row[1]): row[3] for row in result.rows if row[0] != "fault-free"}
    margin = float(result.notes[1].split("=")[-1])
    for attack in ("gradient-reverse", "random"):
        assert errors[("cge", attack)] < errors[("average", attack)]
        assert errors[("cge", attack)] <= 2.5 * margin
    # The headline errors are exported as gated quality metrics.
    assert outcome.result.metrics["cge_gradient_reverse_error"] == errors[
        ("cge", "gradient-reverse")
    ]
