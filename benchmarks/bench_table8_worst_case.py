"""E13 — Table 8: empirical worst-case certification (best-response adversary).

Paper artefact: the role of the ``α > 0`` sufficient condition, stress-
tested by an adversary that per-round minimizes the convergence inner
product ``φ_t`` with full knowledge of the filter and the honest state.

Expected shape: with ``α < 0`` (the paper's own n=6 instance) best-response
beats every fixed attack against CGE by a wide margin; with ``α > 0``
(n=15) CGE cannot be moved beyond its optimization floor; averaging is
driven toward the projection boundary in both regimes.
"""


def test_table8_worst_case(bench, reporter):
    result = bench("table8_worst_case").value
    reporter(result)
    rows = {(row[0], row[2]): row for row in result.rows}
    small_cge = rows[("n=6 (paper)", "cge")]
    large_cge = rows[("n=15", "cge")]
    # alpha < 0: best-response dominates the fixed battery against CGE.
    assert small_cge[1] < 0
    assert small_cge[5] > 2.0 * small_cge[4]
    # alpha > 0: best-response stays at optimization-floor scale.
    assert large_cge[1] > 0
    assert large_cge[5] < 0.1
    # Averaging is driven toward the projection boundary in both regimes.
    for regime in ("n=6 (paper)", "n=15"):
        assert rows[(regime, "average")][5] > 100.0
