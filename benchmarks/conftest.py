"""Shared configuration for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's (reconstructed) tables
or figures — see DESIGN.md §2 for the experiment index and EXPERIMENTS.md
for the recorded observations. The workload definitions live in the
benchmark registry (:mod:`repro.observability.perf.workloads`); the files
here resolve them by name through the ``bench`` fixture, which executes the
spec under the continuous-benchmarking harness so that every run emits a
schema'd ``BENCH_<name>.json`` (min-of-k timings, telemetry-span phases,
tracemalloc peak, provenance) at the repository root — the same records
``repro bench run`` produces and ``repro bench gate`` compares against the
committed baselines.

Benches print the full rendered table/series so that
``pytest benchmarks/ -s`` reproduces the paper's artefacts in the terminal;
the timed body is the full experiment run.
"""

from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def render(result):
    """Print an ExperimentResult under pytest's captured stdout."""
    print()
    print(result.render())
    return result


@pytest.fixture(scope="session")
def reporter():
    return render


@pytest.fixture(scope="session")
def bench():
    """Run a registered bench through the harness; emit ``BENCH_<name>.json``.

    Returns the :class:`~repro.observability.perf.BenchOutcome`, whose
    ``value`` is the workload's raw return (the experiment result the
    test asserts on) and whose ``result`` is the persisted record. One
    repeat — the pytest suite verifies artefact *shape*; the trajectory
    statistics come from ``repro bench run`` with its min-of-k default.
    """
    from repro.observability.perf import load_default_workloads, run_registered

    load_default_workloads()

    def _run(name, repeats=1, **kwargs):
        kwargs.setdefault("output_dir", str(REPO_ROOT))
        return run_registered(name, repeats=repeats, **kwargs)

    return _run
