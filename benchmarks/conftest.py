"""Shared configuration for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's (reconstructed) tables
or figures — see DESIGN.md §2 for the experiment index and EXPERIMENTS.md
for the recorded observations. Benches print the full rendered table/series
so that ``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's
artefacts in the terminal; the timed body is the full experiment run.
"""

import pytest


def render(result):
    """Print an ExperimentResult under pytest's captured stdout."""
    print()
    print(result.render())
    return result


@pytest.fixture(scope="session")
def reporter():
    return render
