"""E3 — Figure 3: the first 80 iterations, magnified.

Paper artefact: the zoomed-in early-phase view of the Figure 2 curves.

Expected shape: within the first 80 iterations the robust filters have
already separated from the unfiltered run under attack.
"""


def test_fig3_early_iterations(bench, reporter):
    result = bench("fig3_early_iterations").value
    reporter(result)
    assert result.experiment_id == "E3"
    for name, series in result.series.items():
        assert len(series) == 80, name
    robust = result.series["cge+random/distance"][-1]
    unfiltered = result.series["average+random/distance"][-1]
    assert robust < unfiltered
