"""E2 — Figure 2: honest loss and distance-to-x_H across 500 iterations.

Paper artefact: the convergence plots comparing fault-free DGD, DGD+CGE,
DGD+CWTM, and unfiltered DGD under each fault model.

Expected shape: robust-filter distance curves track the fault-free curve;
the unfiltered curves plateau (gradient-reverse) or blow up (random).
"""


def test_fig2_trajectories(bench, reporter):
    result = bench("fig2_trajectories").value
    reporter(result)
    for attack in ("gradient-reverse", "random"):
        robust = result.series[f"cge+{attack}/distance"][-1]
        unfiltered = result.series[f"average+{attack}/distance"][-1]
        assert robust < unfiltered
    # Loss curves decrease overall for the robust runs.
    for name in ("fault-free/loss", "cge+gradient-reverse/loss"):
        series = result.series[name]
        assert series[-1] < series[0]
