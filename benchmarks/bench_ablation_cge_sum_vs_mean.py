"""A1 — Ablation: CGE as a sum (paper) vs a mean of the kept gradients.

Design choice called out in DESIGN.md §4. Expected shape: identical
direction, different scale — with curvature-matched schedules both variants
converge to the same point; under one fixed schedule the scale mismatch
appears as a speed gap.
"""


def test_ablation_cge_sum_vs_mean(bench, reporter):
    result = bench("ablation_cge_sum_vs_mean").value
    reporter(result)
    errors = {(row[0], row[1]): row[2] for row in result.rows}
    assert errors[("sum", "matched")] < 0.15
    assert errors[("mean", "matched")] < 0.15
