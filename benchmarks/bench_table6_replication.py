"""E11 — Table 6: redundancy by design via cyclic data replication.

Paper artefact: the remark that 2f-redundancy "can be realized by design".
A non-redundant base assignment is repaired by replicating each observation
row at k consecutive agents.

Expected shape: 2f-redundancy flips to "yes" exactly at the proven
threshold k = 2f + 1, and the attacked DGD+CGE error collapses from O(1)
to the optimization floor at the same point.
"""


def test_table6_replication(bench, reporter):
    result = bench("table6_replication").value
    reporter(result)
    rows = {row[0]: (row[2], row[3]) for row in result.rows}
    assert rows[1][0] == "no"
    assert rows[3][0] == "yes"
    # Error at the threshold is an order of magnitude below the broken case.
    assert rows[3][1] < rows[1][1] / 10.0
