"""E12 — Table 7: the trimmed-mean condition's dimension dependence.

Paper artefact: the remark that the CWTM guarantee's skew condition
``λ < γ/(μ√d)`` tightens with the dimension (larger d → tighter bound).

Expected shape: flat measured skew, 1/√d threshold decay, a verdict flip
at some dimension, and near-zero empirical error throughout (the condition
is sufficient, not necessary).
"""

from math import sqrt

import pytest


def test_table7_cwtm_dimension(bench, reporter):
    result = bench("table7_cwtm_dimension").value
    reporter(result)
    skews = [row[1] for row in result.rows]
    thresholds = [row[2] for row in result.rows]
    verdicts = [row[3] for row in result.rows]
    errors = [row[5] for row in result.rows]
    # Skew flat, thresholds strictly decreasing as 1/sqrt(d).
    assert max(skews) - min(skews) < 1e-6
    assert all(a > b for a, b in zip(thresholds, thresholds[1:]))
    dims = [row[0] for row in result.rows]
    assert thresholds[0] / thresholds[-1] == pytest.approx(
        sqrt(dims[-1] / dims[0]), rel=1e-6
    )
    # The verdict flips inside the sweep; errors stay tiny regardless.
    assert verdicts[0] == "holds" and verdicts[-1] == "fails"
    assert max(errors) < 0.01
