"""A3 — Ablation: size of the compact constraint set W.

Design choice called out in DESIGN.md §4 (the convergence theorem requires
compact W). Expected shape: any W containing x_H yields the same answer; a
W excluding x_H converges to the boundary with error ≈ dist(x_H, W).
"""

import pytest


def test_ablation_projection(bench, reporter):
    result = bench("ablation_projection").value
    reporter(result)
    inside_errors = [row[2] for row in result.rows if row[1] == "yes"]
    assert max(inside_errors) - min(inside_errors) < 1e-6
    for row in result.rows:
        if row[1] == "no":
            assert row[2] == pytest.approx(row[3], rel=0.25)
