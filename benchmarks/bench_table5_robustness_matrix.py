"""E10 — Table 5: every registered filter × every registered attack.

Paper artefact: situates CGE in the robust-aggregation design space (the
comparison the paper's related-work discussion implies).

Expected shape: under the paper's fault models every robust filter stays
bounded while averaging fails; norm-camouflaged attacks expose CGE's large
guarantee constant without unbounded divergence.
"""


def test_table5_robustness_matrix(bench, reporter):
    result = bench("table5_robustness_matrix").value
    reporter(result)
    by_filter = {row[0]: row[1:] for row in result.rows}
    attacks = result.headers[1:]
    random_column = attacks.index("random")
    # Averaging diverges under the random attack; CGE does not.
    assert by_filter["average"][random_column] > 10 * by_filter["cge"][random_column]
    # No robust filter produces a non-finite error.
    for name, row in by_filter.items():
        for value in row:
            if value != "n/a":
                assert value < 100.0, (name, value)
