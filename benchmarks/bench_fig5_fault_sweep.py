"""E6 — Figure 5: final error vs number of Byzantine agents, per filter.

Paper artefact: the fault-count dependence of the guarantees — the
``α(f) > 0`` condition of the CGE analysis against empirical breakdown.

Expected shape: robust filters hold errors near zero for small f; plain
averaging degrades immediately; α decreases monotonically in f.
"""

import numpy as np


def test_fig5_fault_sweep(bench, reporter):
    result = bench("fig5_fault_sweep").value
    reporter(result)
    alphas = result.series["alpha vs f"]
    assert np.all(np.diff(alphas) < 0)
    cge = result.series["cge error vs f"]
    average = result.series["average error vs f"]
    # At the largest fault count, averaging is far worse than CGE.
    assert average[-1] > 5 * cge[-1]
    # While alpha > 0, CGE errors stay tiny.
    for alpha, error in zip(alphas, cge):
        if alpha > 0:
            assert error < 0.05
