"""Engine throughput: sequential runner vs batch engine vs pooled sweeps.

Measures replicate-run throughput (runs/sec) on the paper's n=6, d=2
regression workload in three execution modes:

- **sequential** — one :func:`run_dgd` call per seed (the baseline every
  experiment module used before the engine existed);
- **batch** — all seeds in one :func:`run_dgd_batch` call (stacked-tensor
  execution, bit-identical results);
- **pooled** — a (filter × attack) grid fanned over the
  :class:`SweepEngine` process pool, each group batched (the realistic
  sweep workload).

Results are written to ``BENCH_engine.json`` at the repository root so the
performance trajectory is tracked across PRs. The batch engine must beat
the sequential path by at least 5× — that is the engine's reason to exist,
and the assertion keeps the vectorized kernels from silently regressing
into per-run fallbacks.
"""

import json
import time
from pathlib import Path

from repro.attacks.registry import make_attack
from repro.experiments.sweep import RegressionGrid, SweepEngine, derive_run_seeds
from repro.problems.linear_regression import make_redundant_regression
from repro.system.batch import run_dgd_batch
from repro.system.runner import DGDConfig, run_dgd

N, D, F = 6, 2, 1
NUM_SEEDS = 50
ITERATIONS = 300
MASTER_SEED = 20200803
POOLED_FILTERS = ("cge", "cwtm", "median", "average")
POOLED_ATTACKS = ("gradient-reverse", "zero")


def test_engine_throughput(benchmark, reporter):
    instance = make_redundant_regression(
        n=N, d=D, f=F, noise_std=0.0, seed=MASTER_SEED
    )
    config = DGDConfig(
        iterations=ITERATIONS, gradient_filter="cge", faulty_ids=(0,), f=F
    )
    behavior = make_attack("gradient-reverse")
    seeds = derive_run_seeds(MASTER_SEED, NUM_SEEDS)

    start = time.perf_counter()
    sequential_traces = [
        run_dgd(instance.costs, behavior, config, seed=seed) for seed in seeds
    ]
    sequential_elapsed = time.perf_counter() - start

    batch_traces = benchmark(
        run_dgd_batch, instance.costs, behavior, config, seeds=seeds
    )
    batch_elapsed = batch_traces[0].extra["batch"]["wall_time"]

    # Spot-check the speedup is not bought with different numbers.
    import numpy as np

    for a, b in zip(sequential_traces, batch_traces):
        assert np.array_equal(a.estimates, b.estimates)

    grid = RegressionGrid(
        filters=POOLED_FILTERS, attacks=POOLED_ATTACKS, fault_counts=(F,),
        num_seeds=NUM_SEEDS, master_seed=MASTER_SEED, n=N, d=D,
        iterations=ITERATIONS,
    )
    engine = SweepEngine(parallel=True)
    start = time.perf_counter()
    cells = engine.run_regression_grid(grid)
    pooled_elapsed = time.perf_counter() - start
    assert not any(cell.failed for cell in cells)

    report = {
        "workload": {
            "n": N, "d": D, "f": F, "iterations": ITERATIONS,
            "num_seeds": NUM_SEEDS,
            "pooled_grid_cells": len(cells),
        },
        "runs_per_sec": {
            "sequential": NUM_SEEDS / sequential_elapsed,
            "batch": NUM_SEEDS / batch_elapsed,
            "pooled": len(cells) / pooled_elapsed,
        },
        "speedup": {
            "batch_vs_sequential": sequential_elapsed / batch_elapsed,
            "pooled_vs_sequential": (
                (len(cells) / pooled_elapsed) / (NUM_SEEDS / sequential_elapsed)
            ),
        },
    }
    output = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    output.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(json.dumps(report, indent=2))
    print(f"wrote {output}")

    assert report["speedup"]["batch_vs_sequential"] >= 5.0
