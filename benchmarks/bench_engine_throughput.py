"""Engine throughput: sequential runner vs batch engine vs pooled sweeps.

Measures replicate-run throughput (runs/sec) on the paper's n=6, d=2
regression workload in three execution modes:

- **sequential** — one :func:`run_dgd` call per seed (the baseline every
  experiment module used before the engine existed);
- **batch** — all seeds in one :func:`run_dgd_batch` call (stacked-tensor
  execution, bit-identical results);
- **pooled** — a (filter × attack) grid fanned over the
  :class:`SweepEngine` process pool, each group batched (the realistic
  sweep workload).

The registered ``engine`` workload asserts bitwise identity between the
sequential and batch trajectories before reporting throughput, and the
harness persists the results to ``BENCH_engine.json`` at the repository
root — now under the unified ``repro.bench/v1`` schema, written atomically
with a checksum and full provenance — so the performance trajectory is
tracked across PRs. The batch engine must beat the sequential path by at
least 5× — that is the engine's reason to exist, and the assertion keeps
the vectorized kernels from silently regressing into per-run fallbacks.
"""


import json


def test_engine_throughput(bench):
    outcome = bench("engine")
    report = outcome.value
    print()
    print(json.dumps(report, indent=2))
    # One cell per (filter, attack, f, seed): 4 x 2 x 1 x 50.
    assert report["pooled_grid_cells"] == 400
    # Wall-clock-derived ratios live in the non-gated observations slot of
    # the persisted record, not in the 1%-tolerance metric gate.
    assert outcome.result.observations["speedup"] == report["speedup"]
    assert outcome.path is not None and outcome.path.endswith("BENCH_engine.json")
    assert report["speedup"]["batch_vs_sequential"] >= 5.0
