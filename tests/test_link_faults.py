"""Unit tests for link-level fault primitives and per-edge liveness.

The determinism contract under test: every draw — drop, delay, corrupt,
corruption coordinate — is a pure function of ``(seed, tag, round,
sender, receiver)``, so any schedule replays exactly from its
declaration with no RNG stream state.
"""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.system.faultinjection import deterministic_draw_array
from repro.system.healing import NeighborhoodLiveness, ResiliencePolicy
from repro.system.netfaults import (
    ChurnWindow,
    LinkFaultModel,
    LinkFaultProfile,
    PartitionWindow,
    corrupt_payload_rows,
)


class TestDeterministicDrawArray:
    def test_pure_function_of_seed_and_keys(self):
        edges = np.arange(1000)
        a = deterministic_draw_array(7, 3, edges, edges * 2)
        b = deterministic_draw_array(7, 3, edges, edges * 2)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, deterministic_draw_array(8, 3, edges, edges * 2))
        assert not np.array_equal(a, deterministic_draw_array(7, 4, edges, edges * 2))

    def test_range_and_spread(self):
        draws = deterministic_draw_array(0, 1, np.arange(10_000))
        assert ((draws >= 0.0) & (draws < 1.0)).all()
        # splitmix64 output should look uniform, not clumped
        assert abs(draws.mean() - 0.5) < 0.02

    def test_broadcasting_and_scalar_keys(self):
        out = deterministic_draw_array(1, np.arange(4)[:, None], np.arange(3))
        assert out.shape == (4, 3)
        scalar = deterministic_draw_array(1, 5, 6)
        assert np.isscalar(scalar) or scalar.shape == ()

    def test_negative_keys_are_valid(self):
        out = deterministic_draw_array(2, np.array([-1, -2, 3]))
        assert ((out >= 0.0) & (out < 1.0)).all()

    def test_requires_a_key(self):
        with pytest.raises(InvalidParameterError):
            deterministic_draw_array(0)


class TestLinkFaultProfile:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            LinkFaultProfile(drop_prob=1.5)
        with pytest.raises(InvalidParameterError):
            LinkFaultProfile(max_delay=-1)
        with pytest.raises(InvalidParameterError, match="max_delay"):
            LinkFaultProfile(delay_prob=0.5)  # delay without a bound
        with pytest.raises(InvalidParameterError, match="corrupt_mode"):
            LinkFaultProfile(corrupt_prob=0.1, corrupt_mode="scramble")

    def test_null_and_delay_bound(self):
        assert LinkFaultProfile().is_null
        assert LinkFaultProfile().worst_case_delay() == 0
        chaotic = LinkFaultProfile(delay_prob=0.2, max_delay=3)
        assert not chaotic.is_null
        assert chaotic.worst_case_delay() == 3
        # a configured but gated-off delay does not extend the bound
        assert LinkFaultProfile(drop_prob=0.1, max_delay=5).worst_case_delay() == 0


class TestWindows:
    def test_partition_canonicalizes_and_validates(self):
        window = PartitionWindow(start=2, end=5, groups=((3, 1, 2),))
        assert window.groups == ((1, 2, 3),)
        assert not window.active_at(1) and window.active_at(2)
        assert window.active_at(4) and not window.active_at(5)
        labels = window.labels(6)
        assert labels.tolist() == [1, 0, 0, 0, 1, 1]  # rest group = 1
        with pytest.raises(InvalidParameterError, match="two partition groups"):
            PartitionWindow(start=0, end=2, groups=((0, 1), (1, 2)))
        with pytest.raises(InvalidParameterError):
            PartitionWindow(start=3, end=3, groups=((0,),))
        with pytest.raises(InvalidParameterError, match="out of range"):
            PartitionWindow(start=0, end=1, groups=((9,),)).labels(4)

    def test_churn_window_semantics(self):
        window = ChurnWindow(agent=3, down_round=5, up_round=8)
        assert [window.is_down(r) for r in (4, 5, 7, 8)] == [
            False, True, True, False,
        ]
        permanent = ChurnWindow(agent=3, down_round=5)
        assert permanent.is_down(10_000)
        with pytest.raises(InvalidParameterError):
            ChurnWindow(agent=3, down_round=5, up_round=5)


class TestLinkFaultModel:
    def test_overlapping_partitions_rejected(self):
        a = PartitionWindow(start=0, end=10, groups=((0,),))
        b = PartitionWindow(start=5, end=15, groups=((1,),))
        with pytest.raises(InvalidParameterError, match="overlap"):
            LinkFaultModel(partitions=(a, b))

    def test_profile_lookup_directed_then_reverse_then_default(self):
        asym = LinkFaultProfile(drop_prob=0.9)
        shared = LinkFaultProfile(drop_prob=0.4)
        model = LinkFaultModel(
            default_profile=LinkFaultProfile(drop_prob=0.1),
            link_profiles={(0, 1): asym, (2, 3): shared},
        )
        assert model.profile_for(0, 1) is asym
        assert model.profile_for(1, 0) is asym  # reverse fallback
        assert model.profile_for(3, 2) is shared
        assert model.profile_for(4, 5).drop_prob == 0.1

    def test_staleness_bound_tiers(self):
        assert LinkFaultModel().staleness_bound() == 0
        drops_only = LinkFaultModel(
            default_profile=LinkFaultProfile(drop_prob=0.2)
        )
        assert drops_only.staleness_bound() == 1
        delayed = LinkFaultModel(
            default_profile=LinkFaultProfile(delay_prob=0.2, max_delay=3)
        )
        assert delayed.staleness_bound() == 3

    def test_draws_are_deterministic_and_respect_masks(self):
        model = LinkFaultModel(
            default_profile=LinkFaultProfile(
                drop_prob=0.3, delay_prob=0.4, max_delay=2, corrupt_prob=0.3
            ),
            seed=11,
        )
        senders = np.repeat(np.arange(20), 19)
        receivers = np.concatenate(
            [[v for v in range(20) if v != u] for u in range(20)]
        )
        a = model.draw_link_faults(5, senders, receivers)
        b = model.draw_link_faults(5, senders, receivers)
        for key in ("dropped", "delay", "corrupt"):
            assert np.array_equal(a[key], b[key])
        assert not np.array_equal(
            a["dropped"], model.draw_link_faults(6, senders, receivers)["dropped"]
        )
        # dropped edges are neither delayed nor corrupted
        assert (a["delay"][a["dropped"]] == 0).all()
        assert not (a["corrupt"] & a["dropped"]).any()
        assert a["delay"].max() <= 2

    def test_partition_cut_and_churn_fold_into_dropped(self):
        model = LinkFaultModel(
            partitions=(PartitionWindow(start=0, end=10, groups=((0, 1),)),),
            churn=(ChurnWindow(agent=3, down_round=0),),
            seed=0,
        )
        senders = np.array([0, 1, 0, 2, 3, 2])
        receivers = np.array([1, 0, 2, 0, 2, 4])
        active = model.draw_link_faults(5, senders, receivers)
        # intra-group (0<->1) survives; cross-group and churned drop
        assert active["dropped"].tolist() == [False, False, True, True, True, False]
        healed = model.draw_link_faults(10, senders, receivers)
        assert healed["dropped"].tolist() == [False, False, False, False, True, False]


class TestCorruptPayloadRows:
    def _edges(self, m):
        return np.arange(m), np.arange(m) + 100

    def test_pure_function_and_copy_semantics(self):
        payloads = np.ones((4, 6))
        senders, receivers = self._edges(4)
        modes = np.zeros(4, dtype=np.int64)  # nan
        a = corrupt_payload_rows(payloads, modes, 3, 7, senders, receivers)
        b = corrupt_payload_rows(payloads, modes, 3, 7, senders, receivers)
        assert np.array_equal(np.isnan(a), np.isnan(b))
        assert np.isfinite(payloads).all()  # input untouched
        assert (np.isnan(a).sum(axis=1) == 1).all()  # one coordinate per row

    def test_modes(self):
        payloads = np.ones((3, 5))
        senders, receivers = self._edges(3)
        modes = np.array([0, 1, 2], dtype=np.int64)  # nan, inf, bitflip
        out = corrupt_payload_rows(payloads, modes, 1, 2, senders, receivers)
        assert np.isnan(out[0]).sum() == 1
        assert np.isinf(out[1]).sum() == 1
        assert np.isfinite(out[2]).all()
        assert (out[2] != payloads[2]).sum() == 1  # one bit-flipped coord

    def test_empty_rows_roundtrip(self):
        out = corrupt_payload_rows(
            np.empty((0, 4)), np.empty(0, dtype=np.int64), 0, 0,
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
        )
        assert out.shape == (0, 4)


class TestNeighborhoodLiveness:
    def _tracker(self, threshold=3):
        senders = np.array([0, 1, 2, 0])
        receivers = np.array([1, 2, 0, 2])
        return NeighborhoodLiveness(senders, receivers, threshold), 4

    def test_suspicion_after_threshold_and_reinstatement(self):
        tracker, num_edges = self._tracker(threshold=3)
        silent_edge = np.array([False, True, True, True])
        for round_index in range(2):
            newly, reinstated = tracker.observe(round_index, silent_edge)
            assert (newly, reinstated) == (0, 0)
        newly, _ = tracker.observe(2, silent_edge)
        assert newly == 1
        assert tracker.suspected_edges() == [(0, 1)]
        # one delivery reinstates immediately
        newly, reinstated = tracker.observe(3, np.ones(num_edges, dtype=bool))
        assert (newly, reinstated) == (0, 1)
        assert tracker.suspected_edges() == []
        assert tracker.reinstatements == 1

    def test_live_in_degree_reflects_suspicion(self):
        tracker, num_edges = self._tracker(threshold=1)
        assert tracker.live_in_degree(3).tolist() == [1, 1, 2]
        tracker.observe(0, np.array([True, True, False, True]))
        assert tracker.suspected_edges() == [(2, 0)]
        assert tracker.live_in_degree(3).tolist() == [0, 1, 2]

    def test_state_roundtrip(self):
        tracker, num_edges = self._tracker(threshold=2)
        tracker.observe(0, np.array([False, False, True, True]))
        snapshot = tracker.state()
        other, _ = self._tracker(threshold=2)
        other.restore_state(snapshot)
        other.observe(1, np.zeros(num_edges, dtype=bool))
        tracker.observe(1, np.zeros(num_edges, dtype=bool))
        assert other.suspected_edges() == tracker.suspected_edges()
        assert np.array_equal(other.last_seen(), tracker.last_seen())

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            NeighborhoodLiveness(np.array([0]), np.array([1]), 0)
        with pytest.raises(InvalidParameterError):
            NeighborhoodLiveness(np.array([0, 1]), np.array([1]), 1)
        tracker, _ = self._tracker()
        with pytest.raises(InvalidParameterError, match="shape"):
            tracker.observe(0, np.array([True]))


class TestPolicyForLinkModel:
    def test_matches_model_bounds(self):
        delayed = LinkFaultModel(
            default_profile=LinkFaultProfile(delay_prob=0.2, max_delay=3)
        )
        policy = ResiliencePolicy.for_link_model(delayed)
        assert policy.max_staleness == 3
        assert policy.eliminate_on_silence is False
        null_policy = ResiliencePolicy.for_link_model(LinkFaultModel())
        assert null_policy.max_staleness == 0
        assert null_policy.eliminate_on_silence is True

    def test_overrides_win(self):
        model = LinkFaultModel(
            default_profile=LinkFaultProfile(drop_prob=0.5)
        )
        policy = ResiliencePolicy.for_link_model(model, max_staleness=7)
        assert policy.max_staleness == 7
