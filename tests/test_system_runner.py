"""Tests for the end-to-end DGD runner."""

import numpy as np
import pytest

from repro.attacks.simple import GradientReverse, RandomGaussian
from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import TranslatedQuadratic
from repro.optimization.step_sizes import ConstantStepSize
from repro.optimization.projections import UnconstrainedSet
from repro.system.runner import DGDConfig, run_dgd


class TestBasicExecution:
    def test_fault_free_converges(self):
        costs = [TranslatedQuadratic([2.0, 2.0]) for _ in range(5)]
        trace = run_dgd(costs, None, gradient_filter="average", iterations=200, seed=0)
        assert np.allclose(trace.final_estimate, [2.0, 2.0], atol=1e-3)
        assert trace.iterations == 200
        assert trace.honest_ids == [0, 1, 2, 3, 4]
        assert trace.faulty_ids == []

    def test_trace_shapes(self):
        costs = [TranslatedQuadratic([0.0, 0.0]) for _ in range(4)]
        trace = run_dgd(costs, None, gradient_filter="average", iterations=17, seed=0)
        assert trace.estimates.shape == (18, 2)
        assert trace.directions.shape == (17, 2)
        assert trace.dimension == 2

    def test_distances_and_losses(self):
        costs = [TranslatedQuadratic([1.0, 0.0]) for _ in range(4)]
        trace = run_dgd(costs, None, gradient_filter="average", iterations=50, seed=0)
        distances = trace.distances_to([1.0, 0.0])
        assert distances.shape == (51,)
        assert distances[-1] < distances[0]
        losses = trace.losses(costs)
        assert losses[-1] < losses[0]

    def test_reproducible_given_seed(self):
        costs = [TranslatedQuadratic([1.0, 1.0]) for _ in range(5)]
        a = run_dgd(costs, RandomGaussian(), faulty_ids=[0], gradient_filter="cge",
                    iterations=30, seed=9)
        b = run_dgd(costs, RandomGaussian(), faulty_ids=[0], gradient_filter="cge",
                    iterations=30, seed=9)
        assert np.array_equal(a.estimates, b.estimates)

    def test_network_accounting_positive(self):
        costs = [TranslatedQuadratic([0.0]) for _ in range(3)]
        trace = run_dgd(costs, None, gradient_filter="average", iterations=5, seed=0)
        # Each round: 3 broadcasts + 3 replies.
        assert trace.messages_delivered == 5 * 6
        assert trace.bytes_delivered > 0

    def test_record_messages_flag(self):
        costs = [TranslatedQuadratic([0.0]) for _ in range(3)]
        trace = run_dgd(costs, None, gradient_filter="average", iterations=2,
                        record_messages=True, seed=0)
        assert "network_log" in trace.extra
        assert len(trace.extra["network_log"]) > 0


class TestByzantineExecution:
    def test_cge_beats_average_under_reverse_attack(self, paper):
        x_H = paper.honest_minimizer([1, 2, 3, 4, 5])
        cge = run_dgd(paper.costs, GradientReverse(), faulty_ids=[0],
                      gradient_filter="cge", iterations=400, seed=0)
        avg = run_dgd(paper.costs, GradientReverse(), faulty_ids=[0],
                      gradient_filter="average", iterations=400, seed=0)
        assert np.linalg.norm(cge.final_estimate - x_H) < np.linalg.norm(
            avg.final_estimate - x_H
        )

    def test_filter_instance_accepted(self, paper):
        from repro.aggregators.cge import ComparativeGradientElimination

        trace = run_dgd(paper.costs, GradientReverse(), faulty_ids=[0],
                        gradient_filter=ComparativeGradientElimination(f=1),
                        iterations=20, seed=0)
        assert trace.filter_name == "cge"

    def test_config_object_with_overrides(self, paper):
        config = DGDConfig(iterations=10, gradient_filter="cwtm", faulty_ids=(0,))
        trace = run_dgd(paper.costs, GradientReverse(), config=config, iterations=15)
        assert trace.iterations == 15
        assert trace.filter_name == "cwtm"


class TestValidationAndWarnings:
    def test_faulty_without_behavior_rejected(self, paper):
        with pytest.raises(InvalidParameterError):
            run_dgd(paper.costs, None, faulty_ids=[0], iterations=5)

    def test_faulty_exceeding_f_rejected(self, paper):
        with pytest.raises(InvalidParameterError):
            run_dgd(paper.costs, GradientReverse(), faulty_ids=[0, 1], f=1, iterations=5)

    def test_out_of_range_faulty_rejected(self, paper):
        with pytest.raises(InvalidParameterError):
            run_dgd(paper.costs, GradientReverse(), faulty_ids=[99], iterations=5)

    def test_mismatched_dimensions_rejected(self):
        costs = [TranslatedQuadratic([0.0]), TranslatedQuadratic([0.0, 0.0])]
        with pytest.raises(InvalidParameterError):
            run_dgd(costs, None, iterations=5)

    def test_empty_costs_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_dgd([], None, iterations=5)

    def test_non_robbins_monro_schedule_warns(self, paper):
        with pytest.warns(UserWarning, match="Robbins-Monro"):
            run_dgd(paper.costs, None, iterations=2,
                    step_sizes=ConstantStepSize(0.01), seed=0)

    def test_non_compact_projection_warns(self, paper):
        with pytest.warns(UserWarning, match="compact"):
            run_dgd(paper.costs, None, iterations=2,
                    projection=UnconstrainedSet(2), seed=0)

    def test_announced_f_larger_than_actual_faults(self, paper):
        # f=2 announced but only one actual fault: still runs and converges.
        trace = run_dgd(paper.costs, GradientReverse(), faulty_ids=[0], f=2,
                        gradient_filter="cge", iterations=300, seed=0)
        x_H = paper.honest_minimizer([1, 2, 3, 4, 5])
        assert np.linalg.norm(trace.final_estimate - x_H) < 0.5


class TestCrashFaults:
    def test_crash_agent_detected_and_eliminated(self):
        from repro.problems.linear_regression import make_redundant_regression

        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=0)
        trace = run_dgd(
            instance.costs, None, gradient_filter="cge",
            crash_rounds={3: 10}, iterations=600, seed=0,
        )
        assert trace.crash_ids == [3]
        assert trace.eliminated == [3]
        assert 3 not in trace.honest_ids
        x_H = instance.honest_minimizer([0, 1, 2, 4, 5])
        assert np.linalg.norm(trace.final_estimate - x_H) < 0.05

    def test_crash_counts_against_fault_budget(self, paper):
        # One adversarial + one crash with f=1 announced: over budget.
        with pytest.raises(InvalidParameterError):
            run_dgd(paper.costs, GradientReverse(), faulty_ids=[0],
                    f=1, crash_rounds={1: 5}, iterations=10)

    def test_adversarial_and_crash_disjoint(self, paper):
        with pytest.raises(InvalidParameterError):
            run_dgd(paper.costs, GradientReverse(), faulty_ids=[0],
                    crash_rounds={0: 5}, iterations=10)

    def test_mixed_adversarial_and_crash_faults(self):
        from repro.problems.linear_regression import make_redundant_regression

        instance = make_redundant_regression(n=8, d=2, f=2, noise_std=0.0, seed=1)
        trace = run_dgd(
            instance.costs, GradientReverse(), faulty_ids=[0],
            crash_rounds={1: 20}, gradient_filter="cge",
            iterations=1500, seed=1,
        )
        assert trace.eliminated == [1]
        x_H = instance.honest_minimizer(range(2, 8))
        assert np.linalg.norm(trace.final_estimate - x_H) < 0.05

    def test_crash_id_out_of_range(self, paper):
        with pytest.raises(InvalidParameterError):
            run_dgd(paper.costs, None, crash_rounds={99: 3}, iterations=5)


class TestConfigOverrides:
    def test_unknown_override_rejected_with_field_list(self, paper):
        with pytest.raises(InvalidParameterError, match="valid fields"):
            run_dgd(paper.costs, None, iterations=5, iteratons=7)

    def test_override_does_not_mutate_base_config(self, paper):
        from repro.system.runner import apply_config_overrides

        base = DGDConfig(iterations=5)
        derived = apply_config_overrides(base, {"seed": 9, "iterations": 3})
        assert base.iterations == 5 and base.seed == 0
        assert derived.iterations == 3 and derived.seed == 9

    def test_empty_overrides_return_config_unchanged(self):
        from repro.system.runner import apply_config_overrides

        base = DGDConfig()
        assert apply_config_overrides(base, {}) is base


class TestNetworkLogCapacity:
    def test_log_capacity_plumbed_from_config(self, paper):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            trace = run_dgd(
                paper.costs, None, iterations=30, record_messages=True,
                log_capacity=50,
            )
        # 30 rounds x 12 deliveries = 360 records against capacity 50.
        assert len(trace.extra["network_log"]) == 50
        assert any("overflowed" in str(w.message) for w in caught)

    def test_no_warning_when_log_fits(self, paper):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            trace = run_dgd(
                paper.costs, None, iterations=5, record_messages=True,
                log_capacity=1000,
            )
        assert len(trace.extra["network_log"]) == 5 * 12
        assert not any("overflowed" in str(w.message) for w in caught)

    def test_network_eviction_counters(self):
        from repro.system.messages import GradientMessage
        from repro.system.network import SynchronousNetwork

        network = SynchronousNetwork(log_capacity=3)
        assert network.log_capacity == 3
        for round_index in range(5):
            network.deliver(
                GradientMessage(sender=0, round_index=round_index,
                                gradient=np.zeros(2)),
                receiver=-1,
            )
        assert network.records_evicted == 2
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            log = network.log
            network.log  # warn-once: second access stays silent
        assert len(log) == 3
        assert sum("overflowed" in str(w.message) for w in caught) == 1

    def test_invalid_log_capacity_rejected(self):
        from repro.system.network import SynchronousNetwork

        with pytest.raises(InvalidParameterError):
            SynchronousNetwork(log_capacity=0)
