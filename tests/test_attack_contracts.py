"""Registry-wide conformance suite for Byzantine behaviours.

Every test parametrizes over :func:`available_attacks` (plus the
non-registry φ-minimizing best response), so a newly registered attack
is covered automatically. The contract: an attack is a pure function of
its :class:`~repro.attacks.base.AttackContext` and the context's
dedicated ``rng`` stream (seed-deterministic), it never mutates the
honest gradient tensor or the broadcast estimate (the PR 6 ``M = G``
aliasing regression, generalized to the whole bank), its output shares
no memory with the honest inputs, and it respects its declared
f-budget: exactly ``(num_faulty, d)`` forged rows, for any ``f``.
"""

import numpy as np
import pytest

from repro.aggregators import make_filter
from repro.attacks import available_attacks, make_attack
from repro.attacks.base import AttackContext
from repro.attacks.best_response import PhiMinimizingAttack
from repro.attacks.simple import ZeroGradient
from repro.exceptions import InvalidParameterError, UnknownRegistryEntryError
from repro.optimization.cost_functions import TranslatedQuadratic

D = 3


def make_behavior(name, num_faulty=2, dimension=D):
    """Instantiate a registered attack with its required kwargs."""
    kwargs = {}
    if name == "constant-bias":
        kwargs = {"bias": np.ones(dimension)}
    if name == "optimal-direction":
        kwargs = {"target": np.ones(dimension)}
    if name == "cost-substitution":
        kwargs = {
            "substituted_costs": {
                i: TranslatedQuadratic(np.zeros(dimension))
                for i in range(num_faulty)
            }
        }
    if name == "intermittent":
        kwargs = {"inner": ZeroGradient(), "period": 2}
    if name == PhiMinimizingAttack.name:
        return PhiMinimizingAttack(
            make_filter("cwtm", f=num_faulty),
            np.zeros(dimension),
            num_random_probes=2,
        )
    return make_attack(name, **kwargs)


def make_context(num_faulty=2, dimension=D, num_honest=4, seed=0):
    rng = np.random.default_rng(seed + 100)
    honest = rng.normal(size=(num_honest, dimension))
    faulty_ids = list(range(num_faulty))
    return AttackContext(
        round_index=0,
        estimate=rng.normal(size=dimension),
        honest_gradients=honest,
        honest_ids=list(range(num_faulty, num_faulty + num_honest)),
        faulty_ids=faulty_ids,
        faulty_costs=[
            TranslatedQuadratic(np.full(dimension, float(i + 1)))
            for i in faulty_ids
        ],
        rng=np.random.default_rng(seed),
    )


ALL_BEHAVIORS = sorted(available_attacks()) + [PhiMinimizingAttack.name]


@pytest.mark.parametrize("name", ALL_BEHAVIORS)
class TestAttackContracts:
    def test_seed_deterministic(self, name):
        """Identical contexts (same rng seed) produce identical forgeries."""
        out_a = make_behavior(name)(make_context(seed=7))
        out_b = make_behavior(name)(make_context(seed=7))
        assert np.array_equal(out_a, out_b), (
            f"{name} is not deterministic given the context rng"
        )

    def test_different_rng_streams_allowed(self, name):
        """The contract permits (does not require) rng-dependent output."""
        out_a = make_behavior(name)(make_context(seed=1))
        out_b = make_behavior(name)(make_context(seed=2))
        assert out_a.shape == out_b.shape  # shapes must still agree

    def test_never_mutates_honest_inputs(self, name):
        """The whole-bank version of the PR 6 ``M = G`` aliasing regression."""
        ctx = make_context(seed=3)
        honest_before = ctx.honest_gradients.copy()
        estimate_before = ctx.estimate.copy()
        out = make_behavior(name)(ctx)
        assert np.array_equal(ctx.honest_gradients, honest_before), (
            f"{name} mutated the honest gradient tensor"
        )
        assert np.array_equal(ctx.estimate, estimate_before), (
            f"{name} mutated the broadcast estimate"
        )
        assert not np.shares_memory(out, ctx.honest_gradients), (
            f"{name} returned a view of the honest gradients; a later "
            "in-place edit would corrupt them"
        )
        assert not np.shares_memory(out, ctx.estimate)

    @pytest.mark.parametrize("num_faulty", [1, 2, 4])
    def test_respects_f_budget(self, name, num_faulty):
        """Exactly ``(num_faulty, d)`` forged rows — never more agents."""
        # Enough honest agents that every defending filter stays feasible
        # (phi-minimizing evaluates a filter on all n = honest + faulty rows).
        ctx = make_context(num_faulty=num_faulty, num_honest=num_faulty + 2, seed=5)
        out = make_behavior(name, num_faulty=num_faulty)(ctx)
        assert out.shape == (num_faulty, D), (
            f"{name} with f={num_faulty} produced shape {out.shape}"
        )
        assert out.dtype == np.float64

    def test_output_is_fresh_across_calls(self, name):
        """Two calls never hand back the same mutable buffer."""
        behavior = make_behavior(name)
        out_a = behavior(make_context(seed=11))
        out_b = behavior(make_context(seed=11))
        assert not np.shares_memory(out_a, out_b), (
            f"{name} reuses its output buffer across calls"
        )


class TestRegistryErrors:
    def test_unknown_attack_is_structured(self):
        with pytest.raises(UnknownRegistryEntryError) as excinfo:
            make_attack("no-such-attack")
        err = excinfo.value
        assert err.kind == "attack"
        assert err.name == "no-such-attack"
        assert err.available == tuple(available_attacks())
        for name in available_attacks():
            assert name in str(err)

    def test_unknown_attack_still_invalid_parameter(self):
        with pytest.raises(InvalidParameterError):
            make_attack("no-such-attack")
