"""Tests for E17 (topology vs. redundancy) and its cached cell layer."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.topology_resilience import (
    DEFAULT_VARIANTS,
    FAULT_MODELS,
    _spread_faulty,
    full_local_rank_costs,
    run_topology_resilience,
)

SMALL_GRID = dict(
    variants=(("ring", {"hops": 2}), ("complete", {})),
    fault_counts=(0, 2),
    fault_models=("clean", "drops"),
    n=16,
    d=2,
    iterations=80,
)


class TestHelpers:
    def test_spread_faulty_is_spread_and_sorted(self):
        ids = _spread_faulty(24, 4)
        assert ids == sorted(set(ids))
        assert len(ids) == 4
        gaps = np.diff(ids + [ids[0] + 24])
        assert gaps.min() >= 24 // 4 - 1
        assert _spread_faulty(24, 0) == []

    def test_full_local_rank_costs_share_exact_minimizer(self):
        costs, x_star = full_local_rank_costs(6, 3, 11)
        assert len(costs) == 6
        for cost in costs:
            assert np.allclose(cost.gradient(x_star), 0.0, atol=1e-12)
        again, _ = full_local_rank_costs(6, 3, 11)
        assert np.array_equal(costs[0].gradient(np.zeros(3)),
                              again[0].gradient(np.zeros(3)))


class TestExperiment:
    def test_grid_shape_and_values(self):
        result = run_topology_resilience(**SMALL_GRID)
        assert result.experiment_id == "E17"
        assert len(result.rows) == 2 * 2 * 2
        # fault-free complete graph converges tightest; every clean ring
        # cell beats its chaotic sibling is NOT guaranteed, but all cells
        # must be finite and feasibility fully satisfied on these variants
        for row in result.rows:
            assert row[4] == "16/16"
            assert np.isfinite(row[5])
        rendered = result.render()
        assert "topology-cell" in "\n".join(result.notes)
        assert "ring(hops=2)" in rendered

    def test_warm_cache_is_pure_hits_and_identical(self, tmp_path):
        cache = str(tmp_path / "cells")
        cold = run_topology_resilience(cache_dir=cache, **SMALL_GRID)
        warm = run_topology_resilience(cache_dir=cache, **SMALL_GRID)
        assert [r[5] for r in cold.rows] == [r[5] for r in warm.rows]
        assert "8 from cache" in warm.notes[-1]
        assert "0 from cache" in cold.notes[-1]

    def test_unknown_fault_model_rejected(self):
        with pytest.raises(InvalidParameterError, match="fault model"):
            run_topology_resilience(fault_models=("clean", "meteor"))

    def test_default_grid_is_registered_shape(self):
        # the CLI's zero-arg E17 entry uses these defaults
        assert len(DEFAULT_VARIANTS) == 6
        assert set(FAULT_MODELS) == {"clean", "drops", "chaos"}

    def test_marginal_ring_degrades_gracefully_not_catastrophically(self):
        # hops=1 with spread f=2 leaves marginal deg = 2f_i neighborhoods:
        # bounded plume near the Byzantine agents, not divergence
        result = run_topology_resilience(
            variants=(("ring", {"hops": 1}), ("ring", {"hops": 2})),
            fault_counts=(2,),
            fault_models=("clean",),
            n=24,
            iterations=250,
        )
        marginal, healthy = result.rows[0][5], result.rows[1][5]
        assert healthy < 0.02
        assert healthy < marginal < 1.0
