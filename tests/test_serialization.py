"""Tests for trace/experiment persistence."""

import numpy as np
import pytest

from repro.analysis.reporting import ExperimentResult
from repro.analysis.serialization import (
    experiment_from_dict,
    experiment_to_csv,
    experiment_to_dict,
    load_experiment,
    load_trace,
    save_experiment,
    save_trace,
)
from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import TranslatedQuadratic
from repro.system.runner import run_dgd


@pytest.fixture(scope="module")
def trace():
    costs = [TranslatedQuadratic([1.0, -1.0]) for _ in range(4)]
    return run_dgd(costs, None, gradient_filter="average", iterations=25, seed=0)


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="EX",
        title="demo",
        headers=["name", "value", "vector"],
        rows=[["a", 1.5, np.array([1.0, 2.0])], ["b", 2, np.array([3.0, 4.0])]],
        series={"curve": np.linspace(1.0, 0.0, 8)},
        notes=["a note"],
    )


class TestTraceRoundTrip:
    def test_exact_round_trip(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "trace.npz")
        loaded = load_trace(path)
        assert np.array_equal(loaded.estimates, trace.estimates)
        assert np.array_equal(loaded.directions, trace.directions)
        assert loaded.honest_ids == trace.honest_ids
        assert loaded.faulty_ids == trace.faulty_ids
        assert loaded.filter_name == trace.filter_name
        assert loaded.messages_delivered == trace.messages_delivered

    def test_suffix_normalization(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "trace")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_loaded_trace_methods_work(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.npz")
        loaded = load_trace(path)
        assert loaded.distances_to([1.0, -1.0]).shape == (26,)


class TestExperimentRoundTrip:
    def test_dict_round_trip(self, result):
        revived = experiment_from_dict(experiment_to_dict(result))
        assert revived.experiment_id == result.experiment_id
        assert revived.headers == result.headers
        assert revived.rows[0][1] == 1.5
        assert np.allclose(revived.rows[0][2], [1.0, 2.0])
        assert np.allclose(revived.series["curve"], result.series["curve"])
        assert revived.notes == result.notes

    def test_json_file_round_trip(self, result, tmp_path):
        path = save_experiment(result, tmp_path / "result.json")
        loaded = load_experiment(path)
        assert loaded.title == "demo"
        assert np.allclose(loaded.series["curve"], result.series["curve"])

    def test_render_after_round_trip(self, result, tmp_path):
        path = save_experiment(result, tmp_path / "r.json")
        assert "EX" in load_experiment(path).render()


class TestCsvExport:
    def test_header_and_rows(self, result):
        csv_text = experiment_to_csv(result)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "name,value,vector"
        assert lines[1].startswith("a,1.5")
        assert len(lines) == 3

    def test_requires_table(self):
        empty = ExperimentResult(experiment_id="X", title="no table")
        with pytest.raises(InvalidParameterError):
            experiment_to_csv(empty)


class TestCorruptedInputs:
    def test_load_trace_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "missing.npz")

    def test_load_trace_wrong_format(self, tmp_path):
        path = tmp_path / "bogus.npz"
        path.write_text("this is not an npz archive")
        with pytest.raises(Exception):
            load_trace(path)

    def test_load_experiment_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(Exception):
            load_experiment(path)

    def test_load_experiment_missing_keys(self, tmp_path):
        import json

        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"experiment_id": "X"}))
        with pytest.raises(KeyError):
            load_experiment(path)
