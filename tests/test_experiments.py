"""Fast-configuration runs of every experiment module.

Each experiment is executed with a reduced budget and its structural
contract (headers, rows, series, qualitative shape claims) is asserted —
the full-budget versions live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments import (
    run_aggregator_scaling,
    run_cge_sum_vs_mean,
    run_exact_algorithm_table,
    run_fault_sweep,
    run_learning_eval,
    run_noise_sweep,
    run_peer_vs_server,
    run_projection_ablation,
    run_robustness_matrix,
    run_step_size_ablation,
    run_table1,
    run_trajectories,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(iterations=400)

    def test_structure(self, result):
        assert result.experiment_id == "E1"
        # 3 filters x 2 attacks + fault-free row.
        assert len(result.rows) == 7

    def test_cge_beats_average_under_each_attack(self, result):
        errors = {(row[0], row[1]): row[3] for row in result.rows[:-1]}
        for attack in ("gradient-reverse", "random"):
            assert errors[("cge", attack)] < errors[("average", attack)]

    def test_robust_filters_within_margin_scale(self, result):
        margin = float(result.notes[1].split("=")[-1])
        errors = {(row[0], row[1]): row[3] for row in result.rows[:-1]}
        for attack in ("gradient-reverse", "random"):
            # CGE converges inside ~2 margins at this horizon; CWTM's
            # mean-scale steps are slower, so it gets a looser factor.
            assert errors[("cge", attack)] <= 2.5 * margin
            assert errors[("cwtm", attack)] <= 6.0 * margin


class TestTrajectories:
    def test_full_and_early_views(self):
        full = run_trajectories(iterations=150)
        early = run_trajectories(iterations=150, early_window=50)
        assert full.experiment_id == "E2"
        assert early.experiment_id == "E3"
        assert len(full.series["fault-free/loss"]) == 151
        assert len(early.series["fault-free/loss"]) == 50

    def test_cge_distance_tracks_fault_free(self):
        result = run_trajectories(iterations=300)
        cge_final = result.series["cge+gradient-reverse/distance"][-1]
        unfiltered_final = result.series["average+gradient-reverse/distance"][-1]
        assert cge_final < unfiltered_final


class TestExactAlgorithmTable:
    def test_every_configuration_exact(self):
        result = run_exact_algorithm_table(configurations=((4, 1, 2), (6, 2, 2)))
        assert all(row[-1] == "yes" for row in result.rows)


class TestNoiseSweep:
    def test_margin_monotone_and_errors_bounded(self):
        result = run_noise_sweep(
            noise_levels=(0.0, 0.02, 0.1), iterations=300,
            include_exact_algorithm=True,
        )
        margins = result.series["margin eps*(sigma)"]
        assert margins[0] == pytest.approx(0.0, abs=1e-9)
        assert np.all(np.diff(margins) > 0)
        # Exact algorithm error <= 2 margin everywhere.
        for row in result.rows:
            sigma, margin, _, exact_error, _ = row
            assert exact_error <= 2 * margin + 1e-9


class TestFaultSweep:
    def test_alpha_decreases_and_average_degrades(self):
        result = run_fault_sweep(
            n=15, fault_counts=(0, 1, 3), iterations=250,
            filters=("cge", "average"),
        )
        alphas = result.series["alpha vs f"]
        assert np.all(np.diff(alphas) < 0)
        cge = result.series["cge error vs f"]
        avg = result.series["average error vs f"]
        assert avg[-1] > cge[-1]


class TestLearningEval:
    def test_sign_flip_breaks_averaging_but_not_cge(self):
        result = run_learning_eval(
            heterogeneity_levels=(0.0,), iterations=150,
            filters=("cge", "average"), attacks=("sign-flip",),
        )
        accuracy = {(row[1], row[2]): row[4] for row in result.rows}
        reference = accuracy[("fault-free", "(none)")]
        assert accuracy[("cge", "sign-flip")] > reference - 0.05
        assert accuracy[("average", "sign-flip")] < reference - 0.2


class TestPeerVsServer:
    def test_architectures_coincide(self):
        result = run_peer_vs_server(configurations=((4, 1),), iterations=60)
        for row in result.rows:
            assert row[4] == pytest.approx(0.0, abs=1e-10)  # gap column


class TestRobustnessMatrix:
    def test_grid_covers_all_pairs(self):
        result = run_robustness_matrix(
            filters=("cge", "average"), attacks=("gradient-reverse", "random"),
            iterations=150,
        )
        assert len(result.rows) == 2
        assert len(result.rows[0]) == 3  # filter + 2 attacks

    def test_infeasible_filter_reported_as_na(self):
        result = run_robustness_matrix(
            filters=("bulyan",), attacks=("gradient-reverse",), iterations=10,
        )
        # Bulyan needs n >= 4f + 3 = 7 > 6.
        assert result.rows[0][1] == "n/a"


class TestScaling:
    def test_rows_and_series_present(self):
        result = run_aggregator_scaling(
            filters=("cge", "cwtm"), agent_counts=(10, 20), dimensions=(2, 10),
            repeats=2,
        )
        assert len(result.rows) == 2 * 2 * 2
        assert all(row[3] >= 0 for row in result.rows)
        assert "cge time vs n (d=10)" in result.series


class TestAblations:
    def test_cge_sum_vs_mean(self):
        result = run_cge_sum_vs_mean(iterations=300)
        errors = {(row[0], row[1]): row[2] for row in result.rows}
        # With matched schedules both variants converge comparably.
        assert errors[("sum", "matched")] < 0.2
        assert errors[("mean", "matched")] < 0.2

    def test_step_size_ablation_rm_flags(self):
        result = run_step_size_ablation(iterations=150)
        flags = {row[0]: row[1] for row in result.rows}
        assert flags["constant 0.05 (not RM)"] == "no"
        assert flags["diminishing 1/t (RM)"] == "yes"

    def test_projection_ablation_boundary_behaviour(self):
        result = run_projection_ablation(half_widths=(10.0, 0.5), iterations=300)
        inside_row, outside_row = result.rows
        assert inside_row[1] == "yes"
        assert outside_row[1] == "no"
        # Error when excluded ~ distance from x_H to the box.
        assert outside_row[2] == pytest.approx(outside_row[3], rel=0.2)
