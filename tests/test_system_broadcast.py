"""Tests for the Dolev–Strong Byzantine broadcast simulation."""

import numpy as np
import pytest

from repro.exceptions import InfeasibleConfigurationError, InvalidParameterError
from repro.system.broadcast import (
    EquivocatingSender,
    SilentSender,
    StaggeredEquivocator,
    byzantine_broadcast,
)


class TestHonestSender:
    def test_validity(self):
        value = np.array([1.0, -2.0])
        result = byzantine_broadcast(n=4, f=1, sender=0, value=value)
        assert np.allclose(result.agreed_value, value)
        for delivered in result.delivered.values():
            assert np.allclose(delivered, value)

    def test_validity_with_faulty_relays(self):
        value = np.array([3.0])
        result = byzantine_broadcast(n=7, f=2, sender=0, value=value, faulty=[5, 6])
        assert np.allclose(result.agreed_value, value)
        assert set(result.delivered) == {0, 1, 2, 3, 4}

    def test_rounds_is_f_plus_one(self):
        result = byzantine_broadcast(n=7, f=2, sender=0, value=np.zeros(1), faulty=[5, 6])
        assert result.rounds == 3

    def test_f_zero_single_round(self):
        result = byzantine_broadcast(n=3, f=0, sender=1, value=np.ones(2))
        assert result.rounds == 1
        assert np.allclose(result.agreed_value, 1.0)


class TestFaultySender:
    def test_equivocation_reaches_agreement(self):
        a, b = np.array([1.0]), np.array([2.0])
        result = byzantine_broadcast(
            n=4, f=1, sender=0, value=None, faulty=[0],
            sender_strategy=EquivocatingSender(a, b),
        )
        # All honest nodes agree (on ⊥, since two values circulate).
        assert result.agreed_value is None
        assert set(result.delivered) == {1, 2, 3}

    def test_silent_sender_agreement_on_bottom(self):
        result = byzantine_broadcast(
            n=4, f=1, sender=0, value=None, faulty=[0],
            sender_strategy=SilentSender(),
        )
        assert result.agreed_value is None

    def test_staggered_equivocation_still_agrees(self):
        # The classic attack: second value revealed only through colluders
        # in the last round. Dolev-Strong must still reach agreement.
        a, b = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        result = byzantine_broadcast(
            n=7, f=2, sender=0, value=None, faulty=[0, 1],
            sender_strategy=StaggeredEquivocator(a, b, colluders=[1]),
        )
        assert set(result.delivered) == {2, 3, 4, 5, 6}
        # Agreement is asserted inside the primitive; reaching here means it held.

    def test_faulty_sender_behaving_honestly(self):
        # A faulty sender may follow the protocol; then its value is delivered.
        value = np.array([5.0])
        result = byzantine_broadcast(n=4, f=1, sender=0, value=value, faulty=[0])
        assert np.allclose(result.agreed_value, value)


class TestValidation:
    def test_peer_fault_bound_enforced(self):
        with pytest.raises(InfeasibleConfigurationError):
            byzantine_broadcast(n=3, f=1, sender=0, value=np.zeros(1))

    def test_too_many_faulty_rejected(self):
        with pytest.raises(InvalidParameterError):
            byzantine_broadcast(n=7, f=1, sender=0, value=np.zeros(1), faulty=[1, 2])

    def test_sender_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            byzantine_broadcast(n=4, f=1, sender=9, value=np.zeros(1))

    def test_honest_sender_needs_value(self):
        with pytest.raises(InvalidParameterError):
            byzantine_broadcast(n=4, f=1, sender=0, value=None)

    def test_message_accounting_positive(self):
        result = byzantine_broadcast(n=4, f=1, sender=0, value=np.zeros(1))
        assert result.messages_sent >= 4
