"""Tests for CWTM, coordinate-wise median, and geometric median filters."""

import numpy as np
import pytest

from repro.aggregators.median import CoordinateWiseMedian, GeometricMedian, weiszfeld
from repro.aggregators.trimmed_mean import CoordinateWiseTrimmedMean
from repro.exceptions import InvalidParameterError


class TestCWTM:
    def test_trims_extremes_per_coordinate(self):
        gradients = np.array(
            [[0.0, 100.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0], [100.0, 0.0]]
        )
        cwtm = CoordinateWiseTrimmedMean(f=1)
        assert np.allclose(cwtm(gradients), [2.0, 2.0])

    def test_f_zero_is_mean(self):
        rng = np.random.default_rng(0)
        gradients = rng.normal(size=(5, 3))
        assert np.allclose(CoordinateWiseTrimmedMean(0)(gradients), gradients.mean(axis=0))

    def test_output_within_coordinate_range_of_inputs(self):
        rng = np.random.default_rng(1)
        gradients = rng.normal(size=(7, 4))
        out = CoordinateWiseTrimmedMean(f=2)(gradients)
        assert np.all(out >= gradients.min(axis=0) - 1e-12)
        assert np.all(out <= gradients.max(axis=0) + 1e-12)

    def test_single_outlier_bounded_influence(self):
        honest = np.zeros((4, 2))
        for magnitude in (10.0, 1e9):
            gradients = np.vstack([honest, [[magnitude, magnitude]]])
            out = CoordinateWiseTrimmedMean(f=1)(gradients)
            assert np.allclose(out, 0.0)

    def test_requires_2f_plus_one(self):
        with pytest.raises(InvalidParameterError):
            CoordinateWiseTrimmedMean(f=2)(np.ones((4, 2)))


class TestCoordinateWiseMedian:
    def test_matches_numpy_median(self):
        rng = np.random.default_rng(2)
        gradients = rng.normal(size=(9, 3))
        assert np.allclose(
            CoordinateWiseMedian(2)(gradients), np.median(gradients, axis=0)
        )

    def test_majority_controls_output(self):
        gradients = np.vstack([np.ones((3, 2)), 100.0 * np.ones((2, 2))])
        assert np.allclose(CoordinateWiseMedian(2)(gradients), 1.0)


class TestGeometricMedian:
    def test_collinear_points(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        out = GeometricMedian()(points)
        assert out[0] == pytest.approx(1.0, abs=1e-6)
        assert out[1] == pytest.approx(0.0, abs=1e-9)

    def test_symmetric_configuration_gives_centroid(self):
        points = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        assert np.allclose(GeometricMedian()(points), [0.0, 0.0], atol=1e-8)

    def test_resists_single_far_outlier(self):
        honest = np.array([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [0.1, 0.1]])
        gradients = np.vstack([honest, [[1e6, 1e6]]])
        out = GeometricMedian(f=1)(gradients)
        assert np.linalg.norm(out) < 1.0

    def test_single_point(self):
        assert np.allclose(weiszfeld(np.array([[3.0, 4.0]])), [3.0, 4.0])

    def test_iterate_coinciding_with_input_point(self):
        # Mean of these points equals one of them; smoothing must avoid 0/0.
        points = np.array([[0.0, 0.0], [1.0, 0.0], [-1.0, 0.0]])
        out = weiszfeld(points)
        assert np.all(np.isfinite(out))
        assert np.allclose(out, [0.0, 0.0], atol=1e-6)

    def test_objective_is_minimized(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(10, 3))
        median = weiszfeld(points, max_iterations=500)

        def objective(z):
            return np.linalg.norm(points - z, axis=1).sum()

        base = objective(median)
        for _ in range(20):
            perturbed = median + rng.normal(scale=0.05, size=3)
            assert objective(perturbed) >= base - 1e-6

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            GeometricMedian(max_iterations=0)
        with pytest.raises(InvalidParameterError):
            weiszfeld(np.zeros((0, 2)))
