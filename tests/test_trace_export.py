"""Cross-process span-tree reconstruction, Chrome export, flame view."""

import json
import os

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.sweep import RegressionGrid, SweepEngine
from repro.observability.perf import (
    build_span_tree,
    collect_trace_records,
    parse_chrome_trace,
    render_flame,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.observability.tracing import TraceContext, derive_trace_id


def _traced_job_dir(tmp_path, backend="batch", num_seeds=2):
    """A traced sweep with worker telemetry, plus the root job span."""
    import time

    root = TraceContext.root(derive_trace_id("job", "j-1"), name="job")
    engine = SweepEngine(
        parallel=False,
        events=os.fspath(tmp_path / "events.jsonl"),
        telemetry_dir=os.fspath(tmp_path / "telemetry"),
        cache_dir=os.fspath(tmp_path / "cache"),
        backend=backend,
        trace=root.child("sweep"),
    )
    grid = RegressionGrid(
        filters=("cge",), attacks=("zero",), fault_counts=(1,),
        num_seeds=num_seeds, n=4, d=1, iterations=15,
    )
    engine.run_regression_grid(grid)
    engine.events.emit(
        "span", name="job", seconds=1.0, ts=time.time() - 1.0,
        **root.fields(),
    )
    return root


def _names(roots):
    return [node.name for root in roots for node in root.walk()]


class TestSpanTree:
    def test_engine_tree_has_full_chain(self, tmp_path):
        _traced_job_dir(tmp_path)
        roots = build_span_tree(collect_trace_records(os.fspath(tmp_path)))
        assert [r.name for r in roots] == ["job"]
        job = roots[0]
        assert [c.name for c in job.children] == ["sweep"]
        sweep = job.children[0]
        assert [c.name for c in sweep.children] == ["chunk-0"]
        chunk = sweep.children[0]
        assert [c.name for c in chunk.children] == ["group-f1-cge-zero"]
        names = _names(roots)
        assert "run" in names and "round" in names
        # lineage is consistent throughout
        for node in job.walk():
            assert node.trace_id == job.trace_id
            for child in node.children:
                assert child.parent_span_id == node.span_id

    def test_sequential_backend_gets_one_run_per_seed(self, tmp_path):
        _traced_job_dir(tmp_path, backend="sequential", num_seeds=3)
        roots = build_span_tree(collect_trace_records(os.fspath(tmp_path)))
        assert _names(roots).count("run") == 3

    def test_duplicate_span_ids_last_wins(self):
        records = [
            {"event": "span", "name": "x", "seconds": 1.0, "ts": 1.0,
             "trace_id": "t", "span_id": "a", "parent_span_id": None},
            {"event": "span", "name": "x", "seconds": 2.0, "ts": 1.0,
             "trace_id": "t", "span_id": "a", "parent_span_id": None},
        ]
        roots = build_span_tree(records)
        assert len(roots) == 1
        assert roots[0].seconds == 2.0

    def test_orphan_parents_become_roots(self):
        records = [
            {"event": "span", "name": "child", "seconds": 1.0, "ts": 2.0,
             "trace_id": "t", "span_id": "b", "parent_span_id": "missing"},
        ]
        roots = build_span_tree(records)
        assert [r.name for r in roots] == ["child"]

    def test_non_span_records_attach_to_owner(self):
        records = [
            {"event": "span", "name": "run", "seconds": 1.0, "ts": 1.0,
             "trace_id": "t", "span_id": "a", "parent_span_id": None},
            {"event": "round", "round": 0, "trace_id": "t", "span_id": "a"},
            {"event": "round", "round": 1, "trace_id": "t", "span_id": "a"},
        ]
        roots = build_span_tree(records)
        assert len(roots[0].events) == 2

    def test_untraced_records_build_empty_forest(self):
        assert build_span_tree([{"event": "round", "round": 0}]) == []


class TestCollect:
    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            collect_trace_records(os.fspath(tmp_path / "nope"))

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            collect_trace_records(os.fspath(tmp_path))

    def test_records_tagged_with_stream(self, tmp_path):
        stream = tmp_path / "a.jsonl"
        stream.write_text('{"event": "round", "round": 0}\n')
        records = collect_trace_records(os.fspath(tmp_path))
        assert records[0]["_stream"] == "a.jsonl"


class TestChromeExport:
    def test_export_parse_round_trip_reproduces_tree(self, tmp_path):
        _traced_job_dir(tmp_path)
        records = collect_trace_records(os.fspath(tmp_path))
        roots = build_span_tree(records)
        artifact = tmp_path / "trace.json"
        document = write_chrome_trace(os.fspath(artifact), records)
        rebuilt = build_span_tree(parse_chrome_trace(os.fspath(artifact)))

        def strip_events(payload):
            payload = dict(payload)
            payload.pop("events", None)
            payload["children"] = [
                strip_events(child) for child in payload["children"]
            ]
            return payload

        assert ([strip_events(r.to_payload()) for r in roots]
                == [strip_events(r.to_payload()) for r in rebuilt])
        # the artifact on disk is the bare Perfetto-loadable document
        on_disk = json.loads(artifact.read_text())
        assert on_disk == document
        assert on_disk["displayTimeUnit"] == "ms"

    def test_events_are_viewer_well_formed(self, tmp_path):
        _traced_job_dir(tmp_path)
        document = to_chrome_trace(
            collect_trace_records(os.fspath(tmp_path))
        )
        phases = {event["ph"] for event in document["traceEvents"]}
        assert phases == {"M", "X"}
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in xs)
        threads = {e["tid"] for e in xs}
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert {e["tid"] for e in metadata} >= threads
        # one virtual thread per source stream
        assert len(metadata) == len(
            {e["args"]["name"] for e in metadata}
        )

    def test_parse_validates_schema(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            parse_chrome_trace({"nope": []})
        with pytest.raises(InvalidParameterError):
            parse_chrome_trace({"traceEvents": [{"ph": "Z"}]})
        with pytest.raises(InvalidParameterError):
            parse_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "x", "pid": 1, "tid": 1,
                 "ts": 0, "dur": 1, "args": {}},
            ]})
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        with pytest.raises(InvalidParameterError):
            parse_chrome_trace(os.fspath(bad))


class TestFlame:
    def test_flame_renders_tree_and_collapses_rounds(self, tmp_path):
        _traced_job_dir(tmp_path)
        roots = build_span_tree(collect_trace_records(os.fspath(tmp_path)))
        flame = render_flame(roots)
        lines = flame.splitlines()
        assert lines[0].startswith("job")
        assert any(line.strip().startswith("sweep") for line in lines)
        assert any("round x" in line for line in lines)  # collapsed
        assert "100.0%" in lines[0]

    def test_empty_forest_message(self):
        assert render_flame([]) == "(no traced spans)"


class TestCli:
    def test_trace_export_and_flame_commands(self, tmp_path, capsys):
        from repro.cli import main

        _traced_job_dir(tmp_path)
        artifact = tmp_path / "out.json"
        assert main(["trace", "export", os.fspath(tmp_path),
                     "--output", os.fspath(artifact)]) == 0
        out = capsys.readouterr().out
        assert "span(s)" in out
        parse_chrome_trace(os.fspath(artifact))

        assert main(["trace", "flame", os.fspath(tmp_path)]) == 0
        assert "job" in capsys.readouterr().out

    def test_trace_export_untraced_stream_exits_1(self, tmp_path, capsys):
        from repro.cli import main

        stream = tmp_path / "plain.jsonl"
        stream.write_text('{"event": "round", "round": 0}\n')
        assert main(["trace", "export", os.fspath(stream),
                     "--output", os.fspath(tmp_path / "o.json")]) == 1

    def test_trace_export_missing_path_exits_2(self, tmp_path):
        from repro.cli import main

        assert main(["trace", "export", os.fspath(tmp_path / "nope"),
                     "--output", os.fspath(tmp_path / "o.json")]) == 2
