"""Hypothesis properties pinning the tournament's Elo invariances.

Two exact (bit-identical, not approximate) invariances are claimed by
:mod:`repro.experiments.tournament` and relied on by the CI
cold-vs-warm artifact comparison:

1. :meth:`EloTable.apply_batch` computes expected scores from the
   rating snapshot at batch entry and reduces each player's deltas with
   ``math.fsum`` over the *sorted* delta list, so the post-batch ratings
   are a pure function of the *set* of matches — any ingestion order of
   a round-robin batch yields bit-identical ratings at equal K.
2. :func:`leaderboard_from_ratings` reduces per-seed ratings with the
   same sorted-fsum machinery, so the leaderboard is bit-identical
   under any permutation of the seed set.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.experiments.tournament import EloTable, leaderboard_from_ratings

PLAYERS = ["cge", "cwtm", "median", "alie", "ipm", "zero"]

match_lists = st.lists(
    st.tuples(
        st.sampled_from(PLAYERS[:3]),
        st.sampled_from(PLAYERS[3:]),
        st.sampled_from([0.0, 0.5, 1.0]),
    ),
    min_size=1,
    max_size=30,
)


def _ratings_after(matches, k=32.0, batches=1):
    table = EloTable(PLAYERS, initial=1000.0)
    for _ in range(batches):
        table.apply_batch(matches, k=k)
    return table.ratings()


class TestBatchOrderInvariance:
    @settings(max_examples=60, deadline=None)
    @given(matches=match_lists, seed=st.integers(0, 2**32 - 1))
    def test_ingestion_order_is_irrelevant_at_equal_k(self, matches, seed):
        import random

        shuffled = list(matches)
        random.Random(seed).shuffle(shuffled)
        assert _ratings_after(matches) == _ratings_after(shuffled)

    @settings(max_examples=30, deadline=None)
    @given(matches=match_lists, seed=st.integers(0, 2**32 - 1))
    def test_order_invariance_survives_multiple_rounds(self, matches, seed):
        """Batch-after-batch (round-robin rounds) stays order-free too."""
        import random

        shuffled = list(matches)
        random.Random(seed).shuffle(shuffled)
        assert _ratings_after(matches, batches=3) == _ratings_after(
            shuffled, batches=3
        )

    def test_snapshot_semantics_differ_from_sequential(self):
        """The batch is a set: a second match must not see the first's update.

        A sequential Elo implementation would rate the second match from
        post-first-match ratings; the snapshot semantics keep both
        expected scores at the initial 1000-vs-1000 value.
        """
        table = EloTable(["a", "b"], initial=1000.0)
        applied = table.apply_batch([("a", "b", 1.0), ("a", "b", 1.0)], k=32.0)
        # Both expectations were 0.5, so each win is worth exactly k/2.
        assert applied["a"] == pytest.approx(32.0)
        assert applied["b"] == pytest.approx(-32.0)

    def test_zero_sum_per_batch(self):
        ratings = _ratings_after(
            [("cge", "alie", 1.0), ("cwtm", "ipm", 0.0), ("median", "zero", 0.5)]
        )
        assert math.fsum(sorted(ratings.values())) == pytest.approx(
            1000.0 * len(PLAYERS)
        )

    def test_invalid_scores_and_players_rejected(self):
        table = EloTable(["a", "b"])
        with pytest.raises(InvalidParameterError):
            table.apply_batch([("a", "b", 1.5)])
        with pytest.raises(InvalidParameterError, match="unknown player"):
            table.apply_batch([("a", "nobody", 1.0)])
        with pytest.raises(InvalidParameterError):
            table.apply_batch([("a", "b", 1.0)], k=0.0)
        with pytest.raises(InvalidParameterError):
            EloTable([])


ratings_dicts = st.fixed_dictionaries(
    {name: st.floats(600.0, 1400.0, allow_nan=False) for name in PLAYERS}
)


class TestLeaderboardSeedPermutationInvariance:
    @settings(max_examples=60, deadline=None)
    @given(
        tables=st.lists(ratings_dicts, min_size=2, max_size=6),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_leaderboard_bit_identical_under_seed_permutation(
        self, tables, seed
    ):
        import random

        seeds = list(range(1000, 1000 + len(tables)))
        per_seed = dict(zip(seeds, tables))
        permuted_seeds = list(seeds)
        random.Random(seed).shuffle(permuted_seeds)
        # Same (seed -> ratings) mapping, presented in a different order.
        permuted = {s: per_seed[s] for s in permuted_seeds}
        assert leaderboard_from_ratings(per_seed) == leaderboard_from_ratings(
            permuted
        )

    @settings(max_examples=40, deadline=None)
    @given(tables=st.lists(ratings_dicts, min_size=2, max_size=5))
    def test_leaderboard_is_ranked_descending_with_name_tiebreak(self, tables):
        seeds = list(range(len(tables)))
        rows = leaderboard_from_ratings(dict(zip(seeds, tables)))
        assert [row["rank"] for row in rows] == list(range(1, len(rows) + 1))
        for earlier, later in zip(rows, rows[1:]):
            assert (
                earlier["rating_mean"] > later["rating_mean"]
                or (
                    earlier["rating_mean"] == later["rating_mean"]
                    and earlier["player"] < later["player"]
                )
            )

    @settings(max_examples=40, deadline=None)
    @given(tables=st.lists(ratings_dicts, min_size=2, max_size=5))
    def test_ci95_matches_population_std(self, tables):
        seeds = list(range(len(tables)))
        rows = leaderboard_from_ratings(dict(zip(seeds, tables)))
        for row in rows:
            values = [tables[s][row["player"]] for s in seeds]
            mean = math.fsum(sorted(values)) / len(values)
            var = math.fsum(sorted((v - mean) ** 2 for v in values)) / len(values)
            assert row["rating_std"] == pytest.approx(math.sqrt(var))
            assert row["ci95"] == pytest.approx(
                1.96 * math.sqrt(var) / math.sqrt(len(values))
            )

    def test_mismatched_player_sets_rejected(self):
        with pytest.raises(InvalidParameterError, match="same player set"):
            leaderboard_from_ratings(
                {0: {"a": 1000.0, "b": 1000.0}, 1: {"a": 1000.0}}
            )
        with pytest.raises(InvalidParameterError):
            leaderboard_from_ratings({})
