"""Tests for empirical convergence-rate fitting and markdown export."""

import numpy as np
import pytest

from repro.analysis.rates import best_rate_model, fit_geometric, fit_power_law
from repro.analysis.reporting import format_markdown_table
from repro.exceptions import InvalidParameterError


class TestPowerLawFit:
    def test_recovers_known_exponent(self):
        t = np.arange(500)
        series = 3.0 * (t + 1.0) ** -0.5
        fit = fit_power_law(series, burn_in=5)
        assert fit.kind == "power"
        assert fit.parameter == pytest.approx(0.5, abs=0.02)
        assert fit.constant == pytest.approx(3.0, rel=0.1)
        assert fit.r_squared > 0.999

    def test_noisy_series_still_close(self):
        rng = np.random.default_rng(0)
        t = np.arange(2000)
        series = (t + 1.0) ** -1.0 * np.exp(rng.normal(scale=0.1, size=2000))
        fit = fit_power_law(series, burn_in=20)
        assert fit.parameter == pytest.approx(1.0, abs=0.05)

    def test_describe_mentions_exponent(self):
        series = (np.arange(100) + 1.0) ** -1.0
        assert "t^(-" in fit_power_law(series).describe()

    def test_too_short_rejected(self):
        with pytest.raises(InvalidParameterError):
            fit_power_law(np.ones(5), burn_in=10)

    def test_floored_series_rejected(self):
        with pytest.raises(InvalidParameterError):
            fit_power_law(np.zeros(100))


class TestGeometricFit:
    def test_recovers_known_factor(self):
        t = np.arange(200)
        series = 2.0 * 0.95**t
        fit = fit_geometric(series, burn_in=2)
        assert fit.kind == "geometric"
        assert fit.parameter == pytest.approx(0.95, abs=0.002)
        assert fit.r_squared > 0.999

    def test_describe_mentions_factor(self):
        series = 0.9 ** np.arange(100)
        assert "^t" in fit_geometric(series).describe()


class TestModelSelection:
    def test_prefers_power_for_power_data(self):
        series = (np.arange(300) + 1.0) ** -1.0
        assert best_rate_model(series).kind == "power"

    def test_prefers_geometric_for_geometric_data(self):
        series = 0.9 ** np.arange(300.0)
        assert best_rate_model(series).kind == "geometric"

    def test_on_real_gd_trace(self):
        """Deterministic GD with constant steps contracts geometrically."""
        from repro.optimization.cost_functions import TranslatedQuadratic
        from repro.optimization.gd import gradient_descent
        from repro.optimization.step_sizes import ConstantStepSize

        cost = TranslatedQuadratic([1.0, 1.0])
        result = gradient_descent(
            cost, [0.0, 0.0], step_sizes=ConstantStepSize(0.1),
            max_iterations=200, gradient_tolerance=0.0, record_trajectory=True,
        )
        errors = np.linalg.norm(result.trajectory - np.array([1.0, 1.0]), axis=1)
        fit = best_rate_model(errors, burn_in=5)
        assert fit.kind == "geometric"
        # Contraction factor 1 - eta * L with L = 2 (unit-weight quadratic):
        # 1 - 0.1 * 2 = 0.8.
        assert fit.parameter == pytest.approx(0.8, abs=0.02)


class TestMarkdownTable:
    def test_structure(self):
        table = format_markdown_table(["a", "b"], [[1, 2.5], ["x", 0.0001]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "1.000e-04" in lines[3]

    def test_title(self):
        table = format_markdown_table(["a"], [[1]], title="Table X")
        assert table.startswith("**Table X**")

    def test_ragged_rejected(self):
        with pytest.raises(InvalidParameterError):
            format_markdown_table(["a", "b"], [[1]])
