"""Tests for the sparse-topology decentralized DGD engine.

Covers validation, fault-free determinism and convergence, Byzantine
robustness of the per-neighborhood aggregations, link-level fault
injection (drops / delays / corruption), partition-then-heal
reconciliation, churn freezing, and the n=1024 acceptance scenario on
ring and random-regular graphs under combined Byzantine + link faults.
"""

import numpy as np
import pytest

from repro.attacks.simple import GradientReverse
from repro.exceptions import InvalidParameterError, TopologyInfeasibilityError
from repro.experiments.topology_resilience import full_local_rank_costs
from repro.system.decentralized import (
    DECENTRALIZED_AGGREGATIONS,
    run_decentralized_dgd,
)
from repro.system.netfaults import (
    ChurnWindow,
    LinkFaultModel,
    LinkFaultProfile,
    PartitionWindow,
)
from repro.system.topology import (
    make_topology,
    random_regular_topology,
    ring_topology,
)

CHAOS_PROFILE = LinkFaultProfile(
    drop_prob=0.05, delay_prob=0.1, max_delay=2, corrupt_prob=0.01
)


def _small_instance(n=12, d=3, instance_seed=7):
    return full_local_rank_costs(n, d, instance_seed)


class TestValidation:
    def test_costs_length_must_match_topology(self):
        costs, _ = _small_instance(n=12)
        with pytest.raises(InvalidParameterError, match="12"):
            run_decentralized_dgd(costs[:-1], ring_topology(12, hops=2))

    def test_unknown_aggregation_rejected(self):
        costs, _ = _small_instance()
        with pytest.raises(InvalidParameterError, match="aggregation"):
            run_decentralized_dgd(
                costs, ring_topology(12, hops=2), aggregation="krum"
            )

    def test_nonpositive_iterations_rejected(self):
        costs, _ = _small_instance()
        with pytest.raises(InvalidParameterError):
            run_decentralized_dgd(
                costs, ring_topology(12, hops=2), iterations=0
            )

    def test_out_of_range_faulty_ids_rejected(self):
        costs, _ = _small_instance()
        for bad in ([12], [-1]):
            with pytest.raises(InvalidParameterError, match="faulty"):
                run_decentralized_dgd(
                    costs, ring_topology(12, hops=2), faulty_ids=bad,
                    behavior=GradientReverse(),
                )

    def test_faulty_agents_require_behavior(self):
        costs, _ = _small_instance()
        with pytest.raises(InvalidParameterError, match="behavior"):
            run_decentralized_dgd(
                costs, ring_topology(12, hops=2), faulty_ids=[0]
            )

    def test_infeasible_neighborhood_raises_structured_error(self):
        costs, _ = _small_instance(n=6)
        # faulty {0, 2, 4} on a 1-hop ring: every honest agent has both
        # neighbors Byzantine, violating deg_i >= 2 f_i everywhere.
        with pytest.raises(TopologyInfeasibilityError) as excinfo:
            run_decentralized_dgd(
                costs, ring_topology(6, hops=1), faulty_ids=[0, 2, 4],
                behavior=GradientReverse(),
            )
        assert excinfo.value.agents == [1, 3, 5]

    def test_validate_feasibility_false_runs_degraded(self):
        costs, _ = _small_instance(n=6)
        result = run_decentralized_dgd(
            costs, ring_topology(6, hops=1), faulty_ids=[0, 2, 4],
            behavior=GradientReverse(), iterations=20,
            validate_feasibility=False,
        )
        assert result.counters["degraded_agent_rounds"] > 0

    def test_mean_aggregation_skips_feasibility_check(self):
        costs, _ = _small_instance(n=6)
        result = run_decentralized_dgd(
            costs, ring_topology(6, hops=1), faulty_ids=[0, 2, 4],
            behavior=GradientReverse(), aggregation="mean", iterations=5,
        )
        assert result.aggregation == "mean"

    def test_aggregation_registry(self):
        assert set(DECENTRALIZED_AGGREGATIONS) == {"cwtm", "cge", "mean"}


class TestFaultFree:
    def test_seed_deterministic_bitwise(self):
        costs, _ = _small_instance()
        topology = ring_topology(12, hops=2)
        a = run_decentralized_dgd(costs, topology, iterations=80, seed=4)
        b = run_decentralized_dgd(costs, topology, iterations=80, seed=4)
        assert np.array_equal(a.final_states, b.final_states)
        assert np.array_equal(a.mean_trajectory, b.mean_trajectory)

    @pytest.mark.parametrize("aggregation", DECENTRALIZED_AGGREGATIONS)
    def test_converges_to_common_minimizer(self, aggregation):
        costs, x_star = _small_instance()
        result = run_decentralized_dgd(
            costs, ring_topology(12, hops=2), aggregation=aggregation,
            iterations=300, seed=0,
        )
        assert result.max_honest_distance_to(x_star) < 0.05

    def test_recorded_state_shapes(self):
        costs, _ = _small_instance(n=12, d=3)
        result = run_decentralized_dgd(
            costs, ring_topology(12, hops=2), iterations=40, seed=0,
            record_states=True,
        )
        assert result.states.shape == (41, 12, 3)
        assert result.mean_trajectory.shape == (41, 3)
        assert result.final_states.shape == (12, 3)
        assert np.array_equal(result.states[-1], result.final_states)


class TestByzantineRobustness:
    @pytest.mark.parametrize("aggregation", ["cwtm", "cge"])
    def test_robust_aggregations_survive_gradient_reverse(self, aggregation):
        costs, x_star = _small_instance()
        topology = random_regular_topology(12, 6, seed=2)
        result = run_decentralized_dgd(
            costs, topology, aggregation=aggregation, faulty_ids=[0, 6],
            behavior=GradientReverse(strength=2.0), iterations=300, seed=1,
        )
        assert result.max_honest_distance_to(x_star) < 0.05

    def test_mean_aggregation_is_not_robust(self):
        costs, x_star = _small_instance()
        topology = random_regular_topology(12, 6, seed=2)
        result = run_decentralized_dgd(
            costs, topology, aggregation="mean", faulty_ids=[0, 6],
            behavior=GradientReverse(strength=2.0), iterations=300, seed=1,
        )
        assert result.max_honest_distance_to(x_star) > 0.5

    def test_uniform_budget_override(self):
        costs, x_star = _small_instance()
        topology = random_regular_topology(12, 6, seed=2)
        result = run_decentralized_dgd(
            costs, topology, faulty_ids=[0], local_budgets=1,
            behavior=GradientReverse(strength=2.0), iterations=300, seed=1,
        )
        assert result.budgets.tolist() == [1] * 12
        assert result.max_honest_distance_to(x_star) < 0.05


class TestLinkFaults:
    def test_counters_and_determinism_under_chaos(self):
        costs, x_star = _small_instance()
        topology = ring_topology(12, hops=2)
        model = LinkFaultModel(default_profile=CHAOS_PROFILE, seed=9)
        a = run_decentralized_dgd(
            costs, topology, iterations=150, seed=2, link_faults=model
        )
        b = run_decentralized_dgd(
            costs, topology, iterations=150, seed=2, link_faults=model
        )
        assert np.array_equal(a.final_states, b.final_states)
        for key in ("dropped_edges", "delayed_edges", "corrupted_edges"):
            assert a.counters[key] > 0
            assert a.counters[key] == b.counters[key]
        # corrupted payloads are quarantined, never aggregated
        assert a.counters["quarantined"] == a.counters["corrupted_edges"]
        assert np.isfinite(a.final_states).all()
        assert a.max_honest_distance_to(x_star) < 0.1

    def test_drops_trigger_bounded_stale_reuse(self):
        costs, _ = _small_instance()
        model = LinkFaultModel(
            default_profile=LinkFaultProfile(drop_prob=0.3), seed=1
        )
        result = run_decentralized_dgd(
            costs, ring_topology(12, hops=2), iterations=100, seed=0,
            link_faults=model,
        )
        assert result.counters["stale_reuses"] > 0
        assert result.extra["max_staleness"] == model.staleness_bound()

    def test_per_edge_profile_overrides_default(self):
        costs, _ = _small_instance()
        model = LinkFaultModel(
            link_profiles={(0, 1): LinkFaultProfile(drop_prob=1.0)}, seed=0
        )
        result = run_decentralized_dgd(
            costs, ring_topology(12, hops=1), iterations=30, seed=0,
            link_faults=model,
        )
        # exactly the (0,1)/(1,0) directed pair drops, every round
        assert result.counters["dropped_edges"] == 2 * 30


class TestPartitionThenHeal:
    def _run(self, record_states=False):
        costs, x_star = full_local_rank_costs(32, 4, 11)
        window = PartitionWindow(
            start=20, end=60, groups=(tuple(range(16)),)
        )
        model = LinkFaultModel(partitions=(window,), seed=5)
        result = run_decentralized_dgd(
            costs, ring_topology(32, hops=2), iterations=120, seed=2,
            link_faults=model, record_states=record_states,
        )
        return result, x_star

    def test_heals_to_common_minimizer_deterministically(self):
        a, x_star = self._run()
        b, _ = self._run()
        assert np.array_equal(a.final_states, b.final_states)
        assert a.max_honest_distance_to(x_star) < 0.02
        assert a.counters["dropped_edges"] > 0  # the cut edges

    def test_components_optimize_independently_during_partition(self):
        result, x_star = self._run(record_states=True)
        # mid-partition both sides keep making progress toward x* (full
        # local rank: every component shares the minimizer)
        mid = result.states[40]
        early = result.states[20]
        for group in (list(range(16)), list(range(16, 32))):
            assert (
                np.linalg.norm(mid[group] - x_star, axis=1).max()
                < np.linalg.norm(early[group] - x_star, axis=1).max()
            )


class TestChurn:
    def test_down_agent_freezes_then_recovers(self):
        costs, x_star = full_local_rank_costs(32, 4, 11)
        model = LinkFaultModel(
            churn=(ChurnWindow(agent=7, down_round=10, up_round=30),), seed=4
        )
        result = run_decentralized_dgd(
            costs, ring_topology(32, hops=2), iterations=120, seed=2,
            link_faults=model, record_states=True,
        )
        down = result.states[10:31, 7]
        assert (down == down[0]).all()  # frozen while down
        assert result.counters["frozen_agent_rounds"] == 20
        assert result.max_honest_distance_to(x_star) < 0.02

    def test_permanent_churn_excludes_agent(self):
        costs, x_star = full_local_rank_costs(32, 4, 11)
        model = LinkFaultModel(
            churn=(ChurnWindow(agent=7, down_round=10),), seed=4
        )
        result = run_decentralized_dgd(
            costs, ring_topology(32, hops=2), iterations=120, seed=2,
            link_faults=model, record_states=True,
        )
        assert (result.states[10:, 7] == result.states[10, 7]).all()
        alive = [i for i in result.honest_ids if i != 7]
        distances = result.distances_to(x_star)
        assert distances[alive].max() < 0.02


class TestScaleAcceptance:
    """The issue's n=1024 bar: combined Byzantine + link faults."""

    FAULTY = list(range(5, 1024, 52))  # 20 agents, spread

    def _run(self, topology):
        costs, x_star = full_local_rank_costs(1024, 8, 11)
        model = LinkFaultModel(default_profile=CHAOS_PROFILE, seed=3)
        result = run_decentralized_dgd(
            costs, topology, aggregation="cwtm", faulty_ids=self.FAULTY,
            behavior=GradientReverse(strength=2.0), iterations=300, seed=1,
            link_faults=model,
        )
        return result, x_star

    def test_ring_converges_under_combined_faults(self):
        result, x_star = self._run(make_topology("ring", 1024, hops=2))
        assert result.max_honest_distance_to(x_star) < 0.1

    def test_random_regular_converges_under_combined_faults(self):
        result, x_star = self._run(
            make_topology("random-regular", 1024, seed=0, degree=8)
        )
        assert result.max_honest_distance_to(x_star) < 0.05
