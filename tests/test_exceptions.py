"""Exception hierarchy contracts."""

import pytest

from repro.exceptions import (
    ConvergenceError,
    DimensionMismatchError,
    InfeasibleConfigurationError,
    InvalidParameterError,
    ProtocolViolationError,
    ReproError,
)


def test_all_errors_derive_from_repro_error():
    for exc in (
        InvalidParameterError,
        DimensionMismatchError,
        InfeasibleConfigurationError,
        ConvergenceError,
        ProtocolViolationError,
    ):
        assert issubclass(exc, ReproError)


def test_value_errors_are_value_errors():
    assert issubclass(InvalidParameterError, ValueError)
    assert issubclass(DimensionMismatchError, ValueError)


def test_runtime_errors_are_runtime_errors():
    assert issubclass(ConvergenceError, RuntimeError)
    assert issubclass(ProtocolViolationError, RuntimeError)


def test_convergence_error_carries_best_iterate():
    error = ConvergenceError("did not converge", best=[1.0, 2.0])
    assert error.best == [1.0, 2.0]
    assert "did not converge" in str(error)


def test_catching_base_class_catches_everything():
    with pytest.raises(ReproError):
        raise InfeasibleConfigurationError("nope")
