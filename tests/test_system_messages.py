"""Tests for protocol messages and the synchronous network."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, ProtocolViolationError
from repro.system.messages import SERVER_ID, EstimateBroadcast, GradientMessage
from repro.system.network import SynchronousNetwork


class TestMessages:
    def test_estimate_broadcast_validates_payload(self):
        msg = EstimateBroadcast(sender=SERVER_ID, round_index=3, estimate=[1.0, 2.0])
        assert msg.round_index == 3
        assert msg.estimate.shape == (2,)

    def test_estimate_rejects_non_finite(self):
        with pytest.raises(InvalidParameterError):
            EstimateBroadcast(sender=SERVER_ID, round_index=0, estimate=[np.nan])

    def test_estimate_rejects_matrix(self):
        with pytest.raises(InvalidParameterError):
            EstimateBroadcast(sender=SERVER_ID, round_index=0, estimate=np.zeros((2, 2)))

    def test_gradient_message_allows_non_finite_payload(self):
        # A Byzantine sender controls its bytes; the filter sanitizes later.
        msg = GradientMessage(sender=2, round_index=0, gradient=[np.inf, 1.0])
        assert msg.gradient.shape == (2,)

    def test_negative_round_rejected(self):
        with pytest.raises(InvalidParameterError):
            GradientMessage(sender=0, round_index=-1, gradient=[0.0])

    def test_size_accounting_scales_with_dimension(self):
        small = GradientMessage(sender=0, round_index=0, gradient=np.zeros(2))
        large = GradientMessage(sender=0, round_index=0, gradient=np.zeros(100))
        assert large.size_bytes() > small.size_bytes()

    def test_messages_are_immutable(self):
        msg = GradientMessage(sender=0, round_index=0, gradient=[1.0])
        with pytest.raises(Exception):
            msg.sender = 5

    def test_is_finite_flags_corrupt_payloads(self):
        assert GradientMessage(sender=0, round_index=0, gradient=[1.0, 2.0]).is_finite
        assert not GradientMessage(sender=0, round_index=0, gradient=[np.nan]).is_finite
        assert not GradientMessage(sender=0, round_index=0, gradient=[np.inf]).is_finite

    def test_validate_accepts_clean_payload_and_chains(self):
        msg = GradientMessage(sender=0, round_index=0, gradient=[1.0, 2.0])
        assert msg.validate(2) is msg

    def test_validate_rejects_non_finite(self):
        msg = GradientMessage(sender=3, round_index=1, gradient=[np.nan, 0.0])
        with pytest.raises(ProtocolViolationError, match="agent 3"):
            msg.validate(2)

    def test_validate_rejects_dimension_mismatch(self):
        msg = GradientMessage(sender=0, round_index=0, gradient=[1.0, 2.0])
        with pytest.raises(ProtocolViolationError, match="dimension"):
            msg.validate(3)

    def test_payload_digest_tracks_payload_bytes_only(self):
        a = GradientMessage(sender=0, round_index=0, gradient=[1.0, 2.0])
        b = GradientMessage(sender=5, round_index=9, gradient=[1.0, 2.0])
        c = GradientMessage(sender=0, round_index=0, gradient=[1.0, 2.5])
        assert a.payload_digest() == b.payload_digest()
        assert a.payload_digest() != c.payload_digest()


class TestNetwork:
    def _msg(self, sender=0, round_index=0):
        return GradientMessage(sender=sender, round_index=round_index, gradient=[1.0])

    def test_delivery_and_accounting(self):
        net = SynchronousNetwork()
        delivered = net.deliver(self._msg(), receiver=SERVER_ID)
        assert delivered is not None
        assert net.messages_delivered == 1
        assert net.bytes_delivered > 0
        assert len(net.log) == 1
        assert not net.log[0].dropped

    def test_broadcast_reaches_all(self):
        net = SynchronousNetwork()
        msg = EstimateBroadcast(sender=SERVER_ID, round_index=0, estimate=[0.0])
        delivered = net.broadcast(msg, receivers=[0, 1, 2])
        assert set(delivered) == {0, 1, 2}
        assert net.messages_delivered == 3

    def test_gather(self):
        net = SynchronousNetwork()
        received = net.gather([self._msg(0), self._msg(1)], receiver=SERVER_ID)
        assert len(received) == 2

    def test_drops_are_per_sender_and_logged(self):
        rng = np.random.default_rng(0)
        net = SynchronousNetwork(drop_probabilities={7: 1.0}, rng=rng)
        assert net.deliver(self._msg(sender=7), SERVER_ID) is None
        assert net.deliver(self._msg(sender=1), SERVER_ID) is not None
        assert net.messages_dropped == 1
        assert any(record.dropped for record in net.log)

    def test_drop_probability_requires_rng(self):
        net = SynchronousNetwork(drop_probabilities={0: 0.5})
        with pytest.raises(InvalidParameterError):
            net.deliver(self._msg(), SERVER_ID)

    def test_log_capacity_bounds_memory(self):
        net = SynchronousNetwork(log_capacity=5)
        for _ in range(10):
            net.deliver(self._msg(), SERVER_ID)
        assert len(net.log) == 5
        assert net.messages_delivered == 10

    def test_invalid_probability_rejected(self):
        with pytest.raises(InvalidParameterError):
            SynchronousNetwork(drop_probabilities={0: 1.5})

    def test_dropped_bytes_are_accounted(self):
        rng = np.random.default_rng(0)
        net = SynchronousNetwork(drop_probabilities={7: 1.0}, rng=rng)
        msg = self._msg(sender=7)
        net.deliver(msg, SERVER_ID)
        assert net.bytes_dropped == msg.size_bytes()
        assert net.bytes_delivered == 0
        summary = net.traffic_summary()
        assert summary["messages_dropped"] == 1
        assert summary["bytes_dropped"] == msg.size_bytes()
