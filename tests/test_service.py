"""End-to-end tests for the long-lived aggregation service.

In-process tests run a real :class:`ReproService` on a background event
loop and talk to it over its unix socket with the real client — the full
wire path. The crash test runs ``repro serve`` as a subprocess, kills it
with SIGKILL mid-run, restarts it over the same state directory, and
proves resumed jobs recompute only cells the cache never saw.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.exceptions import AdmissionRejectedError, ServiceError
from repro.experiments.sweep import RegressionGrid, SweepEngine
from repro.service import ReproService, ServiceClient, ServiceConfig

SWEEP_PARAMS = {
    "filters": ["cge"],
    "attacks": ["gradient-reverse", "zero"],
    "fault_counts": [1],
    "num_seeds": 2,
    "iterations": 25,
    "master_seed": 11,
}


class ServiceHarness:
    """A live service on a background loop + a client for its socket."""

    def __init__(self, state_dir, **config_kwargs):
        import asyncio

        config_kwargs.setdefault("parallel", False)
        config_kwargs.setdefault("job_slots", 2)
        self.config = ServiceConfig(state_dir=str(state_dir), **config_kwargs)
        self.service = ReproService(self.config)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_until_complete,
            args=(self.service.serve_forever(),), daemon=True)
        self._thread.start()
        self.client = ServiceClient(socket_path=self.config.socket_path,
                                    timeout=10)
        deadline = time.monotonic() + 10
        while True:
            try:
                self.client.healthz()
                break
            except ServiceError:
                if time.monotonic() > deadline:
                    raise RuntimeError("service never came up")
                time.sleep(0.02)

    def stop(self):
        try:
            self.client.shutdown()
        except ServiceError:
            pass
        self._thread.join(timeout=15)
        assert not self._thread.is_alive(), "service did not stop"


@pytest.fixture
def harness(tmp_path):
    h = ServiceHarness(tmp_path / "state")
    yield h
    h.stop()


class TestServiceEndToEnd:
    def test_run_job_lifecycle(self, harness):
        record = harness.client.submit(
            "run", {"n": 6, "d": 2, "f": 1, "iterations": 30, "seed": 4})
        assert record["state"] == "queued"
        final = harness.client.wait(record["job_id"], timeout=120)
        assert final["state"] == "done"
        assert final["attempts"] == 1
        result = harness.client.result(record["job_id"])
        assert result["kind"] == "run"
        assert result["final_error"] >= 0.0
        assert result["counts"]["telemetry_records"] > 0

    def test_sweep_job_bit_identical_to_direct_engine(self, harness):
        record = harness.client.submit("sweep", SWEEP_PARAMS)
        final = harness.client.wait(record["job_id"], timeout=240)
        assert final["state"] == "done", final.get("error")
        result = harness.client.result(record["job_id"])
        direct = SweepEngine(parallel=False).run_regression_grid(
            RegressionGrid(
                filters=("cge",), attacks=("gradient-reverse", "zero"),
                fault_counts=(1,), num_seeds=2, iterations=25,
                master_seed=11,
            )
        )
        assert len(result["cells"]) == len(direct)
        for got, ref in zip(result["cells"], direct):
            assert (got["filter"], got["attack"], got["f"], got["seed"]) == (
                ref.filter_name, ref.attack_name, ref.f, ref.seed)
            assert got["final_error"] == ref.final_error
            assert got["final_estimate"] == ref.final_estimate.tolist()

    def test_events_endpoint_serves_parseable_jsonl(self, harness):
        record = harness.client.submit("sweep", SWEEP_PARAMS)
        harness.client.wait(record["job_id"], timeout=240)
        events = list(harness.client.events(record["job_id"]))
        assert events, "sweep produced no events"
        assert all("event" in e for e in events)
        names = {e["event"] for e in events}
        assert names & {"cache_miss", "chunk_done", "map_inprocess"} or names

    def test_invalid_spec_rejected_400(self, harness):
        with pytest.raises(ServiceError, match="invalid-spec"):
            harness.client.submit("sweep", {"bogus": 1})
        with pytest.raises(ServiceError, match="unknown job kind"):
            harness.client.submit("mystery", {})

    def test_result_before_completion_conflicts(self, harness, tmp_path):
        # a job that was never submitted
        with pytest.raises(ServiceError):
            harness.client.result("j99999-deadbeef")

    def test_unknown_job_404(self, harness):
        with pytest.raises(ServiceError, match="unknown-job"):
            harness.client.job("j99999-deadbeef")

    def test_job_listing(self, harness):
        a = harness.client.submit("run", {"iterations": 20})
        b = harness.client.submit("run", {"iterations": 21})
        listed = [j["job_id"] for j in harness.client.jobs()]
        assert listed == [a["job_id"], b["job_id"]]

    def test_failed_job_reports_error(self, harness):
        # valid spec, infeasible configuration at execution time: Bulyan-
        # style constraints don't apply here, so use a bench with a valid
        # name but force failure via an unsatisfiable run: n=2 with f=1
        # leaves too few honest agents for a unique minimizer.
        record = harness.client.submit(
            "run", {"n": 2, "d": 2, "f": 1, "iterations": 10})
        final = harness.client.wait(record["job_id"], timeout=60)
        assert final["state"] == "failed"
        assert final["error"]

    def test_cross_tenant_cache_sharing(self, harness):
        first = harness.client.submit("sweep", SWEEP_PARAMS, client="alice")
        harness.client.wait(first["job_id"], timeout=240)
        second = harness.client.submit("sweep", SWEEP_PARAMS, client="bob")
        harness.client.wait(second["job_id"], timeout=240)
        result = harness.client.result(second["job_id"])
        assert result["counts"]["cache_hits"] == result["counts"]["cells"]
        assert result["counts"]["cache_misses"] == 0


class TestAdmissionOverTheWire:
    def test_queue_full_is_structured_429(self, tmp_path):
        harness = ServiceHarness(tmp_path / "state", max_queue=1, job_slots=1)
        try:
            # keep the single slot busy so queued jobs pile up
            harness.client.submit("sweep", dict(SWEEP_PARAMS,
                                                iterations=4000))
            harness.client.submit("run", {"iterations": 10})
            with pytest.raises(AdmissionRejectedError) as info:
                harness.client.submit("run", {"iterations": 10})
            assert info.value.reason == "queue-full"
            assert info.value.limit == 1
            assert info.value.status == 429
        finally:
            harness.stop()

    def test_client_cap_is_structured_429(self, tmp_path):
        harness = ServiceHarness(tmp_path / "state", per_client=1,
                                 job_slots=1)
        try:
            harness.client.submit("sweep", dict(SWEEP_PARAMS,
                                                iterations=4000),
                                  client="greedy")
            with pytest.raises(AdmissionRejectedError) as info:
                harness.client.submit("run", {"iterations": 10},
                                      client="greedy")
            assert info.value.reason == "client-cap"
            # other clients still get in
            harness.client.submit("run", {"iterations": 10}, client="other")
        finally:
            harness.stop()


def _start_server(state_dir, sock):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--state-dir",
         str(state_dir), "--job-slots", "2", "--pool-workers", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    client = ServiceClient(socket_path=sock, timeout=5)
    deadline = time.monotonic() + 30
    while True:
        try:
            client.healthz()
            return proc
        except ServiceError:
            if proc.poll() is not None or time.monotonic() > deadline:
                output = proc.stdout.read().decode()
                proc.kill()
                raise RuntimeError(f"server did not come up:\n{output}")
            time.sleep(0.05)


def _cache_cells(state_dir):
    cache = os.path.join(str(state_dir), "cache")
    if not os.path.isdir(cache):
        return 0
    return len([f for f in os.listdir(cache)
                if f.endswith(".json") and not f.startswith("manifest")])


def _descendants(pid):
    pids = []
    try:
        entries = os.listdir("/proc")
    except OSError:
        return pids
    by_parent = {}
    for entry in entries:
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat") as handle:
                ppid = int(handle.read().rsplit(")", 1)[1].split()[1])
        except (OSError, IndexError, ValueError):
            continue
        by_parent.setdefault(ppid, []).append(int(entry))
    frontier = [pid]
    while frontier:
        children = by_parent.get(frontier.pop(), [])
        pids.extend(children)
        frontier.extend(children)
    return pids


def _alive(pid):
    # Running or sleeping counts; exited or zombie (unreaped orphan) does
    # not — zombies keep their /proc entry but can no longer write cells.
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().rsplit(")", 1)[1].split()[0] != "Z"
    except (OSError, IndexError):
        return False


class TestKillDashNineResume:
    def test_killed_server_resumes_without_recomputing_cached_cells(
            self, tmp_path):
        state = tmp_path / "state"
        sock = str(state / "repro.sock")
        proc = _start_server(state, sock)
        client = ServiceClient(socket_path=sock, timeout=10)
        try:
            ids = []
            for i, filt in enumerate(["cge", "cwtm"]):
                rec = client.submit("sweep", {
                    "filters": [filt],
                    "attacks": ["gradient-reverse", "random", "sign-flip",
                                "zero"],
                    "fault_counts": [1], "num_seeds": 2,
                    "iterations": 30000, "master_seed": 50 + i,
                }, client=f"tenant{i}")
                ids.append(rec["job_id"])

            # let some groups finish, then SIGKILL mid-run
            deadline = time.monotonic() + 60
            while _cache_cells(state) < 2:
                assert time.monotonic() < deadline, "no cells finished"
                time.sleep(0.25)
            workers = _descendants(proc.pid)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait()

            # Orphaned pool workers finish their in-flight chunk, flush
            # its cells, then exit on call-queue EOF. Wait for them to
            # die before snapshotting — a plain fixed-interval check can
            # declare the cache stable while a slow chunk is mid-compute.
            deadline = time.monotonic() + 90
            while any(_alive(p) for p in workers):
                if time.monotonic() > deadline:
                    break
                time.sleep(0.25)
            previous, stable = -1, 0
            while stable < 3:
                current = _cache_cells(state)
                stable = stable + 1 if current == previous else 0
                previous = current
                time.sleep(1.0)
            cached_before_restart = _cache_cells(state)

            proc = _start_server(state, sock)
            health = client.healthz()
            assert set(health["recovered"]) >= {
                jid for jid in ids
                if json.load(open(
                    os.path.join(str(state), "jobs", jid, "job.json")
                ))["payload"]["state"] == "queued"
            }

            total_hits = total_misses = total_cells = 0
            for jid in ids:
                final = client.wait(jid, timeout=300, poll=0.5)
                assert final["state"] == "done", final.get("error")
                result = client.result(jid)
                counts = result["counts"]
                assert counts["failed"] == 0
                assert counts["quarantined"] == 0
                total_hits += counts["cache_hits"]
                total_misses += counts["cache_misses"]
                total_cells += counts["cells"]
                # every per-job event stream is valid JSONL
                events = list(client.events(jid))
                assert events and all("event" in e for e in events)

            assert total_cells == 16
            assert total_hits + total_misses == total_cells
            # THE durability claim: no cell that survived the kill was
            # recomputed, and everything else was.
            assert total_hits == cached_before_restart

            # resumed results are bit-identical to a direct batch run
            for i, jid in enumerate(ids):
                direct = SweepEngine(parallel=False).run_regression_grid(
                    RegressionGrid(
                        filters=(["cge", "cwtm"][i],),
                        attacks=("gradient-reverse", "random", "sign-flip",
                                 "zero"),
                        fault_counts=(1,), num_seeds=2, iterations=30000,
                        master_seed=50 + i,
                    )
                )
                cells = client.result(jid)["cells"]
                for got, ref in zip(cells, direct):
                    assert got["final_error"] == ref.final_error
                    assert got["final_estimate"] == (
                        ref.final_estimate.tolist())
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
                try:
                    proc.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    proc.kill()


class TestJobPruning:
    """``JobStore.prune`` GC: old terminal jobs go, everything else stays."""

    @staticmethod
    def _spec(seed):
        from repro.service.jobs import validate_job_spec

        return validate_job_spec(
            {"kind": "run", "params": {"n": 6, "seed": seed}}
        )

    def test_prune_removes_old_terminal_jobs_only(self, tmp_path):
        from repro.service.jobs import JobStore

        store = JobStore(str(tmp_path))
        now = time.time()

        old_done = store.create(self._spec(1))
        old_done.state = "done"
        old_done.finished_at = now - 1000
        store.save(old_done)
        store.write_result(old_done.job_id, {"ok": True})

        old_failed = store.create(self._spec(2))
        old_failed.state = "failed"
        old_failed.finished_at = now - 1000
        store.save(old_failed)

        fresh_done = store.create(self._spec(3))
        fresh_done.state = "done"
        fresh_done.finished_at = now
        store.save(fresh_done)

        queued = store.create(self._spec(4))  # queued, however old
        queued.submitted_at = now - 10_000
        store.save(queued)

        running = store.create(self._spec(5))
        running.state = "running"
        running.started_at = now - 10_000
        store.save(running)

        pruned = store.prune(ttl=500, now=now)
        assert pruned == [old_done.job_id, old_failed.job_id]
        # pruned manifests (and their whole job directories) are gone
        for job_id in pruned:
            assert not os.path.exists(store.job_dir(job_id))
            assert not os.path.exists(store.manifest_path(job_id))
        # live and queued jobs survive, and fresh terminal jobs do too
        survivors = {record.job_id for record in store.load_all()}
        assert survivors == {
            fresh_done.job_id, queued.job_id, running.job_id
        }

    def test_prune_ttl_zero_collects_every_terminal_job(self, tmp_path):
        from repro.service.jobs import JobStore

        store = JobStore(str(tmp_path))
        done = store.create(self._spec(1))
        done.state = "cancelled"
        done.finished_at = time.time()
        store.save(done)
        queued = store.create(self._spec(2))
        assert store.prune(ttl=0) == [done.job_id]
        assert {r.job_id for r in store.load_all()} == {queued.job_id}

    def test_negative_ttl_rejected(self, tmp_path):
        from repro.exceptions import InvalidParameterError
        from repro.service.jobs import JobStore

        with pytest.raises(InvalidParameterError, match="ttl"):
            JobStore(str(tmp_path)).prune(ttl=-1)
        with pytest.raises(InvalidParameterError, match="job_ttl"):
            ServiceConfig(state_dir=str(tmp_path), job_ttl=-5)

    def test_live_service_prunes_finished_jobs(self, tmp_path):
        # ttl long enough for client.wait to observe the terminal state
        # before the GC sweep collects it, short enough to test the sweep
        harness = ServiceHarness(tmp_path / "state", job_ttl=1.0)
        try:
            record = harness.client.submit(
                "run", {"n": 6, "d": 2, "f": 1, "iterations": 20, "seed": 1}
            )
            final = harness.client.wait(record["job_id"], timeout=60)
            assert final["state"] == "done"
            job_dir = harness.service.store.job_dir(record["job_id"])
            deadline = time.monotonic() + 10
            while os.path.exists(job_dir):
                assert time.monotonic() < deadline, "job never pruned"
                time.sleep(0.05)
            # the in-memory table follows the disk table
            deadline = time.monotonic() + 10
            while any(j["job_id"] == record["job_id"]
                      for j in harness.client.jobs()):
                assert time.monotonic() < deadline, "record never dropped"
                time.sleep(0.05)
        finally:
            harness.stop()
