"""Property-based tests for Byzantine broadcast and the exact algorithm.

The broadcast properties are the primitive's specification — **agreement**
(all honest nodes deliver one value) and **validity** (an honest sender's
value is the delivered one) — checked over hypothesis-generated system
sizes, fault placements, and adversarial strategies. The exact-algorithm
property is the achievability theorem over random redundant instances and
random Byzantine submissions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact_algorithm import SubsetEnumerationAlgorithm
from repro.optimization.cost_functions import TranslatedQuadratic
from repro.problems.linear_regression import make_redundant_regression
from repro.system.broadcast import (
    EquivocatingSender,
    SilentSender,
    StaggeredEquivocator,
    byzantine_broadcast,
)


@st.composite
def broadcast_configurations(draw):
    n = draw(st.integers(4, 10))
    f = draw(st.integers(0, (n - 1) // 3))
    faulty = draw(
        st.sets(st.integers(0, n - 1), min_size=f, max_size=f)
    )
    sender = draw(st.integers(0, n - 1))
    return n, f, sorted(faulty), sender


class TestBroadcastProperties:
    @settings(max_examples=40, deadline=None)
    @given(config=broadcast_configurations(), value=st.floats(-10, 10, allow_nan=False))
    def test_validity_for_honest_sender(self, config, value):
        n, f, faulty, sender = config
        if sender in faulty:
            faulty = [i for i in faulty if i != sender]
        payload = np.array([value, -value])
        result = byzantine_broadcast(n, f, sender, payload, faulty=faulty)
        assert np.allclose(result.agreed_value, payload)
        for node, delivered in result.delivered.items():
            assert np.allclose(delivered, payload), node

    @settings(max_examples=40, deadline=None)
    @given(
        config=broadcast_configurations(),
        strategy_kind=st.sampled_from(["equivocate", "silent", "staggered", "honest"]),
    )
    def test_agreement_for_faulty_sender(self, config, strategy_kind):
        n, f, faulty, sender = config
        if f == 0:
            return  # no faulty sender possible
        if sender not in faulty:
            sender = faulty[0]
        a, b = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        if strategy_kind == "equivocate":
            strategy = EquivocatingSender(a, b)
            value = None
        elif strategy_kind == "silent":
            strategy = SilentSender()
            value = None
        elif strategy_kind == "staggered":
            colluders = [i for i in faulty if i != sender][:1]
            strategy = StaggeredEquivocator(a, b, colluders=colluders)
            value = None
        else:
            strategy = None
            value = a
        # Agreement is asserted inside the primitive (it raises
        # ProtocolViolationError on disagreement); reaching the end of the
        # call means the property held.
        result = byzantine_broadcast(
            n, f, sender, value, faulty=faulty, sender_strategy=strategy
        )
        assert set(result.delivered) == {i for i in range(n) if i not in faulty}

    @settings(max_examples=30, deadline=None)
    @given(config=broadcast_configurations())
    def test_round_and_message_bounds(self, config):
        n, f, faulty, sender = config
        if sender in faulty:
            faulty = [i for i in faulty if i != sender]
        result = byzantine_broadcast(n, f, sender, np.zeros(1), faulty=faulty)
        assert result.rounds == f + 1
        # Every honest relay sends at most (n-1) messages per extracted
        # value; one value circulates for an honest sender.
        assert result.messages_sent <= n + (f + 1) * n * n


class TestExactAlgorithmProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        pull=st.floats(-50.0, 50.0, allow_nan=False),
        n=st.integers(4, 7),
    )
    def test_exact_recovery_over_random_instances(self, seed, pull, n):
        """Achievability over random redundant instances and submissions."""
        f = 1
        instance = make_redundant_regression(n=n, d=2, f=f, noise_std=0.0, seed=seed)
        submitted = list(instance.costs)
        submitted[0] = TranslatedQuadratic([pull, -pull])
        output = SubsetEnumerationAlgorithm(n, f).run(submitted).output
        assert np.allclose(output, instance.x_star, atol=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_output_independent_of_byzantine_submission(self, seed):
        """Two different Byzantine submissions yield the same output under
        exact redundancy — the adversary has no influence at all."""
        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=seed)
        rng = np.random.default_rng(seed)
        outputs = []
        for _ in range(2):
            submitted = list(instance.costs)
            submitted[0] = TranslatedQuadratic(rng.normal(scale=30.0, size=2))
            outputs.append(SubsetEnumerationAlgorithm(6, 1).run(submitted).output)
        assert np.allclose(outputs[0], outputs[1], atol=1e-9)
