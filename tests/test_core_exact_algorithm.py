"""Tests for the subset-enumeration algorithm (achievability proof)."""

import numpy as np
import pytest

from repro.core.exact_algorithm import SubsetEnumerationAlgorithm
from repro.exceptions import InfeasibleConfigurationError, InvalidParameterError
from repro.optimization.cost_functions import LeastSquaresCost, TranslatedQuadratic
from repro.problems.linear_regression import make_redundant_regression


class TestExactRecovery:
    """Under exact 2f-redundancy the output equals the honest minimizer."""

    def test_recovers_under_adversarial_cost(self, noiseless):
        costs = list(noiseless.costs)
        costs[0] = TranslatedQuadratic([100.0, -100.0])  # Byzantine submission
        algorithm = SubsetEnumerationAlgorithm(n=6, f=1)
        result = algorithm.run(costs)
        x_H = noiseless.honest_minimizer([1, 2, 3, 4, 5])
        assert np.allclose(result.output, x_H, atol=1e-6)
        assert result.selected_score == pytest.approx(0.0, abs=1e-7)

    def test_recovers_with_two_faults(self):
        instance = make_redundant_regression(n=8, d=2, f=2, noise_std=0.0, seed=1)
        costs = list(instance.costs)
        costs[0] = TranslatedQuadratic([50.0, 50.0])
        costs[1] = TranslatedQuadratic([-50.0, 10.0])
        result = SubsetEnumerationAlgorithm(n=8, f=2).run(costs)
        x_H = instance.honest_minimizer(range(2, 8))
        assert np.allclose(result.output, x_H, atol=1e-6)

    def test_fault_free_case(self, noiseless):
        result = SubsetEnumerationAlgorithm(n=6, f=0).run(noiseless.costs)
        assert np.allclose(result.output, noiseless.x_star, atol=1e-8)
        assert result.selected_subset == tuple(range(6))

    def test_byzantine_costs_mimicking_honest_structure(self, noiseless):
        # The adversary submits a cost consistent with a shifted parameter;
        # a minority cannot outvote the redundancy structure.
        costs = list(noiseless.costs)
        shifted = noiseless.x_star + 10.0
        costs[0] = LeastSquaresCost(
            noiseless.A[0][None, :], (noiseless.A[0] @ shifted)[None]
        )
        result = SubsetEnumerationAlgorithm(n=6, f=1).run(costs)
        assert np.allclose(result.output, noiseless.x_star, atol=1e-6)


class TestApproximateBehaviour:
    def test_noisy_instance_output_near_honest_minimizer(self, paper):
        # With approximate redundancy the score machinery still picks a
        # subset whose minimizer is within ~2 margins of every honest one.
        from repro.core.redundancy import measure_redundancy_margin

        margin = measure_redundancy_margin(paper.costs, 1).margin
        costs = list(paper.costs)
        costs[0] = TranslatedQuadratic([30.0, -30.0])
        result = SubsetEnumerationAlgorithm(n=6, f=1).run(costs)
        x_H = paper.honest_minimizer([1, 2, 3, 4, 5])
        assert np.linalg.norm(result.output - x_H) <= 2.0 * margin + 1e-9


class TestScoresAndGuards:
    def test_keep_scores_records_every_candidate(self, noiseless):
        from math import comb

        result = SubsetEnumerationAlgorithm(n=6, f=1).run(
            noiseless.costs, keep_scores=True
        )
        assert len(result.scores) == comb(6, 5)
        assert min(s.score for s in result.scores) == pytest.approx(
            result.selected_score
        )
        assert set(result.score_by_subset) == {s.subset for s in result.scores}

    def test_wrong_cost_count_rejected(self, noiseless):
        with pytest.raises(InvalidParameterError):
            SubsetEnumerationAlgorithm(n=7, f=1).run(noiseless.costs)

    def test_complexity_guard(self):
        algorithm = SubsetEnumerationAlgorithm(n=30, f=10, max_subset_solves=100)
        costs = [TranslatedQuadratic([0.0]) for _ in range(30)]
        with pytest.raises(InfeasibleConfigurationError, match="budget"):
            algorithm.run(costs)

    def test_estimated_solves_positive(self):
        assert SubsetEnumerationAlgorithm(6, 1).estimated_subset_solves() > 0

    def test_infeasible_fault_bound(self):
        with pytest.raises(InfeasibleConfigurationError):
            SubsetEnumerationAlgorithm(n=4, f=2)

    def test_tied_inner_scores_keep_first_subset(self):
        # Identical costs make every inner subset score exactly 0.0: the
        # argmax over inner subsets is all ties, and the update rule must
        # keep the lexicographically-first subset (enumeration order)
        # rather than the last — pinning down deterministic tie-breaking.
        costs = [TranslatedQuadratic([0.0, 0.0]) for _ in range(5)]
        result = SubsetEnumerationAlgorithm(n=5, f=1).run(costs, keep_scores=True)
        assert result.scores
        for record in result.scores:
            assert record.score == 0.0
            assert record.worst_inner == record.subset[: len(record.subset) - 1]
