"""Tests for Byzantine attack behaviours."""

import numpy as np
import pytest

from repro.attacks import available_attacks, make_attack
from repro.attacks.adaptive import (
    ALittleIsEnough,
    InnerProductManipulation,
    Mimic,
    OptimalDirectionAttack,
)
from repro.attacks.base import AttackContext, ByzantineBehavior
from repro.attacks.simple import (
    ConstantBias,
    CostSubstitution,
    GradientReverse,
    RandomGaussian,
    SignFlip,
    ZeroGradient,
)
from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import TranslatedQuadratic


def make_context(
    num_faulty=2,
    dimension=3,
    honest=None,
    with_costs=True,
    estimate=None,
    seed=0,
):
    honest = (
        np.arange(12, dtype=float).reshape(4, 3)
        if honest is None
        else np.asarray(honest, dtype=float)
    )
    faulty_ids = list(range(num_faulty))
    costs = (
        [TranslatedQuadratic(np.full(dimension, float(i + 1))) for i in faulty_ids]
        if with_costs
        else [None] * num_faulty
    )
    return AttackContext(
        round_index=0,
        estimate=np.zeros(dimension) if estimate is None else np.asarray(estimate, float),
        honest_gradients=honest,
        honest_ids=list(range(num_faulty, num_faulty + honest.shape[0])),
        faulty_ids=faulty_ids,
        faulty_costs=costs,
        rng=np.random.default_rng(seed),
    )


class TestContext:
    def test_shape_helpers(self):
        ctx = make_context()
        assert ctx.dimension == 3
        assert ctx.num_faulty == 2
        assert np.allclose(ctx.honest_mean(), ctx.honest_gradients.mean(axis=0))
        assert np.allclose(ctx.honest_std(), ctx.honest_gradients.std(axis=0))

    def test_true_faulty_gradients(self):
        ctx = make_context()
        true = ctx.true_faulty_gradients()
        # TranslatedQuadratic(target) gradient at 0 is -2*target.
        assert np.allclose(true[0], -2.0 * np.ones(3))
        assert np.allclose(true[1], -4.0 * np.ones(3))

    def test_missing_cost_raises(self):
        ctx = make_context(with_costs=False)
        with pytest.raises(InvalidParameterError):
            ctx.true_faulty_gradients()

    def test_empty_honest_means_zero(self):
        ctx = make_context(honest=np.zeros((0, 3)))
        assert np.allclose(ctx.honest_mean(), 0.0)


class TestShapeContract:
    def test_every_attack_produces_correct_shape(self):
        ctx = make_context()
        for name in available_attacks():
            kwargs = {}
            if name == "constant-bias":
                kwargs = {"bias": np.ones(3)}
            if name == "optimal-direction":
                kwargs = {"target": np.ones(3)}
            if name == "cost-substitution":
                kwargs = {
                    "substituted_costs": {
                        i: TranslatedQuadratic(np.zeros(3)) for i in (0, 1)
                    }
                }
            if name == "intermittent":
                kwargs = {"inner": ZeroGradient(), "period": 2}
            behavior = make_attack(name, **kwargs)
            out = behavior(ctx)
            assert out.shape == (2, 3), name

    def test_wrong_shape_caught_by_wrapper(self):
        class Broken(ByzantineBehavior):
            def forge(self, context):
                return np.zeros((1, 1))

        with pytest.raises(InvalidParameterError, match="shape"):
            Broken()(make_context())


class TestSimpleAttacks:
    def test_gradient_reverse_negates(self):
        ctx = make_context()
        out = GradientReverse()(ctx)
        assert np.allclose(out, -ctx.true_faulty_gradients())

    def test_gradient_reverse_strength(self):
        ctx = make_context()
        assert np.allclose(
            GradientReverse(strength=3.0)(ctx), -3.0 * ctx.true_faulty_gradients()
        )

    def test_random_gaussian_scale(self):
        ctx = make_context()
        out = RandomGaussian(scale=200.0)(ctx)
        # Norm should be large with overwhelming probability.
        assert np.linalg.norm(out) > 50.0

    def test_random_gaussian_deterministic_per_rng(self):
        a = RandomGaussian()(make_context(seed=5))
        b = RandomGaussian()(make_context(seed=5))
        assert np.array_equal(a, b)

    def test_sign_flip_targets_honest_mean(self):
        ctx = make_context()
        out = SignFlip(strength=2.0)(ctx)
        assert np.allclose(out[0], -2.0 * ctx.honest_mean())
        assert np.allclose(out[0], out[1])

    def test_zero(self):
        assert np.allclose(ZeroGradient()(make_context()), 0.0)

    def test_constant_bias(self):
        out = ConstantBias([1.0, 2.0, 3.0])(make_context())
        assert np.allclose(out, [[1.0, 2.0, 3.0]] * 2)

    def test_constant_bias_dimension_check(self):
        with pytest.raises(InvalidParameterError):
            ConstantBias([1.0])(make_context())

    def test_cost_substitution_reports_substituted_gradients(self):
        ctx = make_context(estimate=np.ones(3))
        substituted = {
            0: TranslatedQuadratic(np.zeros(3)),
            1: TranslatedQuadratic(5.0 * np.ones(3)),
        }
        out = CostSubstitution(substituted)(ctx)
        assert np.allclose(out[0], substituted[0].gradient(np.ones(3)))
        assert np.allclose(out[1], substituted[1].gradient(np.ones(3)))

    def test_cost_substitution_missing_agent_rejected(self):
        ctx = make_context()
        with pytest.raises(InvalidParameterError, match="no substituted cost"):
            CostSubstitution({0: TranslatedQuadratic(np.zeros(3))})(ctx)

    def test_cost_substitution_requires_non_empty(self):
        with pytest.raises(InvalidParameterError):
            CostSubstitution({})


class TestAdaptiveAttacks:
    def test_alie_hides_inside_std(self):
        ctx = make_context()
        out = ALittleIsEnough(z=1.5)(ctx)
        expected = ctx.honest_mean() - 1.5 * ctx.honest_std()
        assert np.allclose(out[0], expected)

    def test_alie_default_z_positive(self):
        ctx = make_context()
        out = ALittleIsEnough()(ctx)
        assert np.all(np.isfinite(out))

    def test_ipm_direction(self):
        ctx = make_context()
        out = InnerProductManipulation(scale=0.5)(ctx)
        assert np.allclose(out[0], -0.5 * ctx.honest_mean())

    def test_mimic_copies_honest_row(self):
        ctx = make_context()
        out = Mimic(target_position=1)(ctx)
        assert np.allclose(out[0], ctx.honest_gradients[1])

    def test_optimal_direction_camouflaged_norm(self):
        ctx = make_context(estimate=np.ones(3))
        out = OptimalDirectionAttack(target=np.zeros(3))(ctx)
        honest_norms = np.linalg.norm(ctx.honest_gradients, axis=1)
        assert np.linalg.norm(out[0]) == pytest.approx(float(np.median(honest_norms)))

    def test_optimal_direction_at_target_is_zero(self):
        ctx = make_context(estimate=np.zeros(3))
        out = OptimalDirectionAttack(target=np.zeros(3))(ctx)
        assert np.allclose(out, 0.0)


class TestRegistry:
    def test_unknown_attack_rejected(self):
        with pytest.raises(InvalidParameterError, match="available"):
            make_attack("nope")

    def test_names_match_classes(self):
        assert make_attack("gradient-reverse").name == "gradient-reverse"
        assert make_attack("alie").name == "alie"

    def test_cost_substitution_via_registry(self):
        behavior = make_attack(
            "cost-substitution",
            substituted_costs={0: TranslatedQuadratic(np.zeros(3))},
        )
        assert behavior.name == "cost-substitution"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            GradientReverse(strength=0.0)
        with pytest.raises(InvalidParameterError):
            RandomGaussian(scale=-1.0)
        with pytest.raises(InvalidParameterError):
            ALittleIsEnough(z=-1.0)


class TestIntermittentAttack:
    def test_periodic_duty_cycle(self):
        from repro.attacks.adaptive import IntermittentAttack

        inner = GradientReverse()
        attack = IntermittentAttack(inner, period=2)
        active = make_context()  # round 0: active
        dormant_ctx = AttackContext(
            round_index=1,
            estimate=active.estimate,
            honest_gradients=active.honest_gradients,
            honest_ids=active.honest_ids,
            faulty_ids=active.faulty_ids,
            faulty_costs=active.faulty_costs,
            rng=np.random.default_rng(0),
        )
        assert np.allclose(attack(active), -active.true_faulty_gradients())
        assert np.allclose(attack(dormant_ctx), dormant_ctx.true_faulty_gradients())

    def test_probability_zero_is_always_honest(self):
        from repro.attacks.adaptive import IntermittentAttack

        attack = IntermittentAttack(GradientReverse(), active_probability=0.0)
        ctx = make_context()
        assert np.allclose(attack(ctx), ctx.true_faulty_gradients())

    def test_probability_one_is_always_attacking(self):
        from repro.attacks.adaptive import IntermittentAttack

        attack = IntermittentAttack(GradientReverse(), active_probability=1.0)
        ctx = make_context()
        assert np.allclose(attack(ctx), -ctx.true_faulty_gradients())

    def test_invalid_parameters(self):
        from repro.attacks.adaptive import IntermittentAttack

        with pytest.raises(InvalidParameterError):
            IntermittentAttack(GradientReverse(), active_probability=1.5)
        with pytest.raises(InvalidParameterError):
            IntermittentAttack(GradientReverse(), period=0)

    def test_end_to_end_still_filtered(self):
        from repro.attacks.adaptive import IntermittentAttack
        from repro.analysis.metrics import final_error
        from repro.problems.linear_regression import make_redundant_regression
        from repro.system.runner import run_dgd

        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=0)
        x_H = instance.honest_minimizer(range(1, 6))
        trace = run_dgd(
            instance.costs,
            IntermittentAttack(RandomGaussian(scale=200.0), active_probability=0.3),
            faulty_ids=[0], gradient_filter="cge", iterations=800, seed=0,
        )
        assert final_error(trace, x_H) < 0.1
