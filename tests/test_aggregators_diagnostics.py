"""Tests for the recording/diagnostics filter wrapper."""

import numpy as np
import pytest

from repro.aggregators.cge import ComparativeGradientElimination
from repro.aggregators.diagnostics import RecordingFilter
from repro.aggregators.mean import Average
from repro.attacks.simple import GradientReverse, RandomGaussian, ZeroGradient
from repro.problems.linear_regression import make_redundant_regression
from repro.system.runner import run_dgd


class TestTransparency:
    def test_output_matches_inner_filter(self):
        rng = np.random.default_rng(0)
        gradients = rng.normal(size=(6, 3))
        inner = ComparativeGradientElimination(f=1)
        recording = RecordingFilter(ComparativeGradientElimination(f=1))
        assert np.allclose(recording(gradients), inner(gradients))

    def test_f_and_minimum_inputs_delegate(self):
        recording = RecordingFilter(ComparativeGradientElimination(f=2))
        assert recording.f == 2
        assert recording.minimum_inputs() == 3


class TestRecording:
    def test_records_one_entry_per_call(self):
        recording = RecordingFilter(Average())
        for _ in range(4):
            recording(np.ones((3, 2)))
        assert len(recording.records) == 4
        assert recording.records[2].round_index == 2
        assert recording.records[0].num_inputs == 3

    def test_cge_kept_rows_recorded(self):
        recording = RecordingFilter(ComparativeGradientElimination(f=1))
        gradients = np.vstack([np.ones((4, 2)), [[100.0, 100.0]]])
        recording(gradients)
        kept = recording.records[0].kept_rows
        assert kept is not None
        assert 4 not in kept  # the big row was cut

    def test_non_cge_has_no_kept_rows(self):
        recording = RecordingFilter(Average())
        recording(np.ones((3, 2)))
        assert recording.records[0].kept_rows is None
        assert np.isnan(recording.survival_fraction(0))

    def test_reset_clears(self):
        recording = RecordingFilter(Average())
        recording(np.ones((3, 2)))
        recording.reset()
        assert recording.records == []

    def test_output_norm_series(self):
        recording = RecordingFilter(Average())
        recording(np.ones((3, 2)))
        recording(2 * np.ones((3, 2)))
        series = recording.output_norm_series()
        assert series.shape == (2,)
        assert series[1] == pytest.approx(2 * series[0])


class TestSurvivalAnalysis:
    def test_large_random_attack_never_survives_cge(self):
        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=0)
        recording = RecordingFilter(ComparativeGradientElimination(f=1))
        run_dgd(
            instance.costs, RandomGaussian(scale=200.0), faulty_ids=[0],
            gradient_filter=recording, iterations=150, seed=0,
        )
        # Sorted sender ids put the faulty agent 0 in row 0.
        assert recording.survival_fraction(0) < 0.05

    def test_zero_attack_always_survives_cge(self):
        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=0)
        recording = RecordingFilter(ComparativeGradientElimination(f=1))
        run_dgd(
            instance.costs, ZeroGradient(), faulty_ids=[0],
            gradient_filter=recording, iterations=150, seed=0,
        )
        assert recording.survival_fraction(0) == pytest.approx(1.0)

    def test_gradient_reverse_survival_is_partial(self):
        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.02, seed=0)
        recording = RecordingFilter(ComparativeGradientElimination(f=1))
        run_dgd(
            instance.costs, GradientReverse(), faulty_ids=[0],
            gradient_filter=recording, iterations=300, seed=0,
        )
        fraction = recording.survival_fraction(0)
        # The reversed gradient has an honest-scale norm: sometimes kept.
        assert 0.0 < fraction < 1.0
