"""Chaos harness unit tests: fault policies, atomic IO, and engine.map.

Each injectable failure mode (worker raises, worker process dies, worker
hangs, cache truncated/bit-flipped, transient pickle failure) is driven
through the layer that must survive it. Grid-level scenarios live in
``tests/test_sweep_resilience.py``.
"""

import json
import os
import pickle
import time
import warnings

import pytest

from repro.exceptions import CacheIntegrityError, InjectedFault, InvalidParameterError
from repro.experiments.sweep import SweepEngine, SweepEvents
from repro.system.faultinjection import (
    CallCounter,
    CrashOnCalls,
    FailEveryNth,
    FailMatching,
    FailOnCalls,
    FaultyWorker,
    HangOnCalls,
    RandomFaults,
    TransientlyUnpicklable,
    corrupt_cache_entry,
    corrupt_json_file,
)
from repro.utils.atomicio import (
    payload_checksum,
    read_json_checked,
    write_json_atomic,
)


def _double(x):
    return 2 * x


class TestAtomicIO:
    def test_checksummed_round_trip(self, tmp_path):
        path = str(tmp_path / "doc.json")
        payload = {"a": [1, 2.5, None], "b": "text"}
        write_json_atomic(path, payload)
        assert read_json_checked(path) == payload

    def test_wrapper_format_on_disk(self, tmp_path):
        path = str(tmp_path / "doc.json")
        write_json_atomic(path, {"x": 1})
        document = json.loads(open(path).read())
        assert set(document) == {"sha256", "payload"}
        assert document["sha256"] == payload_checksum({"x": 1})

    def test_no_tmp_file_left_behind(self, tmp_path):
        write_json_atomic(str(tmp_path / "doc.json"), {"x": 1})
        assert os.listdir(tmp_path) == ["doc.json"]

    def test_unchecksummed_write(self, tmp_path):
        path = str(tmp_path / "doc.json")
        write_json_atomic(path, {"x": 1}, checksum=False)
        assert json.loads(open(path).read()) == {"x": 1}

    def test_truncated_file_rejected(self, tmp_path):
        path = str(tmp_path / "doc.json")
        write_json_atomic(path, {"key": list(range(100))})
        corrupt_json_file(path, mode="truncate")
        with pytest.raises(CacheIntegrityError, match="malformed"):
            read_json_checked(path)

    def test_bitflipped_file_rejected(self, tmp_path):
        path = str(tmp_path / "doc.json")
        write_json_atomic(path, {"key": list(range(100))})
        corrupt_json_file(path, mode="bitflip", seed=3)
        with pytest.raises(CacheIntegrityError):
            read_json_checked(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = str(tmp_path / "doc.json")
        write_json_atomic(path, {"x": 1})
        corrupt_json_file(path, mode="garbage")
        with pytest.raises(CacheIntegrityError, match="malformed"):
            read_json_checked(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CacheIntegrityError, match="cannot read"):
            read_json_checked(str(tmp_path / "absent.json"))

    def test_legacy_unwrapped_payload_readable(self, tmp_path):
        # Pre-checksum cache entries were bare payloads; they still load.
        path = str(tmp_path / "legacy.json")
        with open(path, "w") as handle:
            json.dump({"final_error": 0.5}, handle)
        assert read_json_checked(path) == {"final_error": 0.5}
        with pytest.raises(CacheIntegrityError, match="no integrity checksum"):
            read_json_checked(path, require_checksum=True)

    def test_checksum_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "doc.json")
        with open(path, "w") as handle:
            json.dump({"sha256": "0" * 64, "payload": {"x": 1}}, handle)
        with pytest.raises(CacheIntegrityError, match="checksum mismatch"):
            read_json_checked(path)

    def test_checksum_is_canonical(self):
        assert payload_checksum({"a": 1, "b": 2}) == payload_checksum({"b": 2, "a": 1})


class TestCallCounter:
    def test_monotone_and_unique(self, tmp_path):
        counter = CallCounter(str(tmp_path / "calls"))
        assert [counter.claim() for _ in range(5)] == [0, 1, 2, 3, 4]
        assert counter.value() == 5

    def test_shared_across_instances(self, tmp_path):
        directory = str(tmp_path / "calls")
        assert CallCounter(directory).claim() == 0
        assert CallCounter(directory).claim() == 1

    def test_value_without_directory(self, tmp_path):
        assert CallCounter(str(tmp_path / "never-created")).value() == 0


class TestPolicies:
    def test_fail_every_nth(self):
        policy = FailEveryNth(3)
        for index in (0, 1, 3, 4, 6):
            policy.apply(index, None)
        for index in (2, 5, 8):
            with pytest.raises(InjectedFault):
                policy.apply(index, None)

    def test_fail_every_nth_validates(self):
        with pytest.raises(InvalidParameterError):
            FailEveryNth(0)

    def test_fail_on_calls(self):
        policy = FailOnCalls((1, 4))
        policy.apply(0, None)
        with pytest.raises(InjectedFault):
            policy.apply(4, None)

    def test_fail_matching_is_item_keyed(self):
        policy = FailMatching("poison")
        policy.apply(0, {"name": "fine"})
        with pytest.raises(InjectedFault):
            policy.apply(0, {"name": "poison"})
        with pytest.raises(InjectedFault):  # persists across retries
            policy.apply(99, {"name": "poison"})

    def test_hang_on_calls_sleeps(self):
        policy = HangOnCalls((1,), duration=0.2)
        start = time.perf_counter()
        policy.apply(0, None)
        assert time.perf_counter() - start < 0.1
        start = time.perf_counter()
        policy.apply(1, None)
        assert time.perf_counter() - start >= 0.2

    def test_random_faults_deterministic(self):
        policy = RandomFaults(rate=0.5, seed=7)
        decisions = []
        for index in range(50):
            try:
                policy.apply(index, None)
                decisions.append(False)
            except InjectedFault:
                decisions.append(True)
        replay = []
        for index in range(50):
            try:
                RandomFaults(rate=0.5, seed=7).apply(index, None)
                replay.append(False)
            except InjectedFault:
                replay.append(True)
        assert decisions == replay
        assert any(decisions) and not all(decisions)

    def test_random_faults_extremes_and_validation(self):
        RandomFaults(rate=0.0).apply(0, None)  # never fires
        with pytest.raises(InjectedFault):
            RandomFaults(rate=1.0).apply(0, None)
        with pytest.raises(InvalidParameterError):
            RandomFaults(rate=1.5)

    def test_policies_are_picklable(self):
        policies = (
            FailEveryNth(5), FailOnCalls((1,)), FailMatching("x"),
            HangOnCalls((2,), 0.1), CrashOnCalls((3,)), RandomFaults(0.2, seed=1),
        )
        assert pickle.loads(pickle.dumps(policies)) == policies


class TestFaultyWorker:
    def test_applies_policies_with_shared_counter(self, tmp_path):
        worker = FaultyWorker(
            _double, [FailOnCalls((1,))], counter_dir=str(tmp_path / "calls")
        )
        assert worker(3) == 6  # call 0
        with pytest.raises(InjectedFault):
            worker(4)  # call 1
        assert worker(4) == 8  # call 2: the retry succeeds

    def test_local_counter_fallback(self):
        worker = FaultyWorker(_double, [FailOnCalls((0,))])
        with pytest.raises(InjectedFault):
            worker(1)
        assert worker(1) == 2

    def test_picklable_and_counter_survives_round_trip(self, tmp_path):
        directory = str(tmp_path / "calls")
        worker = FaultyWorker(_double, [FailOnCalls((1,))], counter_dir=directory)
        clone = pickle.loads(pickle.dumps(worker))
        assert clone(3) == 6  # claims global call 0
        with pytest.raises(InjectedFault):
            worker(3)  # claims global call 1 — counter is shared state


class TestTransientlyUnpicklable:
    def test_transient_then_recovers(self, tmp_path):
        worker = TransientlyUnpicklable(_double, failures=2,
                                        state_dir=str(tmp_path / "pk"))
        assert worker(5) == 10
        for _ in range(2):
            with pytest.raises(pickle.PicklingError):
                pickle.dumps(worker)
        clone = pickle.loads(pickle.dumps(worker))  # third attempt succeeds
        assert clone(5) == 10


class TestCorruptors:
    def test_modes_change_bytes(self, tmp_path):
        for mode in ("truncate", "bitflip", "garbage"):
            path = str(tmp_path / f"{mode}.json")
            write_json_atomic(path, {"data": list(range(50))})
            before = open(path, "rb").read()
            corrupt_json_file(path, mode=mode)
            assert open(path, "rb").read() != before

    def test_bad_mode_rejected(self, tmp_path):
        path = str(tmp_path / "doc.json")
        write_json_atomic(path, {"x": 1})
        with pytest.raises(InvalidParameterError, match="mode"):
            corrupt_json_file(path, mode="wavehands")

    def test_cache_entry_selection_skips_manifest(self, tmp_path):
        write_json_atomic(str(tmp_path / "aaa.json"), {"x": 1})
        write_json_atomic(str(tmp_path / "manifest-123.json"), {"cells": []})
        corrupted = corrupt_cache_entry(str(tmp_path), index=0, mode="garbage")
        assert corrupted.endswith("aaa.json")
        assert json.loads(open(tmp_path / "manifest-123.json").read())

    def test_out_of_range_entry_rejected(self, tmp_path):
        write_json_atomic(str(tmp_path / "aaa.json"), {"x": 1})
        with pytest.raises(InvalidParameterError, match="cannot corrupt"):
            corrupt_cache_entry(str(tmp_path), index=5)


class TestSweepEvents:
    def test_emit_counts_and_jsonl_mirror(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events = SweepEvents(path)
        events.emit("cache_hit", seed=1)
        events.emit("cache_hit", seed=2)
        events.emit("chunk_done", chunk=0, elapsed=0.5)
        assert events.counts() == {"cache_hit": 2, "chunk_done": 1}
        assert SweepEvents.load(path) == events.records

    def test_load_skips_truncated_final_line(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events = SweepEvents(path)
        events.emit("cache_hit")
        with open(path, "a") as handle:
            handle.write('{"event": "chunk_d')  # killed mid-write
        assert SweepEvents.load(path) == [{"event": "cache_hit"}]

    def test_in_memory_by_default(self):
        events = SweepEvents()
        events.emit("quarantine")
        assert events.path is None
        assert events.counts() == {"quarantine": 1}


class TestEngineMapChaos:
    """engine.map survives every injectable failure mode."""

    def _engine(self, **kwargs):
        kwargs.setdefault("retry_backoff", 0.01)
        return SweepEngine(**kwargs)

    def test_transient_failures_retried_inprocess(self, tmp_path):
        worker = FaultyWorker(
            _double, [FailOnCalls((0, 2))], counter_dir=str(tmp_path / "calls")
        )
        engine = self._engine(parallel=False, retries=2)
        assert engine.map(worker, [1, 2, 3]) == [2, 4, 6]
        assert engine.events.counts()["item_retry"] == 2

    def test_persistent_failure_quarantined_with_handler(self):
        worker = FaultyWorker(_double, [FailMatching("13")])
        engine = self._engine(parallel=False, retries=1)
        result = engine.map(
            worker, [12, 13, 14], on_item_error=lambda exc, item: ("failed", item)
        )
        assert result == [24, ("failed", 13), 28]
        assert engine.events.counts()["quarantine"] == 1

    def test_persistent_failure_raises_without_handler(self):
        worker = FaultyWorker(_double, [FailMatching("13")])
        engine = self._engine(parallel=False, retries=1)
        with pytest.raises(InjectedFault):
            engine.map(worker, [12, 13, 14])

    def test_pool_transient_failures_recover(self, tmp_path):
        worker = FaultyWorker(
            _double, [FailOnCalls((1,))], counter_dir=str(tmp_path / "calls")
        )
        engine = self._engine(parallel=True, max_workers=2, retries=3)
        items = list(range(6))
        assert engine.map(worker, items, chunk_size=1) == [2 * x for x in items]
        counts = engine.events.counts()
        assert counts.get("chunk_retry", 0) >= 1
        assert "quarantine" not in counts

    def test_pool_worker_crash_rebuilds_and_recovers(self, tmp_path):
        worker = FaultyWorker(
            _double, [CrashOnCalls((0,))], counter_dir=str(tmp_path / "calls")
        )
        engine = self._engine(parallel=True, max_workers=2, retries=3)
        items = list(range(4))
        assert engine.map(worker, items, chunk_size=1) == [2 * x for x in items]
        counts = engine.events.counts()
        assert counts.get("chunk_crash", 0) >= 1
        assert counts.get("pool_rebuild", 0) >= 1

    def test_pool_hung_chunk_times_out_and_recovers(self, tmp_path):
        worker = FaultyWorker(
            _double, [HangOnCalls((0,), duration=5.0)],
            counter_dir=str(tmp_path / "calls"),
        )
        engine = self._engine(parallel=True, max_workers=2, retries=3, timeout=1.0)
        start = time.perf_counter()
        assert engine.map(worker, [1, 2, 3], chunk_size=1) == [2, 4, 6]
        assert time.perf_counter() - start < 5.0  # did not wait the hang out
        counts = engine.events.counts()
        assert counts.get("chunk_timeout", 0) >= 1
        assert counts.get("pool_rebuild", 0) >= 1

    def test_transient_pickle_failure_degrades_then_pools(self, tmp_path):
        worker = TransientlyUnpicklable(_double, failures=1,
                                        state_dir=str(tmp_path / "pk"))
        engine = self._engine(parallel=True, max_workers=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert engine.map(worker, [1, 2, 3]) == [2, 4, 6]
        assert any("picklable" in str(w.message) for w in caught)
        assert engine.events.counts().get("fallback") == 1
        # Transient has passed: the next map pools without a new fallback.
        assert engine.map(worker, [4, 5]) == [8, 10]
        assert engine.events.counts().get("fallback") == 1

    def test_unpicklable_warns_once_per_engine(self):
        engine = self._engine(parallel=True, max_workers=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert engine.map(lambda x: x + 1, [1, 2]) == [2, 3]
            assert engine.map(lambda x: x + 1, [3, 4]) == [4, 5]
        assert sum("picklable" in str(w.message) for w in caught) == 1
        assert engine.events.counts()["fallback"] == 2  # logged every time

    def test_pool_unavailable_degrades_inprocess(self, monkeypatch):
        from repro.experiments import sweep as sweep_module

        def refuse(self, workers):
            raise sweep_module._PoolUnavailable("no pool for you")

        monkeypatch.setattr(SweepEngine, "_new_pool", refuse)
        engine = self._engine(parallel=True, max_workers=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert engine.map(_double, [1, 2, 3]) == [2, 4, 6]
        assert any("process pool unavailable" in str(w.message) for w in caught)
        assert engine.events.counts()["fallback"] == 1
