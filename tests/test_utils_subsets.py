"""Tests for repro.utils.subsets."""

from math import comb

import pytest

from repro.exceptions import InvalidParameterError
from repro.utils.subsets import (
    count_redundancy_pairs,
    iter_fixed_size_subsets,
    iter_redundancy_pairs,
    restrict_pairs_to_minimal,
    sample_fixed_size_subsets,
)


class TestFixedSizeSubsets:
    def test_counts_match_binomial(self):
        assert len(list(iter_fixed_size_subsets(range(6), 3))) == comb(6, 3)

    def test_lexicographic_order(self):
        subsets = list(iter_fixed_size_subsets([3, 1, 2], 2))
        assert subsets == [(1, 2), (1, 3), (2, 3)]

    def test_oversized_request_is_empty(self):
        assert list(iter_fixed_size_subsets(range(3), 5)) == []

    def test_size_zero_yields_empty_tuple(self):
        assert list(iter_fixed_size_subsets(range(3), 0)) == [()]

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            iter_fixed_size_subsets(range(3), -1)


class TestSampling:
    def test_small_population_is_exhaustive(self):
        sampled = sample_fixed_size_subsets(range(4), 2, count=100, seed=0)
        assert sorted(sampled) == sorted(iter_fixed_size_subsets(range(4), 2))

    def test_sampled_subsets_are_distinct_and_sized(self):
        sampled = sample_fixed_size_subsets(range(30), 5, count=50, seed=1)
        assert len(sampled) == 50
        assert len(set(sampled)) == 50
        assert all(len(s) == 5 for s in sampled)

    def test_reproducible(self):
        a = sample_fixed_size_subsets(range(30), 5, count=20, seed=2)
        b = sample_fixed_size_subsets(range(30), 5, count=20, seed=2)
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            sample_fixed_size_subsets(range(5), 2, count=-1)


class TestRedundancyPairs:
    def test_inner_is_proper_subset_of_outer(self):
        for outer, inner in iter_redundancy_pairs(6, 2):
            assert set(inner) < set(outer)
            assert len(outer) == 4
            assert len(inner) >= 2

    def test_count_matches_enumeration(self):
        for n, f in [(5, 1), (6, 2), (7, 3)]:
            assert len(list(iter_redundancy_pairs(n, f))) == count_redundancy_pairs(n, f)

    def test_f_zero_yields_nothing(self):
        assert list(iter_redundancy_pairs(5, 0)) == []

    def test_minimal_restriction(self):
        pairs = list(restrict_pairs_to_minimal(iter_redundancy_pairs(6, 2), 6, 2))
        assert pairs
        assert all(len(inner) == 2 for _, inner in pairs)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            list(iter_redundancy_pairs(0, 1))
        with pytest.raises(InvalidParameterError):
            list(iter_redundancy_pairs(5, -1))
