"""Unit tests for the service's queue, specs, and durable job store."""

import os

import pytest

from repro.exceptions import AdmissionRejectedError, InvalidParameterError
from repro.service import (
    JobQueue,
    JobRecord,
    JobSpec,
    JobStore,
    grid_from_params,
    validate_job_spec,
)


def _record(store, kind="run", params=None, client="anonymous", priority=0):
    spec = validate_job_spec({
        "kind": kind, "params": params or {}, "client": client,
        "priority": priority,
    })
    return store.create(spec)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown job kind"):
            validate_job_spec({"kind": "mystery"})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(InvalidParameterError, match="bogus"):
            validate_job_spec({"kind": "sweep", "params": {"bogus": 1}})

    def test_unregistered_filter_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown filter"):
            validate_job_spec({"kind": "sweep",
                               "params": {"filters": ["nope"]}})

    def test_unregistered_attack_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown attack"):
            validate_job_spec({"kind": "run", "params": {"attack": "nope"}})

    def test_ill_typed_value_rejected(self):
        with pytest.raises(InvalidParameterError, match="num_seeds"):
            validate_job_spec({"kind": "sweep",
                               "params": {"num_seeds": "ten"}})
        with pytest.raises(InvalidParameterError, match="num_seeds"):
            validate_job_spec({"kind": "sweep", "params": {"num_seeds": 0}})

    def test_bench_requires_registered_name(self):
        with pytest.raises(InvalidParameterError):
            validate_job_spec({"kind": "bench",
                               "params": {"name": "no-such-bench"}})

    def test_valid_sweep_spec_round_trips_to_grid(self):
        spec = validate_job_spec({
            "kind": "sweep",
            "params": {"filters": ["cge"], "attacks": ["zero"],
                       "fault_counts": [1], "num_seeds": 2,
                       "iterations": 10, "telemetry": True},
        })
        grid = grid_from_params(spec.params)
        assert grid.filters == ("cge",)
        assert grid.attacks == ("zero",)
        assert grid.num_seeds == 2

    def test_spec_hash_stable_and_order_independent(self):
        a = JobSpec("run", {"n": 6, "seed": 1})
        b = JobSpec("run", {"seed": 1, "n": 6})
        assert a.spec_hash() == b.spec_hash()
        assert a.spec_hash() != JobSpec("run", {"n": 6, "seed": 2}).spec_hash()


class TestAdmissionControl:
    def test_depth_bound_rejects_with_structured_error(self, tmp_path):
        store = JobStore(str(tmp_path))
        queue = JobQueue(max_depth=2, per_client=10)
        queue.submit(_record(store))
        queue.submit(_record(store))
        with pytest.raises(AdmissionRejectedError) as info:
            queue.submit(_record(store))
        assert info.value.reason == "queue-full"
        assert info.value.limit == 2
        assert info.value.queue_depth == 2
        assert info.value.status == 429

    def test_per_client_cap_counts_running_jobs(self, tmp_path):
        store = JobStore(str(tmp_path))
        queue = JobQueue(max_depth=10, per_client=2)
        queue.submit(_record(store, client="alice"))
        queue.submit(_record(store, client="alice"))
        running = queue.pop()  # still charged to alice while running
        with pytest.raises(AdmissionRejectedError) as info:
            queue.submit(_record(store, client="alice"))
        assert info.value.reason == "client-cap"
        # other clients are unaffected
        queue.submit(_record(store, client="bob"))
        # finishing releases the charge
        queue.finish(running)
        queue.submit(_record(store, client="alice"))

    def test_priority_order_then_submission_order(self, tmp_path):
        store = JobStore(str(tmp_path))
        queue = JobQueue()
        low = _record(store, priority=0)
        high = _record(store, priority=5)
        low2 = _record(store, priority=0)
        for record in (low, high, low2):
            queue.submit(record)
        assert queue.pop().job_id == high.job_id
        assert queue.pop().job_id == low.job_id
        assert queue.pop().job_id == low2.job_id
        assert queue.pop() is None

    def test_cancel_removes_queued_job(self, tmp_path):
        store = JobStore(str(tmp_path))
        queue = JobQueue()
        record = _record(store, client="alice")
        queue.submit(record)
        assert queue.cancel(record.job_id) is record
        assert queue.pop() is None
        assert queue.active_for("alice") == 0
        assert queue.cancel(record.job_id) is None

    def test_requeue_bypasses_admission(self, tmp_path):
        store = JobStore(str(tmp_path))
        queue = JobQueue(max_depth=1)
        queue.submit(_record(store))
        # recovery path: already-admitted work re-enters past the bound
        queue.requeue(_record(store))
        assert queue.depth == 2


class TestJobStore:
    def test_manifest_round_trip(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = _record(store, kind="sweep",
                         params={"filters": ["cge"], "num_seeds": 2},
                         client="alice", priority=3)
        record.state = "running"
        record.attempts = 1
        store.save(record)
        loaded = store.load(record.job_id)
        assert loaded.to_payload() == record.to_payload()
        assert loaded.spec.client == "alice"
        assert loaded.spec.priority == 3

    def test_load_all_in_submission_order_skips_corrupt(self, tmp_path):
        store = JobStore(str(tmp_path))
        first = _record(store)
        second = _record(store)
        third = _record(store)
        with open(store.manifest_path(second.job_id), "w") as handle:
            handle.write("{torn")
        loaded = store.load_all()
        assert [r.job_id for r in loaded] == [first.job_id, third.job_id]

    def test_sequence_numbers_survive_restart(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = _record(store)
        assert record.seq == 1
        reopened = JobStore(str(tmp_path))
        assert reopened.next_seq() == 2

    def test_result_round_trip(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = _record(store)
        store.write_result(record.job_id, {"kind": "run", "final_error": 0.5})
        assert store.load_result(record.job_id)["final_error"] == 0.5
        assert os.path.exists(store.result_path(record.job_id))
