"""Tests for the signSGD majority-vote filter."""

import numpy as np
import pytest

from repro.aggregators.signsgd import SignSGDMajorityVote
from repro.exceptions import InvalidParameterError


class TestMajorityVote:
    def test_unanimous_vote(self):
        gradients = np.array([[1.0, -2.0], [3.0, -0.5], [0.2, -9.0]])
        out = SignSGDMajorityVote()(gradients)
        assert np.allclose(out, [1.0, -1.0])

    def test_majority_beats_minority(self):
        gradients = np.array([[1.0], [1.0], [-100.0]])
        assert SignSGDMajorityVote(f=1)(gradients)[0] == 1.0

    def test_tie_gives_zero(self):
        gradients = np.array([[1.0], [-1.0]])
        assert SignSGDMajorityVote()(gradients)[0] == 0.0

    def test_scale(self):
        gradients = np.ones((3, 2))
        out = SignSGDMajorityVote(scale=0.25)(gradients)
        assert np.allclose(out, 0.25)

    def test_magnitude_independent_of_gradients(self):
        small = 1e-9 * np.ones((3, 2))
        large = 1e9 * np.ones((3, 2))
        vote = SignSGDMajorityVote()
        assert np.allclose(vote(small), vote(large))

    def test_byzantine_minority_cannot_flip_vote(self):
        honest = np.ones((5, 3))
        forged = -1e12 * np.ones((2, 3))
        out = SignSGDMajorityVote(f=2)(np.vstack([honest, forged]))
        assert np.allclose(out, 1.0)

    def test_invalid_scale(self):
        with pytest.raises(InvalidParameterError):
            SignSGDMajorityVote(scale=0.0)


class TestConvergenceCharacter:
    def test_converges_to_step_scale_neighbourhood(self):
        """No magnitude info: the iterate oscillates inside an O(η) band."""
        from repro.attacks.simple import GradientReverse
        from repro.optimization.step_sizes import DiminishingStepSize
        from repro.problems.linear_regression import make_redundant_regression
        from repro.system.runner import run_dgd

        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=0)
        trace = run_dgd(
            instance.costs, GradientReverse(), faulty_ids=[0],
            gradient_filter="signsgd", iterations=2000,
            step_sizes=DiminishingStepSize(c=1.0, t0=2.0), seed=0,
        )
        x_H = instance.honest_minimizer(range(1, 6))
        assert np.linalg.norm(trace.final_estimate - x_H) < 0.1
