"""Tests for the regression problem generator (2f-redundancy by design)."""

import numpy as np
import pytest

from repro.core.redundancy import check_2f_redundancy, minimal_subset_rank_condition
from repro.exceptions import InvalidParameterError
from repro.problems.linear_regression import (
    design_rows,
    make_redundant_regression,
    paper_instance,
)


class TestDesignRows:
    def test_rows_unit_norm(self):
        A = design_rows(8, 3)
        assert np.allclose(np.linalg.norm(A, axis=1), 1.0)

    @pytest.mark.parametrize("n,d", [(6, 2), (8, 3), (10, 4)])
    def test_every_d_rows_independent(self, n, d):
        from itertools import combinations

        A = design_rows(n, d)
        for subset in combinations(range(n), d):
            assert np.linalg.matrix_rank(A[list(subset)]) == d

    def test_invalid_sizes(self):
        with pytest.raises(InvalidParameterError):
            design_rows(0, 2)
        with pytest.raises(InvalidParameterError):
            design_rows(2, 0)


class TestGenerator:
    def test_noiseless_instance_is_exactly_redundant(self):
        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=0)
        assert check_2f_redundancy(instance.costs, f=1)
        assert np.allclose(instance.b, instance.A @ instance.x_star)

    def test_rank_property_holds_for_larger_f(self):
        instance = make_redundant_regression(n=10, d=2, f=3, noise_std=0.0)
        assert minimal_subset_rank_condition(instance.A, f=3)

    def test_honest_minimizer_is_x_star_when_noiseless(self):
        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0)
        for honest in ([1, 2, 3, 4, 5], [0, 2, 3, 4, 5], [0, 1, 2, 3]):
            assert np.allclose(instance.honest_minimizer(honest), instance.x_star)

    def test_noise_is_reproducible(self):
        a = make_redundant_regression(6, 2, 1, noise_std=0.1, seed=5)
        b = make_redundant_regression(6, 2, 1, noise_std=0.1, seed=5)
        assert np.array_equal(a.b, b.b)

    def test_costs_match_rows(self):
        instance = make_redundant_regression(6, 2, 1, noise_std=0.0)
        x = np.array([0.3, -0.4])
        for i, cost in enumerate(instance.costs):
            expected = (instance.b[i] - instance.A[i] @ x) ** 2
            assert cost.value(x) == pytest.approx(float(expected))

    def test_custom_x_star(self):
        target = np.array([2.0, -3.0])
        instance = make_redundant_regression(6, 2, 1, x_star=target, noise_std=0.0)
        assert np.allclose(instance.honest_minimizer(range(6)), target)

    def test_infeasible_configuration_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_redundant_regression(n=5, d=2, f=2)  # n - 2f = 1 < d
        with pytest.raises(InvalidParameterError):
            make_redundant_regression(n=6, d=2, f=1, noise_std=-0.1)

    def test_rank_deficient_honest_set_rejected(self):
        instance = make_redundant_regression(6, 2, 1)
        with pytest.raises(InvalidParameterError):
            instance.honest_minimizer([2])  # single row cannot pin down d=2

    def test_properties(self):
        instance = make_redundant_regression(7, 3, 1)
        assert instance.n == 7
        assert instance.dimension == 3
        assert instance.honest_argmin_set(range(7)).dimension == 3


class TestPaperInstance:
    def test_matches_paper_configuration(self):
        instance = paper_instance()
        assert instance.n == 6
        assert instance.dimension == 2
        assert np.allclose(instance.x_star, [1.0, 1.0])
        assert instance.noise_std == pytest.approx(0.02)

    def test_redundancy_margin_small_but_positive(self):
        from repro.core.redundancy import measure_redundancy_margin

        margin = measure_redundancy_margin(paper_instance().costs, 1).margin
        assert 0.0 < margin < 0.1
