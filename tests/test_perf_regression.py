"""Deterministic regression detection and the baseline store."""

import copy

import pytest

from repro.exceptions import InvalidParameterError
from repro.observability.perf import (
    BaselineStore,
    BenchComparison,
    BenchResult,
    RegressionPolicy,
    compare_payloads,
    format_comparisons,
    worst_verdict,
)


def _payload(name="unit_cmp", best=1.0, repeats=3, metrics=None,
             workload=None):
    per_repeat = [best + 0.1 * i for i in range(repeats)]
    return {
        "schema": "repro.bench/v1",
        "name": name,
        "workload": dict(workload or {"n": 6}),
        "repeats": repeats,
        "timings": {
            "seconds_per_repeat": per_repeat,
            "best_seconds": min(per_repeat),
            "mean_seconds": sum(per_repeat) / repeats,
        },
        "phases": {},
        "memory": {"peak_bytes": 1024, "tracked": True},
        "metrics": dict(metrics or {}),
        "provenance": {
            "git_sha": "0" * 40,
            "timestamp": "2026-08-06T00:00:00+00:00",
            "host": "unit",
            "platform": "unit",
            "python": "3",
            "numpy": "2",
            "repro": "0",
        },
    }


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------


def test_policy_validates_thresholds():
    with pytest.raises(InvalidParameterError):
        RegressionPolicy(rel_tol=-0.1)
    with pytest.raises(InvalidParameterError):
        RegressionPolicy(improvement_ratio=0.0)
    with pytest.raises(InvalidParameterError):
        RegressionPolicy(improvement_ratio=1.5)


# ----------------------------------------------------------------------
# Comparator — deterministic by construction (pure function of payloads)
# ----------------------------------------------------------------------


def test_identical_payloads_pass():
    payload = _payload(metrics={"error": 0.25})
    comparison = compare_payloads(payload, copy.deepcopy(payload))
    assert comparison.verdict == "pass"
    assert not comparison.failed
    assert comparison.ratio == pytest.approx(1.0)


def test_clear_slowdown_is_a_regression():
    comparison = compare_payloads(_payload(best=2.0), _payload(best=1.0))
    assert comparison.verdict == "regression"
    assert comparison.failed
    assert comparison.ratio == pytest.approx(2.0)
    assert any("regressed" in note for note in comparison.notes)


def test_clear_speedup_is_improved():
    comparison = compare_payloads(_payload(best=0.5), _payload(best=1.0))
    assert comparison.verdict == "improved"
    assert not comparison.failed


def test_comparator_is_deterministic():
    current, baseline = _payload(best=2.0), _payload(best=1.0)
    verdicts = {
        compare_payloads(copy.deepcopy(current),
                         copy.deepcopy(baseline)).verdict
        for _ in range(5)
    }
    assert verdicts == {"regression"}


def test_noise_floor_suppresses_timing_comparison():
    # A 10x slowdown entirely under the noise floor is timer granularity.
    comparison = compare_payloads(_payload(best=0.0020),
                                  _payload(best=0.0002))
    assert comparison.verdict == "pass"
    assert any("noise" in note for note in comparison.notes)
    # The identical ratio above the floor is a regression.
    strict = compare_payloads(_payload(best=0.0020), _payload(best=0.0002),
                              RegressionPolicy(noise_floor=0.0))
    assert strict.verdict == "regression"


def test_missing_baseline_is_new():
    comparison = compare_payloads(_payload(), None)
    assert comparison.verdict == "new"
    assert comparison.baseline_seconds is None


def test_name_mismatch_is_an_error():
    with pytest.raises(InvalidParameterError, match="against baseline"):
        compare_payloads(_payload(name="unit_a"), _payload(name="unit_b"))


def test_workload_change_is_noted():
    comparison = compare_payloads(_payload(workload={"n": 6}),
                                  _payload(workload={"n": 12}))
    assert any("workload parameters changed" in note
               for note in comparison.notes)


def test_metric_drift_beyond_tolerance_fails():
    comparison = compare_payloads(
        _payload(metrics={"error": 0.30}),
        _payload(metrics={"error": 0.25}),
    )
    assert comparison.verdict == "regression"
    assert "error" in comparison.metric_failures


def test_metric_within_tolerance_passes():
    comparison = compare_payloads(
        _payload(metrics={"error": 0.2500001}),
        _payload(metrics={"error": 0.25}),
    )
    assert comparison.verdict == "pass"
    assert not comparison.metric_failures


def test_disappearing_metric_fails():
    comparison = compare_payloads(
        _payload(metrics={}),
        _payload(metrics={"error": 0.25}),
    )
    assert comparison.verdict == "regression"
    assert "disappeared" in comparison.metric_failures["error"]


def test_new_candidate_metrics_are_not_gated():
    comparison = compare_payloads(
        _payload(metrics={"error": 0.25, "extra": 1.0}),
        _payload(metrics={"error": 0.25}),
    )
    assert comparison.verdict == "pass"


# ----------------------------------------------------------------------
# Batch roll-up and rendering
# ----------------------------------------------------------------------


def test_worst_verdict_ordering():
    assert worst_verdict([]) == "pass"
    batch = [
        BenchComparison(name="a", verdict="pass"),
        BenchComparison(name="b", verdict="improved"),
        BenchComparison(name="c", verdict="new"),
    ]
    assert worst_verdict(batch) == "new"
    batch.append(BenchComparison(name="d", verdict="regression"))
    assert worst_verdict(batch) == "regression"


def test_format_comparisons_renders_every_row():
    text = format_comparisons([
        compare_payloads(_payload(best=2.0), _payload(best=1.0)),
        compare_payloads(_payload(name="unit_ok"), None),
    ])
    assert "unit_cmp" in text and "unit_ok" in text
    assert "regression" in text and "new" in text


def test_comparison_payload_round_trip():
    comparison = compare_payloads(_payload(best=2.0), _payload(best=1.0))
    payload = comparison.to_payload()
    assert payload["verdict"] == "regression"
    assert payload["ratio"] == pytest.approx(2.0)


# ----------------------------------------------------------------------
# BaselineStore
# ----------------------------------------------------------------------


def test_baseline_store_round_trip(tmp_path):
    store = BaselineStore(str(tmp_path))
    assert store.names() == []
    assert store.load("unit_cmp") is None
    result = BenchResult.from_payload(_payload(metrics={"error": 0.25}))
    path = store.store(result)
    assert path == store.path_for("unit_cmp")
    assert store.names() == ["unit_cmp"]
    assert store.load("unit_cmp") == result.to_payload()
