"""Tests for Krum, Multi-Krum, Bulyan, median-of-means, centered clipping."""

import numpy as np
import pytest

from repro.aggregators.bulyan import Bulyan
from repro.aggregators.clipping import CenteredClipping
from repro.aggregators.krum import Krum, MultiKrum
from repro.aggregators.mom import GeometricMedianOfMeans, MedianOfMeans
from repro.exceptions import InvalidParameterError


class TestKrum:
    def test_selects_a_received_gradient(self):
        rng = np.random.default_rng(0)
        gradients = rng.normal(size=(6, 3))
        out = Krum(f=1)(gradients)
        assert any(np.allclose(out, g) for g in gradients)

    def test_far_outlier_never_selected(self):
        cluster = np.random.default_rng(1).normal(scale=0.1, size=(5, 2))
        gradients = np.vstack([cluster, [[1e6, 0.0]]])
        out = Krum(f=1)(gradients)
        assert np.linalg.norm(out) < 10.0

    def test_requires_f_plus_three(self):
        with pytest.raises(InvalidParameterError):
            Krum(f=2)(np.ones((4, 2)))


class TestMultiKrum:
    def test_averages_m_best(self):
        cluster = np.zeros((5, 2))
        gradients = np.vstack([cluster, [[100.0, 100.0]]])
        out = MultiKrum(f=1, m=3)(gradients)
        assert np.allclose(out, 0.0)

    def test_default_m_is_n_minus_f(self):
        rng = np.random.default_rng(2)
        gradients = rng.normal(size=(6, 2))
        explicit = MultiKrum(f=1, m=5)(gradients)
        default = MultiKrum(f=1)(gradients)
        assert np.allclose(explicit, default)

    def test_invalid_m(self):
        with pytest.raises(InvalidParameterError):
            MultiKrum(f=1, m=0)


class TestBulyan:
    def test_requires_4f_plus_3(self):
        with pytest.raises(InvalidParameterError):
            Bulyan(f=1)(np.ones((6, 2)))

    def test_output_in_input_coordinate_range(self):
        rng = np.random.default_rng(3)
        gradients = rng.normal(size=(8, 3))
        out = Bulyan(f=1)(gradients)
        assert np.all(out >= gradients.min(axis=0) - 1e-9)
        assert np.all(out <= gradients.max(axis=0) + 1e-9)

    def test_resists_outlier(self):
        honest = np.random.default_rng(4).normal(scale=0.1, size=(7, 2))
        gradients = np.vstack([honest, [[1e5, -1e5]]])
        out = Bulyan(f=1)(gradients)
        assert np.linalg.norm(out) < 5.0


class TestMedianOfMeans:
    def test_matches_median_of_group_means(self):
        gradients = np.arange(12, dtype=float).reshape(6, 2)
        out = MedianOfMeans(f=1, num_groups=3)(gradients)
        group_means = gradients.reshape(3, 2, 2).mean(axis=1)
        assert np.allclose(out, np.median(group_means, axis=0))

    def test_outlier_confined_to_its_group(self):
        honest = np.zeros((8, 2))
        gradients = np.vstack([[[1e6, 1e6]], honest])
        out = MedianOfMeans(f=1, num_groups=3)(gradients)
        assert np.allclose(out, 0.0)

    def test_too_few_groups_rejected(self):
        with pytest.raises(InvalidParameterError):
            MedianOfMeans(f=2, num_groups=3)(np.ones((8, 2)))

    def test_gmom_variant(self):
        rng = np.random.default_rng(5)
        gradients = rng.normal(size=(9, 2))
        out = GeometricMedianOfMeans(f=1, num_groups=3)(gradients)
        assert out.shape == (2,)
        assert np.all(np.isfinite(out))


class TestCenteredClipping:
    def test_bounded_drift_from_reference(self):
        honest = np.zeros((5, 2))
        gradients = np.vstack([honest, [[1e6, 0.0]]])
        clip = CenteredClipping(radius=1.0)
        out = clip(gradients)
        # One clipped deviation of norm <= 1 averaged over 6 inputs, iterated.
        assert np.linalg.norm(out) <= 1.0

    def test_stateful_reference_carries_over(self):
        clip = CenteredClipping(radius=10.0, inner_iterations=1)
        first = clip(np.ones((4, 2)))
        assert np.allclose(first, 1.0, atol=1e-9)
        # Second round: reference starts from previous output.
        second = clip(3.0 * np.ones((4, 2)))
        assert np.all(second > 1.0)

    def test_reset_clears_state(self):
        clip = CenteredClipping(radius=0.5, inner_iterations=1)
        clip(np.ones((3, 2)))
        clip.reset()
        out = clip(5.0 * np.ones((3, 2)))
        assert np.allclose(out, 5.0, atol=1e-9)  # median re-init, no drift cap hit

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            CenteredClipping(radius=0.0)
        with pytest.raises(InvalidParameterError):
            CenteredClipping(inner_iterations=0)
