"""Contracts on the public API surface.

These tests are the package's compatibility net: every documented export
resolves, registries and `__all__` agree, and the lazily-resolved
`repro.core` exports behave like ordinary attributes.
"""

import importlib

import pytest

import repro


class TestTopLevelSurface:
    def test_every_dunder_all_name_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_registries_are_importable_classes(self):
        for name in repro.available_filters():
            instance = repro.make_filter(name, f=1)
            assert instance.name == name

    def test_subpackages_import_cleanly(self):
        for module in (
            "repro.core", "repro.optimization", "repro.aggregators",
            "repro.attacks", "repro.system", "repro.problems",
            "repro.analysis", "repro.experiments", "repro.utils", "repro.cli",
        ):
            importlib.import_module(module)


class TestLazyCoreExports:
    def test_getattr_resolves_and_caches(self):
        import repro.core as core

        first = core.hausdorff_distance
        second = core.hausdorff_distance
        assert first is second

    def test_unknown_attribute_raises(self):
        import repro.core as core

        with pytest.raises(AttributeError, match="no attribute"):
            core.not_a_real_symbol

    def test_dir_lists_exports(self):
        import repro.core as core

        listing = dir(core)
        assert "check_2f_redundancy" in listing
        assert "SubsetEnumerationAlgorithm" in listing


class TestDocstrings:
    def test_every_public_callable_is_documented(self):
        undocumented = []
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert undocumented == []

    def test_experiment_runners_documented(self):
        from repro import experiments

        for name in experiments.__all__:
            runner = getattr(experiments, name)
            assert (runner.__doc__ or "").strip(), name


class TestCliExperimentMapMatchesDesign:
    def test_all_experiment_modules_registered(self):
        from repro.cli import EXPERIMENTS

        expected = {f"E{k}" for k in range(1, 18)} | {f"A{k}" for k in range(1, 5)}
        assert set(EXPERIMENTS) == expected
