"""Array-backend seam: registry, equivalence contracts, precision, tiling.

Two equivalence classes, mirroring ``repro.system.backends``:

- the default numpy backend keeps the engine's **bit-identity** contract
  (``np.array_equal`` against the sequential runner), including under
  tiling;
- optional backends (torch, numba) and the float32 precision mode are held
  to a **tolerance** contract (``np.allclose`` against the numpy path) plus
  determinism (two identical invocations agree exactly).

Optional-backend tests skip *visibly* when the extra is not installed —
and fail, not skip, when ``REPRO_REQUIRE_BACKEND=<name>`` is set, which is
how the CI extras job guarantees the suite actually ran against the
dependency it just installed.
"""

import os

import numpy as np
import pytest

from repro.aggregators import kernels
from repro.aggregators.cge import ComparativeGradientElimination
from repro.aggregators.clipping import CenteredClipping
from repro.aggregators.mean import Average, TrimmedSum
from repro.aggregators.median import CoordinateWiseMedian, GeometricMedian
from repro.aggregators.trimmed_mean import CoordinateWiseTrimmedMean
from repro.attacks.registry import make_attack
from repro.exceptions import BackendUnavailableError, InvalidParameterError
from repro.experiments.sweep import SweepEngine, _cell_cache_payload, _config_hash
from repro.problems.linear_regression import make_redundant_regression
from repro.system.backends import (
    ArrayBackend,
    NumpyBackend,
    available_backends,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.system.batch import run_dgd_batch
from repro.system.runner import DGDConfig, run_dgd

SEEDS = [5, 19, 71]


@pytest.fixture(scope="module")
def instance():
    return make_redundant_regression(n=8, d=3, f=1, noise_std=0.02, seed=11)


@pytest.fixture(scope="module")
def config():
    return DGDConfig(iterations=40, gradient_filter="cge", faulty_ids=(0,), f=1)


def _optional_backend(name):
    """Resolve an optional backend, or skip (fail under REPRO_REQUIRE_BACKEND)."""
    try:
        return resolve_backend(name)
    except BackendUnavailableError as exc:
        if os.environ.get("REPRO_REQUIRE_BACKEND") == name:
            pytest.fail(
                f"REPRO_REQUIRE_BACKEND={name} is set but the backend did not "
                f"resolve: {exc}"
            )
        pytest.skip(f"optional backend {name!r} not installed: {exc}")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtin_names_registered(self):
        assert {"numpy", "torch", "numba"} <= set(backend_names())

    def test_numpy_always_available(self):
        availability = available_backends()
        assert availability["numpy"] is True
        assert set(availability) == set(backend_names())

    def test_resolve_caches_singleton(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")
        assert isinstance(resolve_backend("numpy"), NumpyBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown array backend"):
            resolve_backend("cuda-maybe")

    def test_instance_passthrough(self):
        backend = NumpyBackend()
        assert resolve_backend(backend) is backend

    def test_custom_registration(self):
        class Custom(NumpyBackend):
            name = "custom-test"

        register_backend("custom-test", Custom)
        try:
            assert isinstance(resolve_backend("custom-test"), Custom)
            assert available_backends()["custom-test"] is True
        finally:
            from repro.system.backends.base import _INSTANCES, _LOADERS

            _LOADERS.pop("custom-test", None)
            _INSTANCES.pop("custom-test", None)

    def test_unavailable_error_is_import_error(self):
        # Callers guarding with `except ImportError` keep working.
        assert issubclass(BackendUnavailableError, ImportError)


# ---------------------------------------------------------------------------
# kernel_spec coverage
# ---------------------------------------------------------------------------


class TestKernelSpec:
    def test_portable_filters_expose_specs(self):
        assert ComparativeGradientElimination(f=2).kernel_spec() == {
            "kind": "cge", "f": 2, "mode": "sum",
        }
        assert ComparativeGradientElimination(f=1, mode="mean").kernel_spec() == {
            "kind": "cge", "f": 1, "mode": "mean",
        }
        assert CoordinateWiseTrimmedMean(f=3).kernel_spec() == {
            "kind": "cwtm", "f": 3,
        }
        assert CoordinateWiseMedian(f=1).kernel_spec() == {"kind": "median", "f": 1}
        assert Average().kernel_spec() == {"kind": "mean"}
        assert TrimmedSum().kernel_spec() == {"kind": "sum"}

    def test_non_portable_filters_return_none(self):
        assert GeometricMedian(f=1).kernel_spec() is None
        assert CenteredClipping(f=1).kernel_spec() is None

    def test_numpy_backend_supports_every_spec(self):
        backend = resolve_backend("numpy")
        for gradient_filter in (
            ComparativeGradientElimination(f=1),
            CoordinateWiseTrimmedMean(f=1),
            CoordinateWiseMedian(f=1),
            Average(),
            TrimmedSum(),
        ):
            assert backend.supports(gradient_filter.kernel_spec())
        assert not backend.supports(None)
        assert not backend.supports({"kind": "krum", "f": 1})


# ---------------------------------------------------------------------------
# Numpy backend: the bit-identity contract survives the seam
# ---------------------------------------------------------------------------


class TestNumpyBackend:
    def test_default_backend_bit_identical_to_sequential(self, instance, config):
        behavior = make_attack("sign-flip")
        batched = run_dgd_batch(
            instance.costs, behavior, config, seeds=SEEDS, backend="numpy"
        )
        for seed, trace in zip(SEEDS, batched):
            sequential = run_dgd(instance.costs, behavior, config, seed=seed)
            assert np.array_equal(sequential.estimates, trace.estimates)
            assert np.array_equal(sequential.directions, trace.directions)
        assert batched[0].extra["batch"]["backend"] == "numpy"
        assert batched[0].extra["batch"]["dtype"] == "float64"

    def test_explicit_instance_matches_name(self, instance, config):
        behavior = make_attack("zero")
        by_name = run_dgd_batch(instance.costs, behavior, config, seeds=SEEDS)
        by_instance = run_dgd_batch(
            instance.costs, behavior, config, seeds=SEEDS, backend=NumpyBackend()
        )
        for a, b in zip(by_name, by_instance):
            assert np.array_equal(a.estimates, b.estimates)

    @pytest.mark.parametrize("filter_name", ("cge", "cwtm", "median", "average"))
    def test_backend_aggregate_matches_filter(self, filter_name):
        # backend.aggregate(spec) must be byte-for-byte the filter's own
        # batched kernel — that is what makes routing through the seam safe.
        from repro.aggregators.registry import make_filter

        backend = resolve_backend("numpy")
        gradient_filter = make_filter(filter_name, f=2)
        tensor = np.random.default_rng(3).normal(size=(4, 9, 6))
        via_backend = backend.aggregate(tensor, gradient_filter.kernel_spec())
        via_filter = gradient_filter.aggregate_batch(tensor)
        assert np.array_equal(via_backend, via_filter)


# ---------------------------------------------------------------------------
# Tiling: invisible in the output, bounded in memory
# ---------------------------------------------------------------------------


class TestTiling:
    @pytest.mark.parametrize("tile_size", (1, 2, 16))
    def test_tiled_bit_identical_to_untiled(self, instance, config, tile_size):
        behavior = make_attack("gradient-reverse")
        whole = run_dgd_batch(instance.costs, behavior, config, seeds=SEEDS)
        tiled = run_dgd_batch(
            instance.costs, behavior, config, seeds=SEEDS, tile_size=tile_size
        )
        for a, b in zip(whole, tiled):
            assert np.array_equal(a.estimates, b.estimates)
            assert np.array_equal(a.directions, b.directions)

    def test_tiled_randomized_attack_bit_identical(self, instance, config):
        # Per-run adversary rng streams must land on the right tile slice.
        behavior = make_attack("alie")
        whole = run_dgd_batch(instance.costs, behavior, config, seeds=SEEDS)
        tiled = run_dgd_batch(
            instance.costs, behavior, config, seeds=SEEDS, tile_size=2
        )
        for a, b in zip(whole, tiled):
            assert np.array_equal(a.estimates, b.estimates)

    def test_tiled_telemetry_run_tags(self, instance, config):
        from repro.observability import MemorySink, Telemetry

        sink = MemorySink()
        run_dgd_batch(
            instance.costs,
            make_attack("zero"),
            config,
            seeds=SEEDS,
            tile_size=2,
            telemetry=Telemetry([sink]),
        )
        rounds = [r for r in sink.records if r.get("event") == "round"]
        # Every run index appears, with the tile offset applied.
        assert {r["run"] for r in rounds} == set(range(len(SEEDS)))

    def test_invalid_tile_size_rejected(self, instance, config):
        for bad in (0, -3):
            with pytest.raises(InvalidParameterError, match="tile_size"):
                run_dgd_batch(
                    instance.costs,
                    make_attack("zero"),
                    config,
                    seeds=SEEDS,
                    tile_size=bad,
                )


# ---------------------------------------------------------------------------
# float32 precision mode (tolerance contract)
# ---------------------------------------------------------------------------


class TestFloat32:
    def test_close_to_float64_and_deterministic(self, instance, config):
        behavior = make_attack("sign-flip")
        exact = run_dgd_batch(instance.costs, behavior, config, seeds=SEEDS)
        low = run_dgd_batch(
            instance.costs, behavior, config, seeds=SEEDS, dtype="float32"
        )
        again = run_dgd_batch(
            instance.costs, behavior, config, seeds=SEEDS, dtype="float32"
        )
        for a, b, c in zip(exact, low, again):
            assert b.estimates.dtype == np.float32
            assert np.allclose(a.estimates, b.estimates, rtol=1e-3, atol=1e-3)
            assert np.array_equal(b.estimates, c.estimates)
        assert low[0].extra["batch"]["dtype"] == "float32"

    def test_bad_dtype_rejected(self, instance, config):
        with pytest.raises(InvalidParameterError, match="dtype"):
            run_dgd_batch(
                instance.costs, make_attack("zero"), config, seeds=SEEDS,
                dtype="float16",
            )

    def test_fallback_configs_refuse_non_defaults(self, instance):
        # A stateful filter forces the sequential fallback, which has no
        # backend/dtype/tiling — silent degradation is an error instead.
        config = DGDConfig(iterations=10, gradient_filter="clipping", f=1)
        for kwargs in (
            {"dtype": "float32"},
            {"tile_size": 2},
        ):
            with pytest.raises(InvalidParameterError, match="fast path"):
                run_dgd_batch(instance.costs, None, config, seeds=[1], **kwargs)


# ---------------------------------------------------------------------------
# The partition-based CWTM kernel
# ---------------------------------------------------------------------------


class TestPartitionTrimmedMean:
    def test_matches_full_sort_reference(self):
        rng = np.random.default_rng(42)
        for trial in range(30):
            K = int(rng.integers(1, 5))
            n = int(rng.integers(3, 40))
            f = int(rng.integers(0, (n - 1) // 2 + 1))
            d = int(rng.integers(1, 12))
            tensor = rng.normal(size=(K, n, d))
            if trial % 3 == 0:  # engineered ties across the trim boundary
                tensor = np.round(tensor)
            if trial % 4 == 0:
                tensor = tensor.astype(np.float32)
            fast = kernels.partition_trimmed_mean(tensor, f)
            reference = kernels.sort_trimmed_mean(tensor, f)
            assert np.allclose(fast, reference, rtol=1e-6, atol=1e-6), (K, n, f, d)

    def test_scalar_path_is_singleton_batch(self):
        # CoordinateWiseTrimmedMean._aggregate == kernel on g[None] — the
        # construction that keeps scalar/batch bit-identity trivially true.
        rng = np.random.default_rng(7)
        gradient_filter = CoordinateWiseTrimmedMean(f=3)
        tensor = rng.normal(size=(6, 20, 5))
        batched = gradient_filter.aggregate_batch(tensor)
        for k in range(tensor.shape[0]):
            assert np.array_equal(batched[k], gradient_filter(tensor[k]))

    def test_lane_determinism_across_batch_sizes(self):
        # A lane's result must not depend on how many other lanes share the
        # call — the property the bit-identity argument rests on.
        rng = np.random.default_rng(99)
        tensor = rng.normal(size=(8, 64, 16))
        whole = kernels.partition_trimmed_mean(tensor, 8)
        for k in range(8):
            alone = kernels.partition_trimmed_mean(tensor[k][None], 8)[0]
            assert np.array_equal(whole[k], alone)

    def test_input_tensor_not_mutated(self):
        tensor = np.random.default_rng(1).normal(size=(2, 10, 3))
        snapshot = tensor.copy()
        kernels.partition_trimmed_mean(tensor, 2)
        assert np.array_equal(tensor, snapshot)


# ---------------------------------------------------------------------------
# Sweep-engine threading and cache-key namespacing
# ---------------------------------------------------------------------------


class TestSweepThreading:
    GRID_FIELDS = {"n": 6, "d": 2, "redundancy_f": 1, "noise_std": 0.0,
                   "instance_seed": 1, "iterations": 50, "x0": None}

    def test_default_payload_unchanged(self):
        # Defaults must not enter the payload: every pre-seam cache entry
        # and manifest stays valid.
        payload = _cell_cache_payload(self.GRID_FIELDS, "cge", "zero", 1, 7)
        assert "array_backend" not in payload and "dtype" not in payload
        explicit = _cell_cache_payload(
            self.GRID_FIELDS, "cge", "zero", 1, 7, "numpy", "float64"
        )
        assert _config_hash(payload) == _config_hash(explicit)

    def test_non_default_gets_own_namespace(self):
        default = _config_hash(
            _cell_cache_payload(self.GRID_FIELDS, "cge", "zero", 1, 7)
        )
        f32 = _config_hash(
            _cell_cache_payload(self.GRID_FIELDS, "cge", "zero", 1, 7,
                                "numpy", "float32")
        )
        torch_key = _config_hash(
            _cell_cache_payload(self.GRID_FIELDS, "cge", "zero", 1, 7,
                                "torch", "float64")
        )
        assert len({default, f32, torch_key}) == 3

    def test_sequential_engine_rejects_non_defaults(self):
        with pytest.raises(InvalidParameterError, match="batch engine only"):
            SweepEngine(parallel=False, backend="sequential", dtype="float32")

    def test_unknown_array_backend_fails_at_construction(self):
        with pytest.raises(InvalidParameterError, match="unknown array backend"):
            SweepEngine(parallel=False, array_backend="cuda-maybe")

    def test_float32_grid_runs_and_is_close(self, tmp_path):
        from repro.experiments.sweep import RegressionGrid

        grid = RegressionGrid(
            filters=("cge",), attacks=("zero",), fault_counts=(1,),
            num_seeds=2, iterations=40,
        )
        exact = SweepEngine(parallel=False).run_regression_grid(grid)
        low = SweepEngine(
            parallel=False, dtype="float32", cache_dir=str(tmp_path)
        ).run_regression_grid(grid)
        assert not any(cell.failed for cell in low)
        for a, b in zip(exact, low):
            assert abs(a.final_error - b.final_error) < 1e-3
        # Rerun is served from the float32 namespace of the cache.
        rerun = SweepEngine(
            parallel=False, dtype="float32", cache_dir=str(tmp_path)
        ).run_regression_grid(grid)
        assert all(cell.cached for cell in rerun)


# ---------------------------------------------------------------------------
# Optional backends (tolerance contract; visible skip / forced fail)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ("torch", "numba"))
class TestOptionalBackends:
    def test_contract_declared(self, name):
        backend = _optional_backend(name)
        assert isinstance(backend, ArrayBackend)
        assert backend.name == name
        assert backend.equivalence == "tolerance"

    def test_aggregate_close_to_numpy_kernels(self, name):
        backend = _optional_backend(name)
        rng = np.random.default_rng(17)
        tensor = rng.normal(size=(5, 12, 7))
        cases = [
            ({"kind": "cge", "f": 3, "mode": "sum"},
             kernels.cge_aggregate_batch(tensor, 3, "sum")),
            ({"kind": "cge", "f": 3, "mode": "mean"},
             kernels.cge_aggregate_batch(tensor, 3, "mean")),
            ({"kind": "cwtm", "f": 2}, kernels.partition_trimmed_mean(tensor, 2)),
            ({"kind": "cwtm", "f": 0}, kernels.partition_trimmed_mean(tensor, 0)),
            ({"kind": "median", "f": 2}, kernels.median_batch(tensor)),
            ({"kind": "mean"}, kernels.mean_batch(tensor)),
            ({"kind": "sum"}, kernels.sum_batch(tensor)),
        ]
        for spec, expected in cases:
            assert backend.supports(spec)
            got = backend.aggregate(tensor, spec)
            assert np.allclose(got, expected, rtol=1e-8, atol=1e-8), spec

    def test_cge_tie_break_matches_stable_order(self, name):
        # Tied norms must resolve by agent index, like the numpy kernel.
        backend = _optional_backend(name)
        matrix = np.array(
            [[3.0, 0.0], [1.0, 0.0], [-3.0, 0.0], [0.0, 3.0], [1.0, 0.0],
             [0.0, 1.0]]
        )
        tensor = np.stack([matrix, matrix[::-1].copy()])
        expected = kernels.cge_aggregate_batch(tensor, 2, "sum")
        got = backend.aggregate(tensor, {"kind": "cge", "f": 2, "mode": "sum"})
        assert np.allclose(got, expected)

    def test_even_n_median_semantics(self, name):
        backend = _optional_backend(name)
        tensor = np.random.default_rng(23).normal(size=(3, 10, 4))
        got = backend.aggregate(tensor, {"kind": "median", "f": 0})
        assert np.allclose(got, np.median(tensor, axis=1))

    def test_affine_map_close_to_numpy(self, name):
        backend = _optional_backend(name)
        rng = np.random.default_rng(5)
        P = rng.normal(size=(6, 4, 4))
        q = rng.normal(size=(6, 4))
        X = rng.normal(size=(3, 4))
        expected = (P[None] @ X[:, None, :, None])[..., 0] + q[None]
        got = backend.bind_affine(P, q)(X)
        assert np.allclose(got, expected, rtol=1e-8, atol=1e-8)

    def test_end_to_end_trace_close_and_deterministic(self, name, instance,
                                                      config):
        backend = _optional_backend(name)
        behavior = make_attack("sign-flip")
        exact = run_dgd_batch(instance.costs, behavior, config, seeds=SEEDS)
        alt = run_dgd_batch(
            instance.costs, behavior, config, seeds=SEEDS, backend=backend
        )
        again = run_dgd_batch(
            instance.costs, behavior, config, seeds=SEEDS, backend=backend
        )
        for a, b, c in zip(exact, alt, again):
            assert np.allclose(a.estimates, b.estimates, rtol=1e-6, atol=1e-8)
            assert np.array_equal(b.estimates, c.estimates)
        assert alt[0].extra["batch"]["backend"] == name
