"""Tests for the peer-to-peer filtered DGD."""

import numpy as np
import pytest

from repro.aggregators.cge import ComparativeGradientElimination
from repro.aggregators.mean import Average
from repro.attacks.simple import GradientReverse
from repro.exceptions import InfeasibleConfigurationError, InvalidParameterError
from repro.optimization.cost_functions import TranslatedQuadratic
from repro.optimization.step_sizes import suggest_diminishing
from repro.problems.linear_regression import make_redundant_regression
from repro.system.peer_to_peer import run_peer_to_peer_dgd
from repro.system.runner import run_dgd


class TestFaultFree:
    def test_converges_and_agrees(self):
        costs = [TranslatedQuadratic([1.0, 2.0]) for _ in range(4)]
        result = run_peer_to_peer_dgd(costs, Average(), iterations=150, seed=0)
        assert np.allclose(result.final_estimate, [1.0, 2.0], atol=1e-2)
        finals = list(result.per_agent_final.values())
        for final in finals[1:]:
            assert np.array_equal(final, finals[0])

    def test_estimate_trajectory_shape(self):
        costs = [TranslatedQuadratic([0.0]) for _ in range(4)]
        result = run_peer_to_peer_dgd(costs, Average(), iterations=10, seed=0)
        assert result.estimates.shape == (11, 1)


class TestByzantine:
    def test_matches_server_run_without_equivocation(self):
        instance = make_redundant_regression(n=4, d=2, f=1, noise_std=0.0, seed=0)
        schedule = suggest_diminishing(instance.costs, aggregation="sum")
        server = run_dgd(
            instance.costs, GradientReverse(),
            gradient_filter=ComparativeGradientElimination(f=1),
            faulty_ids=[0], iterations=60, step_sizes=schedule, seed=0,
        )
        peer = run_peer_to_peer_dgd(
            instance.costs, ComparativeGradientElimination(f=1),
            faulty_ids=[0], behavior=GradientReverse(), iterations=60,
            step_sizes=schedule, seed=0, equivocate=False,
        )
        assert np.allclose(server.final_estimate, peer.final_estimate, atol=1e-12)

    def test_equivocation_resolved_consistently(self):
        instance = make_redundant_regression(n=4, d=2, f=1, noise_std=0.0, seed=0)
        result = run_peer_to_peer_dgd(
            instance.costs, ComparativeGradientElimination(f=1),
            faulty_ids=[0], behavior=GradientReverse(), iterations=30,
            seed=0, equivocate=True,
        )
        # Agreement audit inside the runner passed; estimates are common.
        assert result.agreement_verified
        finals = list(result.per_agent_final.values())
        for final in finals[1:]:
            assert np.array_equal(final, finals[0])

    def test_broadcast_message_accounting(self):
        costs = [TranslatedQuadratic([0.0, 0.0]) for _ in range(4)]
        result = run_peer_to_peer_dgd(costs, Average(), iterations=5, seed=0)
        assert result.broadcast_messages > 0


class TestValidation:
    def test_fault_bound_enforced(self):
        costs = [TranslatedQuadratic([0.0]) for _ in range(3)]
        with pytest.raises(InfeasibleConfigurationError):
            run_peer_to_peer_dgd(costs, Average(), faulty_ids=[0],
                                 behavior=GradientReverse(), iterations=5)

    def test_faulty_without_behavior_rejected(self):
        costs = [TranslatedQuadratic([0.0]) for _ in range(4)]
        with pytest.raises(InvalidParameterError):
            run_peer_to_peer_dgd(costs, Average(), faulty_ids=[0], iterations=5)

    def test_non_positive_iterations_rejected(self):
        costs = [TranslatedQuadratic([0.0]) for _ in range(4)]
        with pytest.raises(InvalidParameterError):
            run_peer_to_peer_dgd(costs, Average(), iterations=0)

    def test_out_of_range_faulty_ids_rejected(self):
        # Regression: ids outside range(n) used to count toward f (tightening
        # the 3f < n bound) while never acting — silently skewing results.
        costs = [TranslatedQuadratic([0.0]) for _ in range(7)]
        with pytest.raises(InvalidParameterError, match="faulty_ids"):
            run_peer_to_peer_dgd(costs, Average(), faulty_ids=[99],
                                 behavior=GradientReverse(), iterations=5)
        with pytest.raises(InvalidParameterError, match="faulty_ids"):
            run_peer_to_peer_dgd(costs, Average(), faulty_ids=[-1],
                                 behavior=GradientReverse(), iterations=5)

    def test_server_runner_rejects_out_of_range_faulty_ids(self):
        costs = [TranslatedQuadratic([0.0]) for _ in range(7)]
        with pytest.raises(InvalidParameterError):
            run_dgd(costs, GradientReverse(), gradient_filter=Average(),
                    faulty_ids=[7], iterations=5)
        with pytest.raises(InvalidParameterError):
            run_dgd(costs, GradientReverse(), gradient_filter=Average(),
                    faulty_ids=[-2], iterations=5)
