"""Tests for the parallel sweep executor and its experiment-layer wiring."""

import functools
import json
import os
import warnings

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments import run_fault_sweep, run_robustness_matrix, summarize_over_seeds
from repro.experiments.sweep import (
    RegressionGrid,
    SweepEngine,
    derive_run_seeds,
    parallel_map,
    summarize_grid,
)
from repro.problems.linear_regression import make_redundant_regression
from repro.system.runner import run_dgd


def _square(x):
    return x * x


def _tiny_fault_sweep(seed):
    return run_fault_sweep(
        fault_counts=(0, 1), iterations=20, filters=("cge",), seed=seed
    )


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_run_seeds(7, 4) == derive_run_seeds(7, 4)

    def test_prefix_stable(self):
        # Growing a sweep must not invalidate already-computed cells.
        assert derive_run_seeds(7, 3) == derive_run_seeds(7, 6)[:3]

    def test_master_seed_matters(self):
        assert derive_run_seeds(7, 3) != derive_run_seeds(8, 3)


class TestParallelMap:
    def test_preserves_order(self):
        items = list(range(-20, 20))
        assert parallel_map(_square, items, parallel=True, max_workers=2) == [
            _square(x) for x in items
        ]

    def test_sequential_default(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_unpicklable_worker_falls_back_with_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = parallel_map(lambda x: x + 1, [1, 2], parallel=True)
        assert result == [2, 3]
        assert any("picklable" in str(w.message) for w in caught)

    def test_empty(self):
        assert parallel_map(_square, [], parallel=True) == []


class TestSweepEngine:
    def test_rejects_bad_backend(self):
        with pytest.raises(InvalidParameterError, match="backend"):
            SweepEngine(backend="gpu")

    def test_rejects_bad_worker_count(self):
        with pytest.raises(InvalidParameterError, match="max_workers"):
            SweepEngine(max_workers=0)

    def test_grid_matches_direct_run_dgd(self, tmp_path):
        grid = RegressionGrid(
            filters=("cge",), attacks=("gradient-reverse",), fault_counts=(1,),
            num_seeds=2, iterations=30,
        )
        engine = SweepEngine(parallel=False, cache_dir=str(tmp_path))
        cells = engine.run_regression_grid(grid)
        instance = make_redundant_regression(
            n=grid.n, d=grid.d, f=1, noise_std=grid.noise_std, seed=grid.instance_seed
        )
        from repro.attacks.registry import make_attack

        for cell in cells:
            trace = run_dgd(
                instance.costs,
                make_attack("gradient-reverse"),
                gradient_filter="cge",
                faulty_ids=(0,),
                f=1,
                iterations=grid.iterations,
                seed=cell.seed,
            )
            assert np.array_equal(cell.estimates, trace.estimates)

    def test_cache_round_trip(self, tmp_path):
        grid = RegressionGrid(
            filters=("cge", "average"), attacks=("zero",), num_seeds=3, iterations=25
        )
        engine = SweepEngine(parallel=False, cache_dir=str(tmp_path))
        first = engine.run_regression_grid(grid)
        assert not any(cell.cached for cell in first)
        entries = [e for e in os.listdir(tmp_path) if not e.startswith("manifest")]
        assert len(entries) == len(first)
        second = engine.run_regression_grid(grid)
        assert all(cell.cached for cell in second)
        for a, b in zip(first, second):
            assert a.final_error == b.final_error
            assert np.array_equal(a.estimates, b.estimates)

    def test_cache_recomputes_only_changed_cells(self, tmp_path):
        engine = SweepEngine(parallel=False, cache_dir=str(tmp_path))
        base = RegressionGrid(filters=("cge",), attacks=("zero",), num_seeds=2,
                              iterations=25)
        engine.run_regression_grid(base)
        files_before = set(os.listdir(tmp_path))
        grown = RegressionGrid(filters=("cge", "average"), attacks=("zero",),
                               num_seeds=2, iterations=25)
        cells = engine.run_regression_grid(grown)
        by_filter = {c.filter_name: c.cached for c in cells}
        assert by_filter["cge"] is True  # reused
        assert by_filter["average"] is False  # fresh
        assert files_before < set(os.listdir(tmp_path))

    def test_cache_entries_are_json(self, tmp_path):
        engine = SweepEngine(parallel=False, cache_dir=str(tmp_path))
        engine.run_regression_grid(
            RegressionGrid(filters=("cge",), attacks=("zero",), num_seeds=1,
                           iterations=10)
        )
        (entry,) = [e for e in os.listdir(tmp_path) if not e.startswith("manifest")]
        with open(os.path.join(tmp_path, entry)) as handle:
            document = json.load(handle)
        # Entries are checksum-wrapped: {"sha256": ..., "payload": ...}.
        assert document["sha256"]
        payload = document["payload"]
        assert "final_error" in payload and "estimates" in payload

    def test_infeasible_filter_reported_per_cell(self):
        engine = SweepEngine(parallel=False)
        cells = engine.run_regression_grid(
            RegressionGrid(filters=("bulyan",), attacks=("zero",), num_seeds=2,
                           iterations=10)
        )
        assert all(cell.failed for cell in cells)
        assert "Bulyan" in cells[0].error

    def test_parallel_equals_inprocess(self, tmp_path):
        grid = RegressionGrid(
            filters=("cge", "cwtm"), attacks=("gradient-reverse", "sign-flip"),
            num_seeds=2, iterations=25,
        )
        inproc = SweepEngine(parallel=False).run_regression_grid(grid)
        pooled = SweepEngine(parallel=True, max_workers=2).run_regression_grid(grid)
        for a, b in zip(inproc, pooled):
            assert (a.filter_name, a.attack_name, a.f, a.seed) == (
                b.filter_name, b.attack_name, b.f, b.seed
            )
            assert np.array_equal(a.estimates, b.estimates)

    def test_backend_parity(self):
        grid = RegressionGrid(filters=("cge",), attacks=("random",), num_seeds=2,
                              iterations=25)
        batch = SweepEngine(parallel=False, backend="batch").run_regression_grid(grid)
        sequential = SweepEngine(
            parallel=False, backend="sequential"
        ).run_regression_grid(grid)
        for a, b in zip(batch, sequential):
            assert np.array_equal(a.estimates, b.estimates)

    def test_summarize_grid(self):
        cells = SweepEngine(parallel=False).run_regression_grid(
            RegressionGrid(filters=("cge", "bulyan"), attacks=("zero",), num_seeds=2,
                           iterations=10)
        )
        summary = summarize_grid(cells)
        rows = {(row[1], row[2]): row for row in summary.rows}
        assert rows[("bulyan", "zero")][4] == "n/a"
        assert isinstance(rows[("cge", "zero")][4], float)


class TestExperimentWiring:
    def test_robustness_matrix_parallel_matches(self):
        kwargs = dict(filters=("cge", "average"), attacks=("zero",), iterations=20)
        assert (
            run_robustness_matrix(**kwargs).rows
            == run_robustness_matrix(
                **kwargs, parallel=True, backend="batch", max_workers=2
            ).rows
        )

    def test_backend_validated(self):
        with pytest.raises(InvalidParameterError, match="backend"):
            run_robustness_matrix(
                filters=("cge",), attacks=("zero",), iterations=5, backend="magic"
            )

    def test_multiseed_parallel_matches(self):
        sequential = summarize_over_seeds(_tiny_fault_sweep, [1, 2])
        pooled = summarize_over_seeds(
            _tiny_fault_sweep, [1, 2], parallel=True, max_workers=2
        )
        assert sequential.rows == pooled.rows

    def test_multiseed_partial_is_picklable(self):
        make = functools.partial(_tiny_fault_sweep)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            summarize_over_seeds(make, [1, 2], parallel=True, max_workers=2)
        assert not any("picklable" in str(w.message) for w in caught)


# ----------------------------------------------------------------------
# Property-based guarantees (hypothesis)
# ----------------------------------------------------------------------

from hypothesis import assume, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.experiments.sweep import _cell_cache_payload, _config_hash  # noqa: E402

#: Canonical instance fields as produced by SweepEngine._grid_fields.
BASE_FIELDS = {
    "n": 6,
    "d": 2,
    "redundancy_f": 1,
    "noise_std": 0.0,
    "instance_seed": 20200803,
    "iterations": 300,
    "x0": None,
}


def _key(fields=BASE_FIELDS, filter_name="cge", attack="zero", f=1, seed=0):
    return _config_hash(_cell_cache_payload(fields, filter_name, attack, f, seed))


class TestSeedDerivationProperties:
    """derive_run_seeds is prefix-stable for *every* (master, count) pair,
    not just the handful of examples tested above — growing any sweep must
    preserve every already-cached cell's seed."""

    @given(
        master=st.integers(min_value=0, max_value=2**32 - 1),
        a=st.integers(min_value=0, max_value=40),
        b=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_prefix_stability_universal(self, master, a, b):
        lo, hi = sorted((a, b))
        assert derive_run_seeds(master, hi)[:lo] == derive_run_seeds(master, lo)

    @given(
        masters=st.lists(
            st.integers(min_value=0, max_value=2**32 - 1),
            min_size=2, max_size=2, unique=True,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_distinct_masters_give_distinct_streams(self, masters):
        first, second = masters
        assert derive_run_seeds(first, 4) != derive_run_seeds(second, 4)

    @given(
        master=st.integers(min_value=0, max_value=2**32 - 1),
        count=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_seeds_within_a_stream_are_distinct(self, master, count):
        seeds = derive_run_seeds(master, count)
        assert len(set(seeds)) == len(seeds)


class TestCacheKeyProperties:
    """Cache-key hashing is injective over the cell configuration: any
    semantic change produces a new key (no stale hits), and no change —
    including dict insertion order — keeps the key (no spurious misses)."""

    @given(
        field=st.sampled_from(
            ["n", "d", "redundancy_f", "instance_seed", "iterations"]
        ),
        value=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_changing_any_instance_field_changes_key(self, field, value):
        assume(value != BASE_FIELDS[field])
        assert _key({**BASE_FIELDS, field: value}) != _key()

    @given(noise=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_changing_noise_std_changes_key(self, noise):
        assume(noise != 0.0)
        assert _key({**BASE_FIELDS, "noise_std": noise}) != _key()

    @given(
        filter_name=st.sampled_from(["cge", "cwtm", "median", "average"]),
        attack=st.sampled_from(
            ["zero", "random", "sign-flip", "gradient-reverse"]
        ),
        f=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_axis_coordinates_are_injective(self, filter_name, attack, f, seed):
        reference = _key()
        candidate = _key(
            filter_name=filter_name, attack=attack, f=f, seed=seed
        )
        is_same_cell = (filter_name, attack, f, seed) == ("cge", "zero", 1, 0)
        assert (candidate == reference) == is_same_cell

    @given(
        x0=st.one_of(
            st.none(),
            st.lists(
                st.floats(
                    min_value=-100, max_value=100,
                    allow_nan=False, allow_subnormal=False,
                ),
                min_size=1, max_size=4,
            ),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_start_point_distinguishes_keys(self, x0):
        assume(x0 != BASE_FIELDS["x0"])
        assert _key({**BASE_FIELDS, "x0": x0}) != _key()

    @given(order=st.permutations(sorted(BASE_FIELDS)))
    @settings(max_examples=40, deadline=None)
    def test_key_independent_of_field_insertion_order(self, order):
        shuffled = {name: BASE_FIELDS[name] for name in order}
        assert _key(shuffled) == _key()
