"""Trace analysis: hotspots, trends, anomaly flags, empty-stream guards."""

import json

import pytest

from repro.exceptions import InvalidParameterError
from repro.observability.exporters import (
    _assemble_summary,
    _percentile,
    summarize_records,
)
from repro.observability.perf import analyze_records, analyze_trace_path


def _span(name, seconds):
    return {"event": "span", "name": name, "seconds": seconds}


def _round(index, eliminated, byzantine, distance):
    return {
        "event": "round",
        "round": index,
        "eliminated": eliminated,
        "eliminated_byzantine": byzantine,
        "surviving_byzantine": 0,
        "distance_to_ref": distance,
    }


def _healthy_stream(rounds=40):
    records = [_span("run", rounds * 0.01)]
    for index in range(rounds):
        records.append(_span("round", 0.01))
        records.append(_span("filter", 0.004))
        records.append(_round(index, [0], 1, 1.0 / (index + 1)))
    return records


# ----------------------------------------------------------------------
# Healthy stream
# ----------------------------------------------------------------------


def test_healthy_stream_has_no_anomalies():
    report = analyze_records(_healthy_stream(), source="unit")
    assert report.source == "unit"
    assert report.rounds == 40
    assert report.anomalies == []
    assert report.rounds_per_sec == pytest.approx(100.0)
    # Hotspots are sorted by total descending with share attribution.
    assert [h["span"] for h in report.hotspots[:2]] == ["run", "round"]
    run = report.hotspots[0]
    assert run["share"] == pytest.approx(1.0)
    filt = next(h for h in report.hotspots if h["span"] == "filter")
    assert filt["share"] == pytest.approx(0.4)
    assert report.elimination["precision"] == 1.0


def test_rate_windows_cover_every_round():
    report = analyze_records(_healthy_stream(rounds=40), windows=4)
    assert len(report.round_rate_windows) == 4
    assert sum(w["rounds"] for w in report.round_rate_windows) == 40
    for window in report.round_rate_windows:
        assert window["rounds_per_sec"] == pytest.approx(100.0)


def test_report_payload_and_render():
    report = analyze_records(_healthy_stream(), source="unit")
    payload = report.to_payload()
    assert payload["rounds"] == 40
    json.dumps(payload)  # JSON-clean
    text = report.render()
    assert "hotspots" in text
    assert "anomalies: none" in text


# ----------------------------------------------------------------------
# Anomaly flags
# ----------------------------------------------------------------------


def test_stall_flagged_from_round_spans():
    records = _healthy_stream()
    records.append(_span("round", 0.5))  # 50x the 10 ms median
    report = analyze_records(records)
    kinds = {a.kind for a in report.anomalies}
    assert "stall" in kinds
    stall = next(a for a in report.anomalies if a.kind == "stall")
    assert stall.context["stalled_rounds"] == 1


def test_stall_flagged_from_liveness_records():
    records = _healthy_stream()
    records.append({"event": "liveness", "round": 7, "missing": [3]})
    report = analyze_records(records)
    assert any("liveness" in a.message for a in report.anomalies)


def test_slowdown_flagged_when_rate_decays():
    records = [_span("round", 0.001)] * 20 + [_span("round", 0.01)] * 20
    report = analyze_records(records, windows=4)
    assert any(a.kind == "slowdown" for a in report.anomalies)


def test_precision_drop_flagged_per_window():
    records = []
    for index in range(30):
        records.append(_round(index, [0], 1, 0.5))
    for index in range(30, 40):
        records.append(_round(index, [3], 0, 0.5))  # honest eliminated
    report = analyze_records(records, windows=4)
    drops = [a for a in report.anomalies if a.kind == "precision_drop"]
    assert drops and drops[0].context["window_precision"] == 0.0


def test_divergence_flagged_when_distance_rebounds():
    records = [_round(i, None, 0, d)
               for i, d in enumerate([1.0, 0.1, 0.05, 2.0])]
    report = analyze_records(records)
    divergence = [a for a in report.anomalies if a.kind == "divergence"]
    assert divergence
    assert divergence[0].context["last"] == pytest.approx(2.0)


def test_converging_distance_not_flagged():
    records = [_round(i, None, 0, 1.0 / (i + 1)) for i in range(20)]
    assert analyze_records(records).anomalies == []


# ----------------------------------------------------------------------
# Degenerate streams (the empty-stream guards of the exporters layer)
# ----------------------------------------------------------------------


def test_empty_stream_rolls_up_cleanly():
    report = analyze_records([])
    assert report.records == 0
    assert report.rounds == 0
    assert report.hotspots == []
    assert report.anomalies == []
    assert "anomalies: none" in report.render()


def test_percentile_of_empty_sample_is_zero():
    assert _percentile([], 95) == 0.0
    assert _percentile([3.0], 50) == 3.0


def test_summarize_skips_partial_span_records():
    summary = summarize_records([
        {"event": "span", "name": "round"},  # torn line: no seconds
        {"event": "span", "seconds": 0.5},  # torn line: no name
        _span("round", 0.25),
    ])
    assert summary["spans"]["round"]["count"] == 1


def test_assemble_summary_drops_empty_span_lists():
    summary = _assemble_summary(0, {"round": []}, 0, 0, 0, {})
    assert summary["spans"] == {}
    assert summary["rounds_per_sec"] is None
    assert summary["elimination"]["precision"] is None


# ----------------------------------------------------------------------
# Path ingestion
# ----------------------------------------------------------------------


def _write_stream(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


def test_analyze_file_and_directory(tmp_path):
    _write_stream(tmp_path / "a.jsonl", _healthy_stream())
    _write_stream(tmp_path / "b.jsonl", [_span("round", 0.01)])
    reports = analyze_trace_path(str(tmp_path / "a.jsonl"))
    assert len(reports) == 1 and reports[0].rounds == 40
    reports = analyze_trace_path(str(tmp_path))
    assert [r.source for r in reports] == [
        str(tmp_path / "a.jsonl"),
        str(tmp_path / "b.jsonl"),
    ]


def test_analyze_path_rejects_missing_and_empty(tmp_path):
    with pytest.raises(InvalidParameterError, match="does not exist"):
        analyze_trace_path(str(tmp_path / "nope.jsonl"))
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(InvalidParameterError, match="no \\*.jsonl"):
        analyze_trace_path(str(empty))


# ----------------------------------------------------------------------
# Per-agent health time-series (decentralized record schema)
# ----------------------------------------------------------------------


def _health(index, degraded=(), frozen=(), dropped=0, suspected=(),
            reinstated=(), n=4):
    return {
        "event": "agent_health",
        "round": index,
        "live_in_degree": [2] * n,
        "degraded": list(degraded),
        "frozen": list(frozen),
        "dropped_edges": dropped,
        "bytes_dropped": dropped * 16,
        "suspected_edges": [list(edge) for edge in suspected],
        "reinstated_edges": [list(edge) for edge in reinstated],
        "degraded_agent_rounds": 0,
    }


def test_healthy_agent_stream_summarized_without_anomalies():
    records = _healthy_stream(20) + [
        _health(i, dropped=1, suspected=[(0, 1)] if i == 3 else ())
        for i in range(20)
    ]
    report = analyze_records(records, source="unit")
    assert report.anomalies == []
    health = report.agent_health
    assert health["rounds"] == 20
    assert health["degraded_rounds"] == 0
    assert health["bytes_dropped"] == 20 * 16
    assert health["dropped_edges"] == 20
    assert health["suspected_edge_events"] == 1
    assert health["min_live_in_degree"] == 2
    assert "agent-health rounds" in report.render()


def test_long_degraded_streak_flagged():
    # agent 2 degraded for 12 consecutive rounds, then heals
    records = _healthy_stream(20) + [
        _health(i, degraded=[2] if i < 12 else [])
        for i in range(20)
    ]
    report = analyze_records(records)
    kinds = [a.kind for a in report.anomalies]
    assert kinds == ["agent_degraded"]
    assert report.anomalies[0].context["agents"] == {2: 12}
    assert report.agent_health["max_degraded_streak"] == 12
    assert report.agent_health["final_degraded"] == []


def test_short_blips_below_window_not_flagged():
    # degraded 3 rounds at a time with recoveries in between
    records = _healthy_stream(20) + [
        _health(i, degraded=[1] if (i // 3) % 2 == 0 else [])
        for i in range(20)
    ]
    report = analyze_records(records)
    assert [a.kind for a in report.anomalies] == []


def test_unhealed_partition_flagged():
    records = _healthy_stream(30) + [
        _health(i, degraded=[0, 3]) for i in range(30)
    ]
    report = analyze_records(records)
    kinds = sorted(a.kind for a in report.anomalies)
    assert kinds == ["agent_degraded", "partition_unhealed"]
    unhealed = next(a for a in report.anomalies
                    if a.kind == "partition_unhealed")
    assert unhealed.context["agents"] == [0, 3]
    assert report.agent_health["final_degraded"] == [0, 3]


def test_degraded_window_is_tunable():
    records = _healthy_stream(10) + [
        _health(i, degraded=[1] if i < 5 else []) for i in range(10)
    ]
    assert analyze_records(records).anomalies == []
    tight = analyze_records(records, degraded_window=3)
    assert [a.kind for a in tight.anomalies] == ["agent_degraded"]


def test_agent_health_in_payload_and_json_round_trip():
    records = _healthy_stream(10) + [_health(i) for i in range(10)]
    report = analyze_records(records)
    payload = report.to_payload()
    assert payload["agent_health"]["rounds"] == 10
    json.dumps(payload)  # JSON-safe
    assert analyze_records(_healthy_stream(5)).to_payload()[
        "agent_health"] is None


def test_recorded_decentralized_stream_end_to_end(tmp_path):
    """Regression over a real E17-style recorded decentralized stream."""
    import numpy as np

    from repro.observability import Telemetry
    from repro.problems.linear_regression import make_redundant_regression
    from repro.system.decentralized import run_decentralized_dgd
    from repro.system.netfaults import LinkFaultModel, LinkFaultProfile
    from repro.system.topology import ring_topology

    instance = make_redundant_regression(n=12, d=2, f=1, seed=5)
    topology = ring_topology(12, hops=2)
    # strangle every in-edge of agent 0: it can never meet 2f+1 live
    profiles = {(sender, 0): LinkFaultProfile(drop_prob=1.0)
                for sender in topology.neighbors(0)}
    model = LinkFaultModel(link_profiles=profiles, seed=3)
    stream = tmp_path / "decentralized.jsonl"
    telemetry = Telemetry(str(stream))
    run_decentralized_dgd(
        instance.costs, topology, iterations=40, seed=2,
        local_budgets=1, link_faults=model, telemetry=telemetry,
    )
    telemetry.close()

    report = analyze_trace_path(str(stream))[0]
    kinds = sorted(a.kind for a in report.anomalies)
    assert "agent_degraded" in kinds
    assert "partition_unhealed" in kinds
    health = report.agent_health
    assert health["rounds"] == 40
    assert health["max_degraded_streak"] == 40
    assert health["final_degraded"] == [0]
    assert health["min_live_in_degree"] == 0
    assert health["bytes_dropped"] > 0
    rendered = report.render()
    assert "max degraded streak" in rendered
    assert "bytes dropped" in rendered
