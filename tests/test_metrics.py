"""Metrics registry semantics, Prometheus rendering, and thread safety."""

import threading

import pytest

from repro.exceptions import InvalidParameterError
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    parse_prometheus_text,
)


class TestCounter:
    def test_inc_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "requests")
        counter.inc()
        counter.inc(2, path="jobs")
        counter.inc(path="jobs")
        assert counter.value() == 1
        assert counter.value(path="jobs") == 3
        assert counter.total() == 4

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(InvalidParameterError):
            counter.inc(-1)

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(InvalidParameterError):
            registry.counter("not a name")
        with pytest.raises(InvalidParameterError):
            registry.counter("ok").inc(**{"0bad": "x"})


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6
        gauge.set(0, state="queued")
        gauge.inc(by=3, state="queued")
        assert gauge.value(state="queued") == 3


class TestHistogram:
    def test_observe_buckets_and_sum(self):
        histogram = MetricsRegistry().histogram(
            "latency", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(55.55)

    def test_bucket_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(InvalidParameterError):
            registry.histogram("a", buckets=())
        with pytest.raises(InvalidParameterError):
            registry.histogram("b", buckets=(1.0, 1.0))
        with pytest.raises(InvalidParameterError):
            registry.histogram("c", buckets=(1.0, float("inf")))

    def test_boundary_lands_in_le_bucket(self):
        # Prometheus buckets are cumulative "<= bound".
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        text = registry.render_prometheus()
        samples = parse_prometheus_text(text)
        assert samples['h_bucket{le="1"}'] == 1
        assert samples['h_bucket{le="+Inf"}'] == 1


class TestRegistry:
    def test_get_or_create_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.get("x") is registry.counter("x")
        assert registry.get("missing") is None

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(InvalidParameterError):
            registry.gauge("x")
        registry.histogram("h")
        with pytest.raises(InvalidParameterError):
            registry.histogram("h", buckets=(1.0, 2.0))

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc(path="jobs")
        registry.gauge("g").set(2.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped["c"]["kind"] == "counter"
        assert round_tripped["h"]["values"][""]["count"] == 1


class TestPrometheusText:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "reqs").inc(3, path="jobs",
                                                       method="GET")
        registry.gauge("queue_depth").set(7)
        histogram = registry.histogram("latency_seconds",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        samples = parse_prometheus_text(registry.render_prometheus())
        assert samples['requests_total{method="GET",path="jobs"}'] == 3
        assert samples["queue_depth"] == 7
        assert samples['latency_seconds_bucket{le="0.1"}'] == 1
        assert samples['latency_seconds_bucket{le="1"}'] == 2
        assert samples['latency_seconds_bucket{le="+Inf"}'] == 2
        assert samples["latency_seconds_count"] == 2
        assert samples["latency_seconds_sum"] == pytest.approx(0.55)

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(InvalidParameterError):
            parse_prometheus_text("metric_without_value")
        with pytest.raises(InvalidParameterError):
            parse_prometheus_text("metric not-a-number")

    def test_parse_skips_comments_and_blanks(self):
        text = "# HELP x y\n# TYPE x counter\n\nx 1\n"
        assert parse_prometheus_text(text) == {"x": 1.0}

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(reason='say "no"\nplease')
        text = registry.render_prometheus()
        assert r'reason="say \"no\"\nplease"' in text
        parse_prometheus_text(text)  # still line-parseable


class TestConcurrency:
    def test_hammered_registry_scrapes_consistently(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        histogram = registry.histogram("op_seconds", buckets=(0.5,))
        threads, per_thread = 8, 500
        start = threading.Barrier(threads + 1)

        def worker(i):
            start.wait()
            for j in range(per_thread):
                counter.inc(worker=str(i))
                histogram.observe((j % 2) * 1.0)

        pool = [threading.Thread(target=worker, args=(i,))
                for i in range(threads)]
        for t in pool:
            t.start()
        start.wait()
        # Scrape while the writers hammer: every scrape must be
        # self-consistent and counters monotone between scrapes.
        previous = {}
        for _ in range(20):
            samples = parse_prometheus_text(registry.render_prometheus())
            assert (samples.get('op_seconds_bucket{le="+Inf"}', 0)
                    == samples.get("op_seconds_count", 0))
            assert (samples.get('op_seconds_bucket{le="0.5"}', 0)
                    <= samples.get("op_seconds_count", 0))
            for key, value in previous.items():
                assert samples.get(key, 0) >= value
            previous = samples
        for t in pool:
            t.join()
        final = parse_prometheus_text(registry.render_prometheus())
        assert counter.total() == threads * per_thread
        assert final["op_seconds_count"] == threads * per_thread
        for i in range(threads):
            assert final[f'ops_total{{worker="{i}"}}'] == per_thread

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.01
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 60.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )
