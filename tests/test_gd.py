"""Tests for the centralized gradient-descent reference solver."""

import numpy as np
import pytest

from repro.core.geometry import Singleton
from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import (
    HuberCost,
    LogisticCost,
    QuadraticCost,
    TranslatedQuadratic,
)
from repro.optimization.gd import gradient_descent, solve_argmin
from repro.optimization.projections import BallSet
from repro.optimization.step_sizes import ConstantStepSize


class TestGradientDescent:
    def test_converges_on_quadratic(self):
        cost = TranslatedQuadratic([3.0, -2.0])
        result = gradient_descent(cost, [0.0, 0.0], max_iterations=5000)
        assert result.converged
        assert np.allclose(result.minimizer, [3.0, -2.0], atol=1e-4)

    def test_respects_projection(self):
        cost = TranslatedQuadratic([5.0, 0.0])
        ball = BallSet([0.0, 0.0], 1.0)
        result = gradient_descent(
            cost, [0.0, 0.0], projection=ball, max_iterations=3000,
            gradient_tolerance=0.0,
        )
        # Constrained optimum is the ball boundary toward the target.
        assert np.allclose(result.minimizer, [1.0, 0.0], atol=1e-3)

    def test_trajectory_recording(self):
        cost = TranslatedQuadratic([1.0])
        result = gradient_descent(
            cost, [0.0], step_sizes=ConstantStepSize(0.1), max_iterations=10,
            gradient_tolerance=0.0, record_trajectory=True,
        )
        assert result.trajectory.shape == (11, 1)
        assert result.iterations == 10

    def test_callback_invoked_each_step(self):
        calls = []
        cost = TranslatedQuadratic([1.0])
        gradient_descent(
            cost, [0.0], step_sizes=ConstantStepSize(0.1), max_iterations=5,
            gradient_tolerance=0.0, callback=lambda t, x: calls.append(t),
        )
        assert calls == [1, 2, 3, 4, 5]

    def test_already_optimal_stops_immediately(self):
        cost = TranslatedQuadratic([1.0, 1.0])
        result = gradient_descent(cost, [1.0, 1.0])
        assert result.converged
        assert result.iterations == 0

    def test_explicit_schedule(self):
        cost = TranslatedQuadratic([2.0])
        result = gradient_descent(
            cost, [0.0], step_sizes=ConstantStepSize(0.25), max_iterations=200
        )
        assert result.converged

    def test_invalid_iterations(self):
        with pytest.raises(InvalidParameterError):
            gradient_descent(TranslatedQuadratic([0.0]), [1.0], max_iterations=0)

    def test_works_without_hessian(self):
        # Huber is 1-smooth, so a constant 0.5 step is stable.
        cost = HuberCost([2.0, -1.0])
        result = gradient_descent(
            cost, [0.0, 0.0], step_sizes=ConstantStepSize(0.5),
            max_iterations=20000, gradient_tolerance=1e-8,
        )
        assert np.allclose(result.minimizer, [2.0, -1.0], atol=1e-3)


class TestSolveArgmin:
    def test_quadratics_solved_exactly(self):
        costs = [TranslatedQuadratic([0.0, 0.0]), TranslatedQuadratic([4.0, 0.0])]
        argmin = solve_argmin(costs)
        assert isinstance(argmin, Singleton)
        assert np.allclose(argmin.point, [2.0, 0.0], atol=1e-10)

    def test_subset_selection(self):
        costs = [TranslatedQuadratic([float(i), 0.0]) for i in range(5)]
        argmin = solve_argmin(costs, indices=(0, 4))
        assert np.allclose(argmin.project(np.zeros(2)), [2.0, 0.0], atol=1e-10)

    def test_numerical_path_for_logistic(self):
        rng = np.random.default_rng(0)
        Z = rng.normal(size=(40, 2)) + np.array([1.0, 0.0])
        y = np.ones(40)
        Z2 = rng.normal(size=(40, 2)) - np.array([1.0, 0.0])
        costs = [
            LogisticCost(Z, y, regularization=0.5),
            LogisticCost(Z2, -np.ones(40), regularization=0.5),
        ]
        argmin = solve_argmin(costs, gradient_tolerance=1e-8)
        point = argmin.project(np.zeros(2))
        total_grad = costs[0].gradient(point) + costs[1].gradient(point)
        assert np.linalg.norm(total_grad) < 1e-6

    def test_singular_quadratic_gives_subspace(self):
        from repro.core.geometry import AffineSubspace
        from repro.optimization.cost_functions import LeastSquaresCost

        cost = LeastSquaresCost(np.array([[1.0, 0.0]]), np.array([1.0]))
        argmin = solve_argmin([cost])
        assert isinstance(argmin, AffineSubspace)
