"""Tests for the aggregator registry and shared base behaviour."""

import numpy as np
import pytest

from repro.aggregators import available_filters, make_filter
from repro.aggregators.base import GradientFilter
from repro.aggregators.mean import Average
from repro.exceptions import InvalidParameterError


def test_all_registered_names_instantiate():
    for name in available_filters():
        gradient_filter = make_filter(name, f=1)
        assert isinstance(gradient_filter, GradientFilter)
        assert gradient_filter.f == 1


def test_every_filter_returns_d_vector():
    rng = np.random.default_rng(0)
    gradients = rng.normal(size=(8, 3))
    for name in available_filters():
        out = make_filter(name, f=1)(gradients)
        assert out.shape == (3,), name
        assert np.all(np.isfinite(out)), name


def test_unknown_name_lists_alternatives():
    with pytest.raises(InvalidParameterError, match="available"):
        make_filter("does-not-exist")


def test_kwargs_forwarded():
    cge = make_filter("cge", f=2, mode="mean")
    assert cge.mode == "mean"


def test_average_ignores_f_in_minimum_inputs():
    avg = Average(f=3)
    assert avg.minimum_inputs() == 1
    assert np.allclose(avg(np.ones((2, 2))), 1.0)


def test_sanitize_replaces_non_finite():
    matrix = np.array([[np.nan, np.inf, -np.inf, 1.0]])
    cleaned = GradientFilter.sanitize(matrix)
    assert np.all(np.isfinite(cleaned))
    assert cleaned[0, 3] == 1.0


def test_sanitize_no_copy_when_finite():
    matrix = np.ones((2, 2))
    assert GradientFilter.sanitize(matrix) is matrix


def test_gradients_must_be_matrix():
    avg = Average()
    with pytest.raises(Exception):
        avg(np.ones(3))


def test_filter_repr_contains_f():
    assert "f=2" in repr(make_filter("cwtm", f=2))
