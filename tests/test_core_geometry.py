"""Tests for repro.core.geometry."""

import numpy as np
import pytest

from repro.core.geometry import (
    AffineSubspace,
    FinitePointSet,
    Singleton,
    distance_point_to_set,
    hausdorff_distance,
    pairwise_max_distance,
)
from repro.exceptions import DimensionMismatchError, InvalidParameterError


class TestSingleton:
    def test_distance_is_euclidean(self):
        s = Singleton([1.0, 2.0])
        assert distance_point_to_set([4.0, 6.0], s) == pytest.approx(5.0)

    def test_projection_is_the_point(self):
        s = Singleton([1.0, 2.0])
        assert np.allclose(s.project([9.0, 9.0]), [1.0, 2.0])

    def test_contains_within_tolerance(self):
        s = Singleton([0.0, 0.0])
        assert s.contains([1e-10, 0.0])
        assert not s.contains([0.1, 0.0])

    def test_point_is_copied(self):
        s = Singleton([1.0, 2.0])
        s.point[0] = 99.0
        assert s.point[0] == 1.0

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Singleton([1.0, 2.0]).distance_to([1.0, 2.0, 3.0])


class TestFinitePointSet:
    def test_distance_to_nearest(self):
        fps = FinitePointSet([[0.0, 0.0], [10.0, 0.0]])
        assert fps.distance_to([2.0, 0.0]) == pytest.approx(2.0)

    def test_project_picks_nearest(self):
        fps = FinitePointSet([[0.0, 0.0], [10.0, 0.0]])
        assert np.allclose(fps.project([8.0, 0.0]), [10.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            FinitePointSet(np.zeros((0, 2)))


class TestAffineSubspace:
    def test_point_only_behaves_like_singleton(self):
        sub = AffineSubspace([1.0, 1.0])
        assert sub.distance_to([1.0, 2.0]) == pytest.approx(1.0)
        assert sub.codimension == 2

    def test_line_projection(self):
        # Line {(t, 0)} in R^2.
        line = AffineSubspace([0.0, 0.0], np.array([[1.0], [0.0]]))
        assert line.distance_to([3.0, 4.0]) == pytest.approx(4.0)
        assert np.allclose(line.project([3.0, 4.0]), [3.0, 0.0])

    def test_rejects_non_orthonormal_directions(self):
        with pytest.raises(InvalidParameterError):
            AffineSubspace([0.0, 0.0], np.array([[2.0], [0.0]]))

    def test_parallel_detection(self):
        a = AffineSubspace([0.0, 0.0], np.array([[1.0], [0.0]]))
        b = AffineSubspace([0.0, 3.0], np.array([[1.0], [0.0]]))
        c = AffineSubspace([0.0, 0.0], np.array([[0.0], [1.0]]))
        assert a.is_parallel_to(b)
        assert not a.is_parallel_to(c)


class TestHausdorff:
    def test_between_singletons(self):
        a, b = Singleton([0.0, 0.0]), Singleton([3.0, 4.0])
        assert hausdorff_distance(a, b) == pytest.approx(5.0)

    def test_symmetry(self):
        a = FinitePointSet([[0.0, 0.0], [1.0, 0.0]])
        b = Singleton([5.0, 0.0])
        assert hausdorff_distance(a, b) == pytest.approx(hausdorff_distance(b, a))

    def test_asymmetric_one_sided_deviations(self):
        # A subset of B has 0 one-sided deviation, but Hausdorff is still positive.
        a = FinitePointSet([[0.0, 0.0]])
        b = FinitePointSet([[0.0, 0.0], [2.0, 0.0]])
        assert hausdorff_distance(a, b) == pytest.approx(2.0)

    def test_identical_sets_distance_zero(self):
        a = FinitePointSet([[1.0, 2.0], [3.0, 4.0]])
        assert hausdorff_distance(a, a) == 0.0

    def test_parallel_lines(self):
        a = AffineSubspace([0.0, 0.0], np.array([[1.0], [0.0]]))
        b = AffineSubspace([0.0, 2.0], np.array([[1.0], [0.0]]))
        assert hausdorff_distance(a, b) == pytest.approx(2.0)

    def test_non_parallel_lines_are_infinitely_apart(self):
        a = AffineSubspace([0.0, 0.0], np.array([[1.0], [0.0]]))
        b = AffineSubspace([0.0, 0.0], np.array([[0.0], [1.0]]))
        assert hausdorff_distance(a, b) == float("inf")

    def test_line_vs_singleton_on_line(self):
        line = AffineSubspace([0.0, 0.0], np.array([[1.0], [0.0]]))
        point = Singleton([5.0, 0.0])
        # sup over the line of distances to the point is infinite... but the
        # support-point approximation bounds it by sampled extent; the exact
        # semantics for mixed finite/affine pairs use support points, so we
        # only assert the one-sided point->line distance is respected.
        assert hausdorff_distance(point, line) >= 0.0

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            hausdorff_distance(Singleton([0.0]), Singleton([0.0, 0.0]))


def test_pairwise_max_distance():
    points = [np.array([0.0, 0.0]), np.array([3.0, 4.0]), np.array([1.0, 0.0])]
    assert pairwise_max_distance(points) == pytest.approx(5.0)
    assert pairwise_max_distance([np.array([1.0, 1.0])]) == 0.0
