"""Deterministic trace ids, span lineage, and bit-identity guarantees."""

import json
import os

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.observability import MemorySink, Telemetry
from repro.observability.tracing import (
    SPAN_ID_HEX,
    TRACE_ID_HEX,
    TraceContext,
    derive_span_id,
    derive_trace_id,
)


class TestIdDerivation:
    def test_trace_id_is_deterministic_and_hex(self):
        a = derive_trace_id("job", "j-1", "abc123")
        b = derive_trace_id("job", "j-1", "abc123")
        assert a == b
        assert len(a) == TRACE_ID_HEX
        int(a, 16)  # valid hex

    def test_distinct_material_distinct_ids(self):
        assert derive_trace_id("job", "j-1") != derive_trace_id("job", "j-2")

    def test_no_material_rejected(self):
        with pytest.raises(InvalidParameterError):
            derive_trace_id()

    def test_span_id_depends_on_every_input(self):
        trace = derive_trace_id("t")
        base = derive_span_id(trace, None, "run", 0)
        assert len(base) == SPAN_ID_HEX
        assert derive_span_id(trace, None, "run", 1) != base
        assert derive_span_id(trace, None, "round", 0) != base
        assert derive_span_id(trace, "aa" * 8, "run", 0) != base
        assert derive_span_id(trace, None, "run", 0) == base

    def test_no_wall_clock_in_ids(self):
        # Same material on two "different days" must derive identically —
        # the discipline the retry dedup and resume paths rely on.
        ids = {derive_trace_id("job", "x", "h") for _ in range(64)}
        assert len(ids) == 1


class TestTraceContext:
    def test_root_child_chain(self):
        trace = derive_trace_id("t")
        root = TraceContext.root(trace, name="job")
        child = root.child("sweep")
        grandchild = child.child("chunk-0", index=3)
        assert root.parent_span_id is None
        assert child.parent_span_id == root.span_id
        assert grandchild.parent_span_id == child.span_id
        assert child.trace_id == grandchild.trace_id == trace
        # index participates in derivation
        assert child.child("chunk-0", index=4).span_id != grandchild.span_id

    def test_payload_round_trip(self):
        ctx = TraceContext.root(derive_trace_id("t"), name="job").child("s")
        assert TraceContext.from_payload(ctx.to_payload()) == ctx

    def test_root_payload_round_trip_keeps_none_parent(self):
        root = TraceContext.root(derive_trace_id("t"))
        back = TraceContext.from_payload(root.to_payload())
        assert back.parent_span_id is None
        assert back == root

    def test_fields_omits_absent_parent(self):
        root = TraceContext.root(derive_trace_id("t"))
        assert "parent_span_id" not in root.fields()
        assert "parent_span_id" in root.child("x").fields()

    def test_malformed_payload_rejected(self):
        with pytest.raises(InvalidParameterError):
            TraceContext.from_payload("not-a-dict")
        with pytest.raises(InvalidParameterError):
            TraceContext.from_payload({"trace_id": "aa"})


class TestTelemetryLineage:
    def _traced(self):
        sink = MemorySink()
        root = TraceContext.root(derive_trace_id("t"), name="job")
        return sink, Telemetry(sink, trace=root, trace_name="job"), root

    def test_spans_nest_and_carry_lineage(self):
        sink, tel, root = self._traced()
        with tel.span("run"):
            with tel.span("round"):
                tel.emit("probe", value=1)
        spans = [r for r in sink.records if r["event"] == "span"]
        by_name = {r["name"]: r for r in spans}
        assert by_name["run"]["parent_span_id"] == root.span_id
        assert by_name["round"]["parent_span_id"] == by_name["run"]["span_id"]
        probe = next(r for r in sink.records if r["event"] == "probe")
        assert probe["span_id"] == by_name["round"]["span_id"]
        assert all("ts" in r for r in spans)

    def test_repeated_span_names_get_distinct_ids(self):
        sink, tel, _ = self._traced()
        for _ in range(3):
            with tel.span("round"):
                pass
        ids = [r["span_id"] for r in sink.records if r["event"] == "span"]
        assert len(set(ids)) == 3

    def test_close_emits_handle_lifetime_span(self):
        sink, tel, root = self._traced()
        tel.close()
        spans = [r for r in sink.records if r["event"] == "span"]
        assert [s["name"] for s in spans] == ["job"]
        assert spans[0]["span_id"] == root.span_id
        assert spans[0].get("parent_span_id") is None
        tel.close()  # idempotent: no duplicate span
        assert len([r for r in sink.records if r["event"] == "span"]) == 1

    def test_untraced_records_carry_no_lineage_and_no_ts(self):
        sink = MemorySink()
        tel = Telemetry(sink)
        with tel.span("run"):
            tel.emit("probe", value=1)
        tel.close()
        for record in sink.records:
            assert "trace_id" not in record
            assert "span_id" not in record
            assert "ts" not in record
        span = next(r for r in sink.records if r["event"] == "span")
        assert set(span) == {"event", "name", "seconds"}

    def test_annotate_accepts_descriptive_fields(self):
        # Regression: the decentralized runner annotates architecture/
        # topology/aggregation; a live handle used to raise TypeError.
        tel = Telemetry(MemorySink())
        tel.annotate(architecture="decentralized", topology="ring",
                     aggregation="cwtm", byzantine_ids=[0])
        assert tel.annotations == {
            "architecture": "decentralized", "topology": "ring",
            "aggregation": "cwtm",
        }
        assert tel._byzantine == {0}


class TestBitIdentity:
    def test_run_dgd_traced_equals_untraced(self):
        from repro.attacks.simple import GradientReverse
        from repro.problems.linear_regression import make_redundant_regression
        from repro.system.runner import run_dgd

        instance = make_redundant_regression(n=6, d=2, f=1, seed=3)
        kwargs = dict(
            gradient_filter="cge", faulty_ids=(0,), iterations=40, seed=3
        )

        def go(telemetry):
            return run_dgd(
                instance.costs, GradientReverse(), telemetry=telemetry,
                **kwargs,
            )

        plain = go(None)
        root = TraceContext.root(derive_trace_id("t"), name="job")
        traced_tel = Telemetry(MemorySink(), trace=root, trace_name="job")
        traced = go(traced_tel)
        traced_tel.close()
        assert np.array_equal(plain.final_estimate, traced.final_estimate)
        assert np.array_equal(plain.estimates, traced.estimates)

    def test_decentralized_traced_equals_untraced(self, tmp_path):
        from repro.system.decentralized import run_decentralized_dgd
        from repro.system.netfaults import LinkFaultModel, LinkFaultProfile
        from repro.system.topology import ring_topology
        from repro.problems.linear_regression import make_redundant_regression

        instance = make_redundant_regression(n=12, d=2, f=1, seed=7)
        topology = ring_topology(12, hops=2)
        model = LinkFaultModel(
            default_profile=LinkFaultProfile(drop_prob=0.2), seed=4
        )

        def go(telemetry):
            return run_decentralized_dgd(
                instance.costs, topology, iterations=60, seed=1,
                local_budgets=1, link_faults=model, telemetry=telemetry,
            )

        plain = go(None)
        stream = tmp_path / "decentralized.jsonl"
        tel = Telemetry(os.fspath(stream))
        traced = go(tel)
        tel.close()
        assert np.array_equal(plain.final_states, traced.final_states)
        assert plain.counters == traced.counters
        # and the stream carries the per-agent health time-series
        health = [json.loads(line) for line in stream.read_text().splitlines()
                  if '"agent_health"' in line]
        assert len(health) == 60
        keys = set(health[0])
        assert {"round", "live_in_degree", "degraded", "frozen",
                "dropped_edges", "bytes_dropped", "suspected_edges",
                "reinstated_edges", "degraded_agent_rounds"} <= keys

    def test_sweep_engine_traced_equals_untraced(self, tmp_path):
        from repro.experiments.sweep import RegressionGrid, SweepEngine

        grid = RegressionGrid(
            filters=("cge",), attacks=("zero",), fault_counts=(1,),
            num_seeds=2, n=4, d=1, iterations=25,
        )

        def go(subdir, trace):
            engine = SweepEngine(
                parallel=False,
                events=os.fspath(tmp_path / subdir / "events.jsonl"),
                cache_dir=os.fspath(tmp_path / subdir / "cache"),
                trace=trace,
            )
            return engine.run_regression_grid(grid)

        root = TraceContext.root(derive_trace_id("t"), name="job")
        plain = go("plain", None)
        traced = go("traced", root.child("sweep"))
        for a, b in zip(plain, traced):
            assert a.final_error == b.final_error
            assert np.array_equal(
                np.asarray(a.final_estimate), np.asarray(b.final_estimate)
            )

    def test_untraced_sweep_stream_schema_unchanged(self, tmp_path):
        from repro.experiments.sweep import RegressionGrid, SweepEngine

        events = tmp_path / "events.jsonl"
        engine = SweepEngine(
            parallel=False, events=os.fspath(events),
            cache_dir=os.fspath(tmp_path / "cache"),
        )
        engine.run_regression_grid(RegressionGrid(
            filters=("cge",), attacks=("zero",), fault_counts=(1,),
            num_seeds=1, n=4, d=1, iterations=10,
        ))
        for line in events.read_text().splitlines():
            record = json.loads(line)
            assert "trace_id" not in record
            assert "span_id" not in record
