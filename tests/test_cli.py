"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_ids_cover_design_index(self):
        for expected in ("E1", "E4", "E5", "E8", "E10", "E11", "A1", "A4"):
            assert expected in EXPERIMENTS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "E99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cge" in out
        assert "gradient-reverse" in out
        assert "E11" in out

    def test_run_prints_summary(self, capsys):
        code = main([
            "run", "--n", "6", "--f", "1", "--iterations", "50", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dist(x_H, x_out)" in out
        assert "redundancy margin" in out

    def test_run_fault_free(self, capsys):
        assert main(["run", "--f", "0", "--iterations", "20"]) == 0
        assert "(none)" in capsys.readouterr().out

    def test_redundancy_sweep(self, capsys):
        assert main(["redundancy", "--noise", "0", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "margin" in out
        assert "yes" in out and "no" in out

    def test_experiment_with_exports(self, tmp_path, capsys, monkeypatch):
        # Patch in a fast experiment to keep the CLI test cheap.
        from repro.analysis.reporting import ExperimentResult

        def fake():
            return ExperimentResult(
                experiment_id="E4", title="fast", headers=["a"], rows=[[1.0]]
            )

        monkeypatch.setitem(EXPERIMENTS, "E4", fake)
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        code = main([
            "experiment", "E4", "--json", str(json_path), "--csv", str(csv_path),
        ])
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["experiment_id"] == "E4"
        assert csv_path.read_text().startswith("a")

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
