"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_ids_cover_design_index(self):
        for expected in ("E1", "E4", "E5", "E8", "E10", "E11", "A1", "A4"):
            assert expected in EXPERIMENTS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "E99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cge" in out
        assert "gradient-reverse" in out
        assert "E11" in out

    def test_run_prints_summary(self, capsys):
        code = main([
            "run", "--n", "6", "--f", "1", "--iterations", "50", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dist(x_H, x_out)" in out
        assert "redundancy margin" in out

    def test_run_fault_free(self, capsys):
        assert main(["run", "--f", "0", "--iterations", "20"]) == 0
        assert "(none)" in capsys.readouterr().out

    def test_redundancy_sweep(self, capsys):
        assert main(["redundancy", "--noise", "0", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "margin" in out
        assert "yes" in out and "no" in out

    def test_experiment_with_exports(self, tmp_path, capsys, monkeypatch):
        # Patch in a fast experiment to keep the CLI test cheap.
        from repro.analysis.reporting import ExperimentResult

        def fake():
            return ExperimentResult(
                experiment_id="E4", title="fast", headers=["a"], rows=[[1.0]]
            )

        monkeypatch.setitem(EXPERIMENTS, "E4", fake)
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        code = main([
            "experiment", "E4", "--json", str(json_path), "--csv", str(csv_path),
        ])
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["experiment_id"] == "E4"
        assert csv_path.read_text().startswith("a")

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestRunFaultFlags:
    FAST = ["run", "--n", "6", "--f", "1", "--iterations", "40", "--seed", "1"]

    def test_degraded_run_reports_resilience(self, capsys):
        code = main([
            *self.FAST, "--drop-prob", "0.1", "--delay", "2",
            "--stragglers", "1", "--fault-seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "stale reuses" in out
        assert "messages dropped" in out
        assert "network traffic" in out

    def test_crash_recover_flag(self, capsys):
        code = main([*self.FAST, "--crash-recover", "4:10:20"])
        assert code == 0
        assert "reinstatements" in capsys.readouterr().out

    def test_checkpoint_flag_writes_and_resumes(self, tmp_path, capsys):
        ckpt = str(tmp_path / "run.ckpt.json")
        args = [*self.FAST, "--delay", "1", "--checkpoint", ckpt]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert f"checkpoint -> {ckpt}" in first
        assert "resumed from round | 0" in first.replace("  ", " ") or "resumed" in first
        assert main(args) == 0
        assert "resumed from round" in capsys.readouterr().out

    def test_bad_drop_prob_exits_2(self, capsys):
        assert main([*self.FAST, "--drop-prob", "1.5"]) == 2
        assert "drop_prob" in capsys.readouterr().err

    def test_too_many_stragglers_exits_2(self, capsys):
        assert main([*self.FAST, "--stragglers", "9"]) == 2
        assert "--stragglers" in capsys.readouterr().err

    def test_malformed_crash_recover_exits_2(self, capsys):
        assert main([*self.FAST, "--crash-recover", "banana"]) == 2
        assert "--crash-recover" in capsys.readouterr().err

    def test_nonpositive_checkpoint_every_exits_2(self, capsys):
        assert main([*self.FAST, "--checkpoint-every", "0"]) == 2
        assert "--checkpoint-every" in capsys.readouterr().err


class TestSweepCommand:
    FAST = ["--filters", "cge", "--attacks", "zero", "--num-seeds", "2",
            "--iterations", "10", "--sequential"]

    def test_parses_resilience_flags(self):
        args = build_parser().parse_args([
            "sweep", "--timeout", "2.5", "--retries", "1",
            "--events", "ev.jsonl", "--cache-dir", "cache", "--resume",
        ])
        assert args.timeout == 2.5
        assert args.retries == 1
        assert args.events == "ev.jsonl"
        assert args.cache_dir == "cache"
        assert args.resume is True

    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.timeout is None
        assert args.retries == 2
        assert args.events is None
        assert args.resume is False

    def test_rejects_unknown_filter(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--filters", "nope"])

    def test_rejects_unknown_attack(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--attacks", "nope"])

    def test_runs_and_reports_cells(self, capsys):
        assert main(["sweep", *self.FAST]) == 0
        out = capsys.readouterr().out
        assert "Sweep grid summary" in out
        assert "2 cells (0 from cache)" in out

    def test_cache_dir_round_trip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["sweep", *self.FAST, "--cache-dir", cache]) == 0
        assert "(0 from cache)" in capsys.readouterr().out
        assert main(["sweep", *self.FAST, "--cache-dir", cache]) == 0
        assert "(2 from cache)" in capsys.readouterr().out

    def test_failed_cells_exit_code(self, capsys):
        # bulyan needs n >= 4f + 3: infeasible on the default n=6 instance,
        # so every cell fails and the command must signal it.
        code = main([
            "sweep", "--filters", "bulyan", "--attacks", "zero",
            "--num-seeds", "1", "--iterations", "5", "--sequential",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "1 failed" in out
        assert "n/a" in out

    def test_resume_requires_cache_dir(self, capsys):
        assert main(["sweep", *self.FAST, "--resume"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_resume_serves_cached_cells(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["sweep", *self.FAST, "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["sweep", *self.FAST, "--cache-dir", cache, "--resume"]) == 0
        assert "(2 from cache)" in capsys.readouterr().out

    def test_events_log_written_and_summarized(self, tmp_path, capsys):
        from repro.experiments.sweep import SweepEvents

        events = str(tmp_path / "events.jsonl")
        cache = str(tmp_path / "cache")
        code = main([
            "sweep", *self.FAST, "--events", events, "--cache-dir", cache,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"events -> {events}" in out
        assert "cache_miss=2" in out
        assert "manifest=1" in out
        records = SweepEvents.load(events)
        assert all("event" in record for record in records)
        assert any(r["event"] == "cache_miss" for r in records)

    def test_sweep_telemetry_dir(self, tmp_path, capsys):
        telemetry = str(tmp_path / "telemetry")
        assert main(["sweep", *self.FAST, "--telemetry", telemetry]) == 0
        assert f"telemetry -> {telemetry}/" in capsys.readouterr().out
        from repro.observability import count_events, load_jsonl

        stream = tmp_path / "telemetry" / "f1-cge-zero.jsonl"
        counts = count_events(load_jsonl(str(stream)))
        assert counts["round"] == 20  # 2 seeds x 10 iterations


class TestProfileCommand:
    FAST = ["profile", "--iterations", "20", "--seed", "1"]

    def test_prints_rollup_table(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "p50 (ms)" in out and "p95 (ms)" in out
        assert "rounds / sec" in out
        assert "elimination precision" in out
        assert "elimination recall" in out
        assert "rounds recorded" in out

    def test_batch_engine_profile(self, capsys):
        assert main([*self.FAST, "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert "run_dgd_batch x3" in out
        assert "60" in out  # 3 runs x 20 iterations recorded

    def test_rejects_nonpositive_runs(self, capsys):
        assert main([*self.FAST, "--runs", "0"]) == 2
        assert "--runs" in capsys.readouterr().err

    def test_telemetry_and_json_exports(self, tmp_path, capsys):
        from repro.observability import count_events, load_jsonl
        from repro.utils.atomicio import read_json_checked

        stream = str(tmp_path / "profile.jsonl")
        summary_path = str(tmp_path / "summary.json")
        code = main([
            *self.FAST, "--telemetry", stream, "--json", summary_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"telemetry -> {stream}" in out
        assert f"saved summary to {summary_path}" in out
        counts = count_events(load_jsonl(stream))
        assert counts["round"] == 20
        summary = read_json_checked(summary_path)
        assert summary["rounds"] == 20
        assert summary["elimination"]["recall"] == 1.0

    def test_run_command_telemetry_flag(self, tmp_path, capsys):
        from repro.observability import count_events, load_jsonl

        stream = str(tmp_path / "run.jsonl")
        code = main([
            "run", "--iterations", "15", "--telemetry", stream,
        ])
        assert code == 0
        assert f"telemetry -> {stream}" in capsys.readouterr().out
        records = load_jsonl(stream)
        counts = count_events(records)
        assert counts["round"] == 15
        # The run's ground truth flows in: faulty agent 0 is scored.
        rounds = [r for r in records if r["event"] == "round"]
        assert all("distance_to_ref" in r for r in rounds)
