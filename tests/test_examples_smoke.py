"""Smoke tests: the fast example scripts run end-to-end and say what they claim."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = {
    "quickstart.py": ["honest meeting point", "cge", "average"],
    "exact_algorithm_demo.py": ["Achievability", "Necessity", "EXACT"],
    "nonsmooth_costs.py": ["2f-redundant", "interval"],
}


@pytest.mark.parametrize("script,expected", sorted(FAST_EXAMPLES.items()))
def test_example_runs_and_prints_expected_markers(script, expected):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr
    for marker in expected:
        assert marker in completed.stdout, (script, marker)


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 8
    for script in scripts:
        source = script.read_text()
        assert source.lstrip().startswith(("#!", '"""')), script.name
        assert '"""' in source, script.name
