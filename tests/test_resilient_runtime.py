"""Tests for the self-healing DGD runtime.

Pins the three headline guarantees of the partially-synchronous engine:

- **zero-fault bit-identity** — with no fault profile the hardened server
  and peer-to-peer loop reproduce the synchronous implementations
  bit-for-bit, telemetry round records included;
- **chaos acceptance** — under bounded delay + duplication + NaN
  corruption + a crash-recovery agent, DGD+CGE on a 2f-redundant instance
  still converges near the honest minimizer and no honest agent is ever
  permanently eliminated;
- **durable resume** — a checkpointed run killed mid-flight resumes
  bit-identically to the uninterrupted trajectory.
"""

import numpy as np
import pytest

from repro.aggregators.registry import make_filter
from repro.analysis.metrics import final_error
from repro.analysis.serialization import load_trace, save_trace
from repro.attacks.registry import make_attack
from repro.exceptions import ProtocolViolationError
from repro.observability import MemorySink, Telemetry
from repro.problems.linear_regression import make_redundant_regression
from repro.system.healing import ResiliencePolicy, ResilientDGDServer
from repro.system.messages import GradientMessage
from repro.system.netfaults import FaultProfile, NetworkFaultModel
from repro.system.peer_to_peer import run_peer_to_peer_dgd
from repro.system.runner import run_dgd
from repro.system.server import DGDServer, fixed_filter_factory


N, D, F = 6, 2, 1
FAULTY = (0,)


@pytest.fixture(scope="module")
def instance():
    return make_redundant_regression(n=N, d=D, f=F, noise_std=0.0, seed=9)


@pytest.fixture(scope="module")
def x_H(instance):
    return instance.honest_minimizer([i for i in range(N) if i not in FAULTY])


def _chaos_model(seed=13):
    """The acceptance grid: delay ≤ 2, duplicates, NaN corruption, one
    crash-recovery honest agent."""
    return NetworkFaultModel(
        profiles={
            1: FaultProfile(delay_prob=0.3, max_delay=2),
            2: FaultProfile(duplicate_prob=0.4, corrupt_prob=0.15, corrupt_mode="nan"),
            3: FaultProfile(delay_prob=0.2, max_delay=1, duplicate_prob=0.2),
            4: FaultProfile(crash_round=20, recover_round=35),
            5: FaultProfile(straggle_every=5, straggle_delay=2),
        },
        seed=seed,
    )


def _round_records(telemetry):
    return [r for r in telemetry.records if r.get("event") == "round"]


class TestZeroFaultBitIdentity:
    def test_server_trajectory_and_telemetry(self, instance):
        sync_tel = Telemetry(MemorySink())
        psn_tel = Telemetry(MemorySink())
        sync = run_dgd(
            instance.costs,
            make_attack("gradient-reverse"),
            gradient_filter="cge",
            faulty_ids=FAULTY,
            iterations=60,
            seed=5,
            telemetry=sync_tel,
        )
        hardened = run_dgd(
            instance.costs,
            make_attack("gradient-reverse"),
            gradient_filter="cge",
            faulty_ids=FAULTY,
            iterations=60,
            seed=5,
            telemetry=psn_tel,
            fault_model=NetworkFaultModel(),
        )
        assert np.array_equal(sync.estimates, hardened.estimates)
        assert np.array_equal(sync.directions, hardened.directions)
        assert sync.eliminated == hardened.eliminated
        assert hardened.extra["resilience"]["stale_reuses"] == 0
        assert hardened.extra["resilience"]["stalled_rounds"] == 0
        # Telemetry round records (everything but timing) are identical too.
        assert _round_records(sync_tel) == _round_records(psn_tel)

    def test_server_with_crash_agent(self, instance):
        sync = run_dgd(
            instance.costs,
            make_attack("gradient-reverse"),
            gradient_filter="cge",
            faulty_ids=FAULTY,
            f=2,
            crash_rounds={5: 20},
            iterations=50,
            seed=5,
        )
        hardened = run_dgd(
            instance.costs,
            make_attack("gradient-reverse"),
            gradient_filter="cge",
            faulty_ids=FAULTY,
            f=2,
            crash_rounds={5: 20},
            iterations=50,
            seed=5,
            fault_model=NetworkFaultModel(),
        )
        assert np.array_equal(sync.estimates, hardened.estimates)
        assert sync.eliminated == hardened.eliminated == [5]

    def test_peer_to_peer(self, instance):
        base = run_peer_to_peer_dgd(
            instance.costs,
            make_filter("cge", f=F),
            faulty_ids=FAULTY,
            behavior=make_attack("gradient-reverse"),
            iterations=40,
            seed=5,
        )
        hardened = run_peer_to_peer_dgd(
            instance.costs,
            make_filter("cge", f=F),
            faulty_ids=FAULTY,
            behavior=make_attack("gradient-reverse"),
            iterations=40,
            seed=5,
            fault_model=NetworkFaultModel(),
        )
        assert np.array_equal(base.estimates, hardened.estimates)
        assert hardened.extra["degraded"]["stale_reuses"] == 0
        assert hardened.extra["degraded"]["zero_filled"] == 0


class TestChaosAcceptance:
    def test_cge_converges_and_no_honest_agent_eliminated(self, instance, x_H):
        baseline = run_dgd(
            instance.costs,
            make_attack("gradient-reverse"),
            gradient_filter="cge",
            faulty_ids=FAULTY,
            iterations=400,
            seed=5,
        )
        degraded = run_dgd(
            instance.costs,
            make_attack("gradient-reverse"),
            gradient_filter="cge",
            faulty_ids=FAULTY,
            iterations=400,
            seed=5,
            fault_model=_chaos_model(),
        )
        base_err = final_error(baseline, x_H)
        deg_err = final_error(degraded, x_H)
        # Degradation costs accuracy but stays within the fault-free
        # neighbourhood (a constant factor plus the staleness floor).
        assert deg_err < max(5.0 * base_err, 0.15)
        # No honest agent is ever permanently eliminated.
        assert degraded.eliminated == []
        resilience = degraded.extra["resilience"]
        assert resilience["quarantined_by_agent"].keys() <= {2}
        # The crash-recovery agent was suspected while down, then reinstated.
        assert 4 not in resilience["suspected"]
        assert resilience["reinstatements"] >= 1

    def test_chaos_run_is_exactly_replayable(self, instance):
        runs = [
            run_dgd(
                instance.costs,
                make_attack("gradient-reverse"),
                gradient_filter="cge",
                faulty_ids=FAULTY,
                iterations=80,
                seed=5,
                fault_model=_chaos_model(),
            )
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].estimates, runs[1].estimates)
        assert runs[0].extra["traffic"] == runs[1].extra["traffic"]
        assert runs[0].extra["resilience"] == runs[1].extra["resilience"]

    def test_peer_to_peer_under_chaos(self, instance, x_H):
        baseline = run_peer_to_peer_dgd(
            instance.costs,
            make_filter("cge", f=F),
            faulty_ids=FAULTY,
            behavior=make_attack("gradient-reverse"),
            iterations=300,
            seed=5,
        )
        degraded = run_peer_to_peer_dgd(
            instance.costs,
            make_filter("cge", f=F),
            faulty_ids=FAULTY,
            behavior=make_attack("gradient-reverse"),
            iterations=300,
            seed=5,
            fault_model=_chaos_model(),
        )
        assert degraded.agreement_verified
        base_err = float(np.linalg.norm(baseline.estimates[-1] - x_H))
        deg_err = float(np.linalg.norm(degraded.estimates[-1] - x_H))
        # Degradation stays within the fault-free neighbourhood: stale
        # reuse of agreed values barely perturbs the trajectory.
        assert deg_err < base_err + 0.05
        assert degraded.extra["degraded"]["quarantined"] > 0

    def test_total_blackout_stalls_instead_of_diverging(self, instance):
        model = NetworkFaultModel.uniform(
            range(N), FaultProfile(crash_round=0, recover_round=5), seed=3
        )
        trace = run_dgd(
            instance.costs,
            make_attack("gradient-reverse"),
            gradient_filter="cge",
            faulty_ids=FAULTY,
            iterations=30,
            seed=5,
            fault_model=model,
        )
        resilience = trace.extra["resilience"]
        assert resilience["stalled_rounds"] >= 5
        # The estimate holds still through the blackout.
        for t in range(5):
            assert np.array_equal(trace.estimates[t], trace.estimates[0])
            assert np.array_equal(trace.directions[t], np.zeros(D))
        # And the run recovers movement afterwards.
        assert not np.array_equal(trace.estimates[-1], trace.estimates[0])
        assert trace.eliminated == []


class TestCheckpointResume:
    def _config(self, path=None):
        return dict(
            gradient_filter="cge",
            faulty_ids=FAULTY,
            iterations=60,
            seed=5,
            fault_model=_chaos_model(),
            checkpoint_path=path,
            checkpoint_every=10,
        )

    def test_kill_and_resume_is_bit_identical(self, instance, tmp_path):
        ckpt = str(tmp_path / "run.ckpt.json")
        uninterrupted = run_dgd(
            instance.costs, make_attack("gradient-reverse"), **self._config()
        )

        class Killed(RuntimeError):
            pass

        def killer(t, _server):
            if t == 33:
                raise Killed()

        with pytest.raises(Killed):
            run_dgd(
                instance.costs,
                make_attack("gradient-reverse"),
                round_hook=killer,
                **self._config(ckpt),
            )
        resumed = run_dgd(
            instance.costs, make_attack("gradient-reverse"), **self._config(ckpt)
        )
        assert resumed.extra["resumed_from_round"] == 30
        assert np.array_equal(uninterrupted.estimates, resumed.estimates)
        assert np.array_equal(uninterrupted.directions, resumed.directions)

    def test_corrupt_checkpoint_restarts_fresh(self, instance, tmp_path):
        ckpt = tmp_path / "run.ckpt.json"
        clean = run_dgd(
            instance.costs, make_attack("gradient-reverse"), **self._config(str(ckpt))
        )
        ckpt.write_text(ckpt.read_text()[:-40])  # truncate → checksum mismatch
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            rerun = run_dgd(
                instance.costs,
                make_attack("gradient-reverse"),
                **self._config(str(ckpt)),
            )
        assert rerun.extra["resumed_from_round"] == 0
        assert np.array_equal(clean.estimates, rerun.estimates)

    def test_mismatched_configuration_is_rejected(self, instance, tmp_path):
        ckpt = str(tmp_path / "run.ckpt.json")
        run_dgd(instance.costs, make_attack("gradient-reverse"), **self._config(ckpt))
        other = dict(self._config(ckpt), seed=6)
        with pytest.warns(UserWarning, match="different configuration"):
            rerun = run_dgd(instance.costs, make_attack("gradient-reverse"), **other)
        assert rerun.extra["resumed_from_round"] == 0

    def test_completed_checkpoint_extends_into_longer_run(self, instance, tmp_path):
        ckpt = str(tmp_path / "run.ckpt.json")
        run_dgd(instance.costs, make_attack("gradient-reverse"), **self._config(ckpt))
        longer = dict(self._config(ckpt), iterations=80)
        extended = run_dgd(
            instance.costs, make_attack("gradient-reverse"), **longer
        )
        assert extended.extra["resumed_from_round"] == 60
        full = run_dgd(
            instance.costs,
            make_attack("gradient-reverse"),
            **dict(self._config(), iterations=80),
        )
        assert np.array_equal(extended.estimates, full.estimates)


class TestResilientServerUnits:
    def _server(self, policy=None, n=4, f=1):
        from repro.optimization.projections import BoxSet
        from repro.optimization.step_sizes import DiminishingStepSize

        return ResilientDGDServer(
            fixed_filter_factory(make_filter("cge", f=f)),
            DiminishingStepSize(c=0.1),
            BoxSet.centered(2, 10.0),
            np.zeros(2),
            n=n,
            f=f,
            policy=policy,
        )

    def _msg(self, sender, round_index, values):
        return GradientMessage(
            sender=sender, round_index=round_index, gradient=np.asarray(values, float)
        )

    def test_future_round_message_rejected(self):
        server = self._server()
        with pytest.raises(ProtocolViolationError):
            server.step_partial([self._msg(0, 3, [1.0, 1.0])])

    def test_duplicates_are_idempotent_in_step(self):
        policy = ResiliencePolicy(eliminate_on_silence=False, max_staleness=1)
        one = self._server(policy)
        two = self._server(policy)
        messages = [self._msg(i, 0, [1.0 + i, -1.0]) for i in range(4)]
        one.step_partial(messages)
        two.step_partial(messages + messages[:2])  # replayed copies
        assert np.array_equal(one.estimate, two.estimate)

    def test_quorum_stalls_and_partial_aggregates(self):
        policy = ResiliencePolicy(eliminate_on_silence=False, max_staleness=0)
        server = self._server(policy)
        before = server.estimate
        server.step_partial([self._msg(0, 0, [1.0, 1.0])])  # k=1 < quorum 2
        assert server.stalled_rounds == 1
        assert np.array_equal(server.estimate, before)
        # Three of four respond: partial aggregation moves the estimate.
        server.step_partial([self._msg(i, 1, [1.0, 1.0]) for i in range(3)])
        assert server.stalled_rounds == 1
        assert not np.array_equal(server.estimate, before)

    def test_suspicion_and_reinstatement(self):
        policy = ResiliencePolicy(
            eliminate_on_silence=False, max_staleness=0, suspicion_threshold=2
        )
        server = self._server(policy)
        for r in range(2):
            server.step_partial([self._msg(i, r, [1.0, 0.0]) for i in range(3)])
        assert server.suspected_agents == [3]
        server.step_partial(
            [self._msg(i, 2, [1.0, 0.0]) for i in range(4)]
        )
        assert server.suspected_agents == []
        assert server.liveness.reinstatements == 1

    def test_conflict_elimination_when_policy_trusts_it(self):
        policy = ResiliencePolicy(
            eliminate_on_silence=False, eliminate_on_conflict=True, max_staleness=1
        )
        server = self._server(policy)
        messages = [self._msg(i, 0, [1.0, 0.0]) for i in range(4)]
        messages.append(self._msg(0, 0, [9.0, 9.0]))  # equivocation by agent 0
        server.step_partial(messages)
        assert server.eliminated_agents == [0]
        assert server.n == 3 and server.f == 0

    def test_validate_payloads_flag_on_synchronous_server(self):
        from repro.optimization.projections import BoxSet
        from repro.optimization.step_sizes import DiminishingStepSize

        server = DGDServer.with_fixed_filter(
            make_filter("cge", f=1),
            DiminishingStepSize(c=0.1),
            BoxSet.centered(2, 10.0),
            np.zeros(2),
            n=2,
            f=1,
        )
        server.validate_payloads = True
        bad = [
            self._msg(0, 0, [np.nan, 0.0]),
            self._msg(1, 0, [1.0, 0.0]),
        ]
        with pytest.raises(ProtocolViolationError):
            server.step(bad)

    def test_checkpoint_restore_round_trip(self):
        policy = ResiliencePolicy(eliminate_on_silence=False, max_staleness=2)
        server = self._server(policy)
        for r in range(3):
            server.step_partial([self._msg(i, r, [1.0, float(i)]) for i in range(3)])
        clone = self._server(policy)
        clone.restore(server.checkpoint())
        assert np.array_equal(clone.estimate, server.estimate)
        assert clone.round_index == server.round_index
        assert clone.resilience_summary() == server.resilience_summary()
        # Both servers evolve identically afterwards.
        nxt = [self._msg(i, 3, [0.5, 0.5]) for i in range(4)]
        assert np.array_equal(server.step_partial(nxt), clone.step_partial(nxt))


class TestTraceAccounting:
    def test_drop_totals_round_trip_through_npz(self, instance, tmp_path):
        model = NetworkFaultModel.uniform(
            range(N), FaultProfile(drop_prob=0.2), seed=2
        )
        trace = run_dgd(
            instance.costs,
            make_attack("gradient-reverse"),
            gradient_filter="cge",
            faulty_ids=FAULTY,
            iterations=30,
            seed=5,
            fault_model=model,
        )
        assert trace.messages_dropped > 0
        assert trace.bytes_dropped > 0
        path = save_trace(trace, tmp_path / "trace.npz")
        loaded = load_trace(path)
        assert loaded.messages_dropped == trace.messages_dropped
        assert loaded.bytes_dropped == trace.bytes_dropped

    def test_synchronous_trace_reports_zero_drops(self, instance):
        trace = run_dgd(
            instance.costs,
            make_attack("gradient-reverse"),
            gradient_filter="cge",
            faulty_ids=FAULTY,
            iterations=10,
            seed=5,
        )
        assert trace.messages_dropped == 0
        assert trace.bytes_dropped == 0
