"""Tests for the sensing and learning problem generators."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.problems.learning import label_flipped_cost, make_learning_instance
from repro.problems.meeting import make_meeting_instance
from repro.problems.sensing import make_sensing_instance


class TestSensing:
    def test_sparse_observability_by_design(self):
        instance = make_sensing_instance(n=6, d=2, f=1, noise_std=0.0)
        assert instance.is_sparse_observable(f=1)

    def test_multi_row_sensors(self):
        instance = make_sensing_instance(n=5, d=4, f=1, rows_per_sensor=2, noise_std=0.0)
        assert instance.observation_matrices[0].shape == (2, 4)
        assert instance.is_sparse_observable(f=1)

    def test_noiseless_state_recovery(self):
        instance = make_sensing_instance(n=6, d=2, f=1, noise_std=0.0)
        for honest in ([0, 1, 2, 3], [2, 3, 4, 5]):
            assert np.allclose(instance.honest_state_estimate(honest), instance.x_star)

    def test_sensing_costs_equal_residual_norms(self):
        instance = make_sensing_instance(n=5, d=2, f=1, noise_std=0.05, seed=1)
        x = np.array([0.5, 0.5])
        for i, cost in enumerate(instance.costs):
            H, y = instance.observation_matrices[i], instance.observations[i]
            assert cost.value(x) == pytest.approx(float(np.sum((H @ x - y) ** 2)))

    def test_redundancy_equivalence_with_sparse_observability(self):
        from repro.core.redundancy import check_2f_redundancy

        instance = make_sensing_instance(n=6, d=2, f=1, noise_std=0.0)
        assert check_2f_redundancy(instance.costs, f=1) == instance.is_sparse_observable(1)

    def test_infeasible_configuration_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_sensing_instance(n=5, d=4, f=2, rows_per_sensor=1)


class TestLearning:
    def test_shapes_and_labels(self):
        instance = make_learning_instance(n=4, d=3, samples_per_agent=20, seed=0)
        assert instance.n == 4
        assert instance.dimension == 3
        for Z, y in zip(instance.features, instance.labels):
            assert Z.shape == (20, 3)
            assert set(np.unique(y)) <= {-1.0, 1.0}
            # Both classes present locally.
            assert len(np.unique(y)) == 2

    def test_iid_data_is_learnable(self):
        instance = make_learning_instance(n=4, d=3, samples_per_agent=100, margin=3.0, seed=0)
        # The Bayes-ish direction along the first axis separates well.
        direction = np.zeros(3)
        direction[0] = 1.0
        assert instance.accuracy(direction) > 0.9

    def test_heterogeneity_skews_class_balance(self):
        iid = make_learning_instance(n=6, d=2, samples_per_agent=40, heterogeneity=0.0, seed=1)
        skewed = make_learning_instance(n=6, d=2, samples_per_agent=40, heterogeneity=1.0, seed=1)

        def balance_spread(instance):
            fractions = [float(np.mean(y == 1.0)) for y in instance.labels]
            return max(fractions) - min(fractions)

        assert balance_spread(skewed) > balance_spread(iid)

    def test_hinge_loss_variant(self):
        instance = make_learning_instance(n=3, d=2, samples_per_agent=10, loss="hinge", seed=0)
        x = np.zeros(2)
        assert all(np.isfinite(c.value(x)) for c in instance.costs)

    def test_label_flip_cost_flips_labels_only(self):
        instance = make_learning_instance(
            n=3, d=2, samples_per_agent=10, regularization=0.1, seed=0
        )
        flipped = label_flipped_cost(instance, agent=0)
        # Flipped cost evaluated on the original data with negated labels.
        x = np.array([0.4, -0.2])
        from repro.optimization.cost_functions import LogisticCost

        reference = LogisticCost(
            instance.features[0], -instance.labels[0], regularization=0.1
        )
        assert flipped.value(x) == pytest.approx(reference.value(x))
        assert np.allclose(flipped.gradient(x), reference.gradient(x))

    def test_label_flip_attack_reports_flipped_gradients(self):
        from repro.attacks.base import AttackContext
        from repro.problems.learning import label_flip_attack

        instance = make_learning_instance(
            n=3, d=2, samples_per_agent=10, regularization=0.1, seed=0
        )
        x = np.array([0.4, -0.2])
        behavior = label_flip_attack(instance, [0])
        context = AttackContext(
            round_index=0,
            estimate=x,
            honest_gradients=np.zeros((2, 2)),
            honest_ids=[1, 2],
            faulty_ids=[0],
            faulty_costs=[instance.costs[0]],
            rng=np.random.default_rng(0),
        )
        forged = behavior(context)[0]
        truth = label_flipped_cost(instance, 0).gradient(x)
        assert np.allclose(forged, truth, atol=1e-12)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            make_learning_instance(n=0, d=2)
        with pytest.raises(InvalidParameterError):
            make_learning_instance(n=2, d=2, samples_per_agent=1)
        with pytest.raises(InvalidParameterError):
            make_learning_instance(n=2, d=2, loss="squared")
        with pytest.raises(InvalidParameterError):
            label_flipped_cost(make_learning_instance(n=2, d=2, seed=0), agent=9)


class TestMeeting:
    def test_common_location_is_fully_redundant(self):
        from repro.core.redundancy import check_2f_redundancy

        instance = make_meeting_instance(n=5, d=2, spread=0.0, common_location=[1.0, 1.0])
        assert check_2f_redundancy(instance.costs, f=2)
        assert np.allclose(instance.honest_meeting_point(range(5)), [1.0, 1.0])

    def test_weighted_centroid(self):
        instance = make_meeting_instance(n=2, d=1, spread=0.0)
        # Override locations directly for a hand-checkable centroid.
        instance.locations[:] = [[0.0], [3.0]]
        instance.weights[:] = [1.0, 2.0]
        assert instance.honest_meeting_point([0, 1]) == pytest.approx(2.0)

    def test_spread_breaks_redundancy(self):
        from repro.core.redundancy import measure_redundancy_margin

        instance = make_meeting_instance(n=5, d=2, spread=2.0, seed=0)
        assert measure_redundancy_margin(instance.costs, 1).margin > 0.1

    def test_invalid_weights(self):
        with pytest.raises(InvalidParameterError):
            make_meeting_instance(n=3, d=2, weights=[1.0, -1.0, 1.0])
