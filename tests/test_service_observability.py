"""Service observability: /metrics, extended health, tracing, shutdown flush.

In-process tests reuse the live-service harness idiom from
``test_service.py``; the graceful-shutdown test runs ``repro serve`` as a
subprocess and SIGTERMs it mid-job to prove streams and the metrics
snapshot are flushed.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.exceptions import ServiceError
from repro.observability.metrics import parse_prometheus_text
from repro.observability.perf import build_span_tree, collect_trace_records
from repro.service import ServiceClient

from tests.test_service import ServiceHarness

SWEEP_PARAMS = {
    "filters": ["cge"],
    "attacks": ["zero"],
    "fault_counts": [1],
    "num_seeds": 2,
    "n": 4,
    "d": 1,
    "iterations": 25,
    "master_seed": 7,
}


@pytest.fixture
def harness(tmp_path):
    h = ServiceHarness(tmp_path / "state")
    yield h
    h.stop()


def _counters_only(samples):
    """Samples that must be monotone between scrapes (drop gauges)."""
    gauge_prefixes = ("repro_uptime_seconds", "repro_queue_depth",
                      "repro_jobs{", "repro_pool_")
    return {key: value for key, value in samples.items()
            if not key.startswith(gauge_prefixes)}


class TestMetricsEndpoint:
    def test_scrapes_before_during_after_job(self, harness):
        before = parse_prometheus_text(harness.client.metrics())
        assert before["repro_uptime_seconds"] >= 0

        record = harness.client.submit("sweep", dict(SWEEP_PARAMS))
        during = parse_prometheus_text(harness.client.metrics())
        final = harness.client.wait(record["job_id"], timeout=120)
        assert final["state"] == "done"
        after = parse_prometheus_text(harness.client.metrics())

        # counters are monotone across all three scrapes
        for earlier, later in ((before, during), (during, after)):
            for key, value in _counters_only(earlier).items():
                assert later.get(key, 0) >= value

        assert after['repro_jobs_submitted_total{kind="sweep"}'] == 1
        assert after[
            'repro_jobs_completed_total{kind="sweep",state="done"}'] == 1
        assert after[
            'repro_job_latency_seconds_count{kind="sweep"}'] == 1
        assert after['repro_job_latency_seconds_sum{kind="sweep"}'] > 0
        assert after['repro_jobs{state="done"}'] == 1
        # the full bucket ladder is present and cumulative
        buckets = [value for key, value in sorted(after.items())
                   if key.startswith("repro_job_latency_seconds_bucket")]
        assert buckets and max(buckets) == after[
            'repro_job_latency_seconds_count{kind="sweep"}']

    def test_request_counter_partitions_by_path(self, harness):
        harness.client.healthz()
        harness.client.stats()
        samples = parse_prometheus_text(harness.client.metrics())
        assert samples[
            'repro_http_requests_total{method="GET",path="healthz"}'] >= 1
        assert samples[
            'repro_http_requests_total{method="GET",path="stats"}'] >= 1

    def test_admission_rejections_counted_by_reason(self, harness):
        with pytest.raises(ServiceError):
            harness.client.submit("nonsense", {})
        samples = parse_prometheus_text(harness.client.metrics())
        assert samples[
            'repro_admission_rejected_total{reason="invalid-spec"}'] == 1

    def test_cache_counters_track_cross_job_hits(self, harness):
        first = harness.client.submit("sweep", dict(SWEEP_PARAMS))
        harness.client.wait(first["job_id"], timeout=120)
        second = harness.client.submit("sweep", dict(SWEEP_PARAMS))
        harness.client.wait(second["job_id"], timeout=120)
        samples = parse_prometheus_text(harness.client.metrics())
        assert samples["repro_cache_misses_total"] == 2
        assert samples["repro_cache_hits_total"] == 2
        health = harness.client.healthz()
        assert health["cache"]["hits"] == 2
        assert health["cache"]["hit_ratio"] == pytest.approx(0.5)


class TestExtendedHealth:
    def test_healthz_carries_cache_and_pool_health(self, harness):
        health = harness.client.healthz()
        assert health["ok"] is True
        assert health["uptime"] >= 0
        assert health["cache"] == {
            "hits": 0, "misses": 0, "hit_ratio": None,
        }
        assert health["pool"]["shared"] is False  # harness is sequential
        assert health["pool"]["live_workers"] == 0

    def test_stats_carries_uptime_and_hit_ratio(self, harness):
        record = harness.client.submit("sweep", dict(SWEEP_PARAMS))
        harness.client.wait(record["job_id"], timeout=120)
        stats = harness.client.stats()
        assert stats["uptime"] > 0
        assert stats["cache"]["misses"] == 2
        assert stats["cache"]["hit_ratio"] == 0.0
        assert stats["cache"]["cells"] == 2
        assert {"shared", "max_workers", "rebuilds",
                "live_workers"} <= set(stats["pool"])


class TestServedJobTracing:
    def test_sweep_job_reconstructs_full_span_tree(self, harness, tmp_path):
        params = dict(SWEEP_PARAMS, telemetry=True)
        record = harness.client.submit("sweep", params)
        final = harness.client.wait(record["job_id"], timeout=120)
        assert final["state"] == "done"
        job_dir = os.path.join(
            str(harness.config.state_dir), "jobs", record["job_id"]
        )
        roots = build_span_tree(collect_trace_records(job_dir))
        assert [root.name for root in roots] == ["job"]
        job = roots[0]
        assert [child.name for child in job.children] == ["sweep"]
        chunk_names = [c.name for c in job.children[0].children]
        assert chunk_names and all(
            name.startswith("chunk-") for name in chunk_names
        )
        names = [node.name for node in job.walk()]
        assert "group-f1-cge-zero" in names
        assert "run" in names and "round" in names
        # deterministic ids: the root equals the record's trace id root
        from repro.observability.tracing import TraceContext

        expected = TraceContext.root(record["trace_id"], name="job")
        assert job.span_id == expected.span_id
        assert job.trace_id == record["trace_id"]

    def test_run_job_stream_is_traced(self, harness):
        record = harness.client.submit(
            "run", {"n": 6, "d": 2, "f": 1, "iterations": 30, "seed": 4})
        final = harness.client.wait(record["job_id"], timeout=120)
        assert final["state"] == "done"
        events = list(harness.client.events(record["job_id"]))
        spans = [e for e in events if e.get("event") == "span"]
        assert any(s["name"] == "job" for s in spans)
        assert all(s["trace_id"] == record["trace_id"] for s in spans)

    def test_job_records_carry_deterministic_trace_id(self, harness):
        record = harness.client.submit("sweep", dict(SWEEP_PARAMS))
        assert len(record["trace_id"]) == 32
        fetched = harness.client.job(record["job_id"])
        assert fetched["trace_id"] == record["trace_id"]
        harness.client.wait(record["job_id"], timeout=120)


def _start_server(state_dir, sock):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--state-dir",
         str(state_dir), "--job-slots", "1", "--sequential"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    client = ServiceClient(socket_path=sock, timeout=5)
    deadline = time.monotonic() + 30
    while True:
        try:
            client.healthz()
            return proc, client
        except ServiceError:
            if proc.poll() is not None or time.monotonic() > deadline:
                output = proc.stdout.read().decode()
                proc.kill()
                raise RuntimeError(f"server did not come up:\n{output}")
            time.sleep(0.05)


class TestGracefulShutdownFlush:
    def test_sigterm_mid_job_flushes_streams_and_metrics(self, tmp_path):
        state_dir = tmp_path / "state"
        sock = os.path.join(str(state_dir), "repro.sock")
        proc, client = _start_server(state_dir, sock)
        try:
            record = client.submit(
                "run",
                {"n": 6, "d": 2, "f": 1, "iterations": 4000, "seed": 1},
            )
            deadline = time.monotonic() + 30
            while client.job(record["job_id"])["state"] != "running":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.05)
            time.sleep(0.3)  # let it get some rounds in
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        # the registry snapshot was written on the way down
        metrics_path = os.path.join(str(state_dir), "metrics.json")
        assert os.path.exists(metrics_path)
        with open(metrics_path) as handle:
            snapshot = json.load(handle)
        assert snapshot["repro_jobs_submitted_total"]["kind"] == "counter"
        assert snapshot["repro_jobs_submitted_total"]["values"][
            'kind="run"'] == 1

        # the interrupted job's stream was flushed: every line parses and
        # the trailing summary/counters records made it out
        events_path = os.path.join(
            str(state_dir), "jobs", record["job_id"], "events.jsonl")
        assert os.path.exists(events_path)
        events = []
        with open(events_path) as handle:
            for line in handle:
                if line.strip():
                    events.append(json.loads(line))
        kinds = {event.get("event") for event in events}
        assert "summary" in kinds
        assert "round" in kinds
