"""Tests for repro.optimization.cost_functions."""

import numpy as np
import pytest

from repro.core.geometry import AffineSubspace, Singleton
from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.optimization.cost_functions import (
    HuberCost,
    LeastSquaresCost,
    LogisticCost,
    MeanCost,
    QuadraticCost,
    ScaledCost,
    SmoothedHingeCost,
    SumCost,
    TranslatedQuadratic,
    aggregate,
)


def numerical_gradient(cost, x, h=1e-6):
    x = np.asarray(x, dtype=float)
    grad = np.zeros_like(x)
    for k in range(x.size):
        e = np.zeros_like(x)
        e[k] = h
        grad[k] = (cost.value(x + e) - cost.value(x - e)) / (2 * h)
    return grad


class TestQuadraticCost:
    def test_value_and_gradient(self):
        cost = QuadraticCost(np.diag([2.0, 4.0]), np.array([1.0, -1.0]), c=3.0)
        x = np.array([1.0, 2.0])
        assert cost.value(x) == pytest.approx(0.5 * (2 + 16) + (1 - 2) + 3)
        assert np.allclose(cost.gradient(x), [2 * 1 + 1, 4 * 2 - 1])

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(0)
        M = rng.normal(size=(3, 3))
        cost = QuadraticCost(M @ M.T, rng.normal(size=3))
        x = rng.normal(size=3)
        assert np.allclose(cost.gradient(x), numerical_gradient(cost, x), atol=1e-4)

    def test_argmin_unique(self):
        cost = QuadraticCost(np.diag([2.0, 4.0]), np.array([-2.0, -4.0]))
        argmin = cost.argmin_set()
        assert isinstance(argmin, Singleton)
        assert np.allclose(argmin.point, [1.0, 1.0])

    def test_argmin_flat_direction(self):
        # P singular with q in range: affine subspace of minimizers.
        cost = QuadraticCost(np.diag([2.0, 0.0]), np.array([-2.0, 0.0]))
        argmin = cost.argmin_set()
        assert isinstance(argmin, AffineSubspace)
        assert argmin.distance_to([1.0, 77.0]) == pytest.approx(0.0, abs=1e-8)

    def test_unbounded_below_rejected(self):
        cost = QuadraticCost(np.diag([2.0, 0.0]), np.array([0.0, 1.0]))
        with pytest.raises(InvalidParameterError, match="unbounded"):
            cost.argmin_set()

    def test_indefinite_p_rejected(self):
        with pytest.raises(InvalidParameterError):
            QuadraticCost(np.diag([1.0, -1.0]), np.zeros(2))

    def test_non_square_p_rejected(self):
        with pytest.raises(DimensionMismatchError):
            QuadraticCost(np.zeros((2, 3)), np.zeros(2))

    def test_constants(self):
        cost = QuadraticCost(np.diag([1.0, 5.0]), np.zeros(2))
        assert cost.strong_convexity() == pytest.approx(1.0)
        assert cost.smoothness() == pytest.approx(5.0)


class TestLeastSquares:
    def test_matches_residual_form(self):
        A = np.array([[1.0, 2.0], [0.0, 1.0]])
        b = np.array([1.0, 1.0])
        cost = LeastSquaresCost(A, b)
        x = np.array([0.5, -0.5])
        assert cost.value(x) == pytest.approx(float(np.sum((A @ x - b) ** 2)))
        assert np.allclose(cost.residual(x), A @ x - b)

    def test_argmin_is_lstsq_solution(self):
        A = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        b = np.array([1.0, 2.0, 3.0])
        expected, *_ = np.linalg.lstsq(A, b, rcond=None)
        argmin = LeastSquaresCost(A, b).argmin_set()
        assert np.allclose(argmin.project(np.zeros(2)), expected, atol=1e-8)

    def test_single_row_argmin_is_a_line(self):
        cost = LeastSquaresCost(np.array([[1.0, 1.0]]), np.array([2.0]))
        argmin = cost.argmin_set()
        assert isinstance(argmin, AffineSubspace)
        assert argmin.contains([1.0, 1.0])
        assert argmin.contains([2.0, 0.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            LeastSquaresCost(np.eye(2), np.zeros(3))


class TestLogistic:
    def _cost(self, reg=0.1):
        Z = np.array([[1.0, 0.0], [-1.0, 0.5], [0.5, 1.0]])
        y = np.array([1.0, -1.0, 1.0])
        return LogisticCost(Z, y, regularization=reg)

    def test_gradient_matches_finite_differences(self):
        cost = self._cost()
        x = np.array([0.3, -0.7])
        assert np.allclose(cost.gradient(x), numerical_gradient(cost, x), atol=1e-5)

    def test_hessian_positive_definite_with_regularization(self):
        cost = self._cost(reg=0.1)
        H = cost.hessian(np.array([0.1, 0.1]))
        assert np.all(np.linalg.eigvalsh(H) >= 0.1 - 1e-9)

    def test_value_stable_for_large_margins(self):
        cost = self._cost(reg=0.0)
        assert np.isfinite(cost.value(np.array([1000.0, 1000.0])))
        assert np.isfinite(cost.value(np.array([-1000.0, -1000.0])))

    def test_invalid_labels_rejected(self):
        with pytest.raises(InvalidParameterError):
            LogisticCost(np.ones((2, 2)), np.array([0.0, 1.0]))

    def test_empty_dataset_rejected(self):
        with pytest.raises(InvalidParameterError):
            LogisticCost(np.zeros((0, 2)), np.zeros(0))


class TestSmoothedHinge:
    def test_gradient_matches_finite_differences(self):
        Z = np.array([[1.0, -0.5], [0.5, 1.5], [-1.0, 0.3]])
        y = np.array([1.0, -1.0, 1.0])
        cost = SmoothedHingeCost(Z, y, regularization=0.05)
        for x in (np.array([0.2, 0.4]), np.array([-2.0, 3.0])):
            assert np.allclose(cost.gradient(x), numerical_gradient(cost, x), atol=1e-5)

    def test_zero_loss_beyond_margin(self):
        Z = np.array([[1.0, 0.0]])
        y = np.array([1.0])
        cost = SmoothedHingeCost(Z, y)
        assert cost.value(np.array([2.0, 0.0])) == pytest.approx(0.0)
        assert np.allclose(cost.gradient(np.array([2.0, 0.0])), 0.0)


class TestHuber:
    def test_quadratic_region(self):
        cost = HuberCost([0.0, 0.0], delta=1.0)
        assert cost.value([0.5, 0.0]) == pytest.approx(0.125)
        assert np.allclose(cost.gradient([0.5, 0.0]), [0.5, 0.0])

    def test_linear_region(self):
        cost = HuberCost([0.0], delta=1.0)
        assert cost.value([3.0]) == pytest.approx(1.0 * (3.0 - 0.5))
        assert np.allclose(cost.gradient([3.0]), [1.0])

    def test_argmin(self):
        cost = HuberCost([2.0, -1.0])
        assert np.allclose(cost.argmin_set().point, [2.0, -1.0])

    def test_gradient_matches_finite_differences(self):
        cost = HuberCost([1.0, -1.0], delta=0.7)
        for x in ([1.2, -0.8], [5.0, -5.0]):
            assert np.allclose(
                cost.gradient(x), numerical_gradient(cost, np.asarray(x)), atol=1e-5
            )


class TestCombinators:
    def test_sum_of_quadratics_is_quadratic(self):
        costs = [TranslatedQuadratic([0.0, 0.0]), TranslatedQuadratic([2.0, 2.0])]
        total = SumCost(costs)
        assert total.is_quadratic
        assert np.allclose(total.argmin_set().point, [1.0, 1.0])

    def test_sum_value_and_gradient_match_members(self):
        costs = [TranslatedQuadratic([1.0]), TranslatedQuadratic([3.0])]
        total = SumCost(costs)
        x = np.array([0.0])
        assert total.value(x) == pytest.approx(sum(c.value(x) for c in costs))
        assert np.allclose(total.gradient(x), sum(c.gradient(x) for c in costs))

    def test_scaled_cost_preserves_argmin(self):
        base = TranslatedQuadratic([4.0, 4.0])
        scaled = ScaledCost(base, 7.0)
        assert np.allclose(scaled.argmin_set().point, [4.0, 4.0])
        assert scaled.value([0.0, 0.0]) == pytest.approx(7.0 * base.value([0.0, 0.0]))

    def test_mean_cost_matches_scaled_sum(self):
        costs = [TranslatedQuadratic([0.0]), TranslatedQuadratic([2.0])]
        mean = MeanCost(costs)
        assert mean.value([1.0]) == pytest.approx(
            0.5 * sum(c.value([1.0]) for c in costs)
        )

    def test_sum_mixed_with_non_quadratic(self):
        total = SumCost([HuberCost([0.0]), TranslatedQuadratic([0.0])])
        assert not total.is_quadratic
        assert np.isfinite(total.value([1.0]))
        with pytest.raises(NotImplementedError):
            total.argmin_set()

    def test_operator_overloads(self):
        a, b = TranslatedQuadratic([0.0]), TranslatedQuadratic([2.0])
        combined = a + b
        assert isinstance(combined, SumCost)
        doubled = 2.0 * a
        assert isinstance(doubled, ScaledCost)
        assert doubled.value([1.0]) == pytest.approx(2.0 * a.value([1.0]))

    def test_aggregate_selects_indices(self):
        costs = [TranslatedQuadratic([float(i)]) for i in range(4)]
        total = aggregate(costs, [1, 3])
        assert np.allclose(total.argmin_set().project(np.zeros(1)), [2.0])

    def test_aggregate_all(self):
        costs = [TranslatedQuadratic([0.0]), TranslatedQuadratic([4.0])]
        assert np.allclose(aggregate(costs).argmin_set().point, [2.0])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            SumCost([TranslatedQuadratic([0.0]), TranslatedQuadratic([0.0, 0.0])])

    def test_empty_sum_rejected(self):
        with pytest.raises(InvalidParameterError):
            SumCost([])


class TestHasClosedForm:
    def test_flags(self):
        assert TranslatedQuadratic([0.0]).has_closed_form_argmin
        assert HuberCost([0.0]).has_closed_form_argmin
        assert not LogisticCost(np.ones((1, 1)), np.array([1.0])).has_closed_form_argmin
