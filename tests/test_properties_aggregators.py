"""Property-based tests (hypothesis) for gradient filters.

These pin down the algebraic invariants every filter must satisfy:
permutation invariance (agent ids carry no information), appropriate
equivariances, and per-filter robustness bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.aggregators import available_filters, make_filter
from repro.aggregators.cge import ComparativeGradientElimination
from repro.aggregators.trimmed_mean import CoordinateWiseTrimmedMean

#: Filters whose output is a deterministic function of the *multiset* of
#: inputs. Excluded: clipping (stateful across calls), mom/gmom (grouping is
#: positional by construction), bulyan (its sequential Krum selection
#: tie-breaks by index, so duplicate rows can select differently after a
#: permutation).
#: Selection-based filters (CGE, Krum family) tie-break by row index —
#: the paper itself says "ties broken arbitrarily" — so inputs with tied
#: norms/scores may resolve differently after a permutation; they are
#: checked separately on tie-free inputs.
PERMUTATION_INVARIANT = [
    name
    for name in available_filters()
    if name not in ("clipping", "mom", "gmom", "bulyan", "krum", "multikrum", "cge")
]


def gradient_matrices(min_rows=5, max_rows=9, dim=3):
    return arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_rows, max_rows), st.just(dim)
        ),
        elements=st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False),
    )


@settings(max_examples=25, deadline=None)
@given(gradients=gradient_matrices())
@pytest.mark.parametrize("name", PERMUTATION_INVARIANT)
def test_permutation_invariance(name, gradients):
    """Shuffling the rows never changes the aggregate."""
    gradient_filter = make_filter(name, f=1)
    rng = np.random.default_rng(0)
    permuted = gradients[rng.permutation(gradients.shape[0])]
    original = gradient_filter(gradients)
    shuffled = gradient_filter(permuted)
    assert np.allclose(original, shuffled, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
@pytest.mark.parametrize("name", ["krum", "multikrum", "cge"])
def test_selection_filters_permutation_invariance_on_distinct_rows(name, seed):
    """With tie-free inputs, selection-based filters are order-free."""
    rng = np.random.default_rng(seed)
    gradients = rng.normal(size=(7, 3))
    gradient_filter = make_filter(name, f=1)
    permuted = gradients[rng.permutation(7)]
    assert np.allclose(
        gradient_filter(gradients), gradient_filter(permuted), atol=1e-8
    )


@settings(max_examples=25, deadline=None)
@given(gradients=gradient_matrices())
@pytest.mark.parametrize("name", ["average", "cwtm", "median"])
def test_translation_equivariance(name, gradients):
    """Mean-like filters commute with a common translation of all inputs.

    (CGE/sum are deliberately absent: a shift of every input by ``v``
    shifts a sum-scale output by ``(n − f) v`` and can change *which* rows
    CGE keeps, so the property simply does not apply to them.)
    """
    gradient_filter = make_filter(name, f=1)
    shift = np.array([3.0, -1.0, 0.5])
    shifted = gradient_filter(gradients + shift)
    assert np.allclose(shifted, gradient_filter(gradients) + shift, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(gradients=gradient_matrices(), scale=st.floats(0.1, 10.0))
@pytest.mark.parametrize("name", ["average", "cwtm", "median", "cge", "sum", "mom"])
def test_positive_scale_equivariance(name, gradients, scale):
    """Scaling every input by c > 0 scales the output by c."""
    gradient_filter = make_filter(name, f=1)
    assert np.allclose(
        gradient_filter(scale * gradients),
        scale * gradient_filter(gradients),
        atol=1e-6 * max(1.0, scale),
    )


@settings(max_examples=30, deadline=None)
@given(gradients=gradient_matrices())
def test_cwtm_output_in_coordinate_envelope(gradients):
    """Trimmed mean stays inside the per-coordinate input range."""
    out = CoordinateWiseTrimmedMean(f=1)(gradients)
    assert np.all(out >= gradients.min(axis=0) - 1e-9)
    assert np.all(out <= gradients.max(axis=0) + 1e-9)


@settings(max_examples=30, deadline=None)
@given(gradients=gradient_matrices())
def test_cge_keeps_exactly_n_minus_f(gradients):
    cge = ComparativeGradientElimination(f=2)
    kept = cge.kept_indices(gradients)
    assert kept.shape[0] == gradients.shape[0] - 2
    norms = np.linalg.norm(gradients, axis=1)
    dropped = sorted(set(range(gradients.shape[0])) - set(kept.tolist()))
    # Every dropped row's norm is >= every kept row's norm.
    if dropped:
        assert norms[dropped].min() >= norms[kept].max() - 1e-12


@settings(max_examples=30, deadline=None)
@given(gradients=gradient_matrices())
def test_cge_norm_bound(gradients):
    """||CGE(g)|| <= Σ of the n−f smallest norms (triangle inequality)."""
    cge = ComparativeGradientElimination(f=2)
    out = cge(gradients)
    norms = np.sort(np.linalg.norm(gradients, axis=1))
    bound = norms[: gradients.shape[0] - 2].sum()
    assert np.linalg.norm(out) <= bound + 1e-9


@settings(max_examples=20, deadline=None)
@given(
    honest=arrays(
        dtype=np.float64, shape=(5, 3),
        elements=st.floats(-1.0, 1.0, allow_nan=False, allow_infinity=False),
    ),
    magnitude=st.floats(1e3, 1e9),
)
@pytest.mark.parametrize("name", ["cge", "cwtm", "median", "geomed", "krum", "mom"])
def test_single_large_outlier_bounded_influence(name, honest, magnitude):
    """A single arbitrarily-large Byzantine gradient cannot blow up the output.

    The output under attack stays within a constant of the honest inputs'
    scale — the defining robustness property plain averaging lacks.
    """
    gradient_filter = make_filter(name, f=1)
    attacked = np.vstack([honest, magnitude * np.ones((1, 3))])
    out = gradient_filter(attacked)
    honest_scale = np.abs(honest).max() + 1.0
    assert np.linalg.norm(out) <= 10.0 * honest_scale


@settings(max_examples=20, deadline=None)
@given(gradients=gradient_matrices(min_rows=6, max_rows=8))
def test_identical_inputs_fixed_point(gradients):
    """When every agent sends the same vector v, mean-scale filters return v."""
    row = gradients[0]
    identical = np.tile(row, (gradients.shape[0], 1))
    for name in ("average", "cwtm", "median", "geomed", "krum", "multikrum", "mom", "gmom"):
        out = make_filter(name, f=1)(identical)
        assert np.allclose(out, row, atol=1e-6), name
