"""Equivalence suite for the vectorized multi-run DGD engine.

The batch engine's contract is *bit-identity*: for every supported
configuration, ``run_dgd_batch(costs, behavior, config, seeds)[k]`` must
reproduce ``run_dgd(costs, behavior, config, seed=seeds[k])`` exactly —
same estimates, same directions, same accounting — not merely to within a
tolerance. These tests pin that contract for every regression attack and
the vectorized filters, check the fallback paths, and property-test the
batched filter kernels against their scalar counterparts (including
non-finite inputs, which the sanitization layer must neutralize
identically).
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.aggregators.cge import ComparativeGradientElimination
from repro.aggregators.clipping import CenteredClipping
from repro.aggregators.mean import Average, TrimmedSum
from repro.aggregators.median import CoordinateWiseMedian
from repro.aggregators.registry import make_filter
from repro.aggregators.trimmed_mean import CoordinateWiseTrimmedMean
from repro.attacks.registry import make_attack
from repro.exceptions import InvalidParameterError
from repro.experiments.common import PAPER_X0, REGRESSION_ATTACKS
from repro.optimization.cost_functions import ScaledCost, TranslatedQuadratic
from repro.problems.linear_regression import make_redundant_regression
from repro.system.batch import batch_unsupported_reason, run_dgd_batch
from repro.system.runner import DGDConfig, run_dgd

SEEDS = [3, 17, 92]
VECTORIZED_FILTERS = ("cge", "cwtm", "median", "average", "sum")


@pytest.fixture(scope="module")
def instance():
    return make_redundant_regression(n=6, d=2, f=1, noise_std=0.02, seed=20200803)


def assert_traces_identical(sequential, batched):
    assert np.array_equal(sequential.estimates, batched.estimates)
    assert np.array_equal(sequential.directions, batched.directions)
    assert sequential.honest_ids == batched.honest_ids
    assert sequential.faulty_ids == batched.faulty_ids
    assert sequential.eliminated == batched.eliminated
    assert sequential.crash_ids == batched.crash_ids
    assert sequential.messages_delivered == batched.messages_delivered
    assert sequential.bytes_delivered == batched.bytes_delivered
    assert sequential.filter_name == batched.filter_name


class TestTraceEquivalence:
    @pytest.mark.parametrize("attack", REGRESSION_ATTACKS)
    @pytest.mark.parametrize("filter_name", ("cge", "cwtm", "median"))
    def test_attacked_runs_bit_identical(self, instance, attack, filter_name):
        config = DGDConfig(
            iterations=60, gradient_filter=filter_name, faulty_ids=(0,), f=1,
            x0=PAPER_X0,
        )
        behavior = make_attack(attack)
        sequential = [run_dgd(instance.costs, behavior, config, seed=s) for s in SEEDS]
        batched = run_dgd_batch(instance.costs, behavior, config, seeds=SEEDS)
        assert len(batched) == len(SEEDS)
        for a, b in zip(sequential, batched):
            assert_traces_identical(a, b)

    def test_fault_free_bit_identical(self, instance):
        config = DGDConfig(iterations=60, gradient_filter="cge", f=1)
        sequential = [run_dgd(instance.costs, None, config, seed=s) for s in SEEDS]
        batched = run_dgd_batch(instance.costs, None, config, seeds=SEEDS)
        for a, b in zip(sequential, batched):
            assert_traces_identical(a, b)

    def test_adaptive_randomized_attacks_bit_identical(self, instance):
        # Attacks outside the closed-form forging set go through the
        # per-slice AttackContext path, which must also be exact — the
        # per-run adversary rng streams match the sequential derivation.
        for attack in ("alie", "ipm", "mimic"):
            config = DGDConfig(
                iterations=40, gradient_filter="cge", faulty_ids=(1,), f=1
            )
            behavior = make_attack(attack)
            sequential = [
                run_dgd(instance.costs, behavior, config, seed=s) for s in SEEDS
            ]
            batched = run_dgd_batch(instance.costs, behavior, config, seeds=SEEDS)
            for a, b in zip(sequential, batched):
                assert_traces_identical(a, b)

    def test_constant_bias_vectorized_path(self, instance):
        config = DGDConfig(iterations=40, gradient_filter="cwtm", faulty_ids=(2,), f=1)
        behavior = make_attack("constant-bias", bias=(5.0, -3.0))
        sequential = [run_dgd(instance.costs, behavior, config, seed=s) for s in SEEDS]
        batched = run_dgd_batch(instance.costs, behavior, config, seeds=SEEDS)
        for a, b in zip(sequential, batched):
            assert_traces_identical(a, b)

    def test_multiple_faulty_agents(self):
        instance = make_redundant_regression(n=9, d=3, f=2, noise_std=0.01, seed=7)
        config = DGDConfig(
            iterations=40, gradient_filter="cge", faulty_ids=(1, 5), f=2
        )
        behavior = make_attack("sign-flip")
        sequential = [run_dgd(instance.costs, behavior, config, seed=s) for s in SEEDS]
        batched = run_dgd_batch(instance.costs, behavior, config, seeds=SEEDS)
        for a, b in zip(sequential, batched):
            assert_traces_identical(a, b)

    def test_default_batch_is_config_seed(self, instance):
        config = DGDConfig(iterations=20, gradient_filter="cge", f=1, seed=41)
        batched = run_dgd_batch(instance.costs, None, config)
        assert len(batched) == 1
        assert_traces_identical(run_dgd(instance.costs, None, config), batched[0])

    def test_batch_metadata(self, instance):
        config = DGDConfig(iterations=10, gradient_filter="cge", f=1)
        batched = run_dgd_batch(instance.costs, None, config, seeds=SEEDS)
        for trace in batched:
            assert trace.extra["batch"]["size"] == len(SEEDS)
            assert trace.wall_time >= 0.0


class TestFallbacks:
    def test_stateful_filter_reason(self, instance):
        reason = batch_unsupported_reason(
            instance.costs, None, DGDConfig(), CenteredClipping(f=1)
        )
        assert reason is not None and "stateful" in reason

    def test_non_quadratic_cost_reason(self):
        # ScaledCost wraps a quadratic without being one, so it has no
        # batched gradient kernel.
        costs = [ScaledCost(TranslatedQuadratic([0.0, 0.0]), 2.0) for _ in range(4)]
        reason = batch_unsupported_reason(
            costs, None, DGDConfig(), make_filter("average", f=0)
        )
        assert reason is not None and "quadratic" in reason

    def test_crash_and_recording_reasons(self, instance):
        gradient_filter = make_filter("cge", f=1)
        assert "crash" in batch_unsupported_reason(
            instance.costs, None, DGDConfig(crash_rounds={3: 5}), gradient_filter
        )
        assert "recording" in batch_unsupported_reason(
            instance.costs, None, DGDConfig(record_messages=True), gradient_filter
        )
        assert (
            batch_unsupported_reason(instance.costs, None, DGDConfig(), gradient_filter)
            is None
        )

    def test_fallback_still_matches_sequential(self, instance):
        # A stateful filter cannot be vectorized; the engine must fall back
        # to per-seed sequential execution and still return correct traces.
        config = DGDConfig(iterations=15, gradient_filter="clipping", f=1)
        batched = run_dgd_batch(instance.costs, None, config, seeds=[5, 6])
        sequential = [run_dgd(instance.costs, None, config, seed=s) for s in [5, 6]]
        for a, b in zip(sequential, batched):
            assert np.array_equal(a.estimates, b.estimates)
        assert "batch" not in batched[0].extra

    def test_crash_configuration_falls_back(self, instance):
        config = DGDConfig(
            iterations=15, gradient_filter="cge", f=1, crash_rounds={3: 5}
        )
        batched = run_dgd_batch(instance.costs, None, config, seeds=[5])
        assert batched[0].crash_ids == [3]


class TestValidation:
    def test_empty_seeds_rejected(self, instance):
        with pytest.raises(InvalidParameterError, match="at least one"):
            run_dgd_batch(instance.costs, None, DGDConfig(f=1), seeds=[])

    def test_unknown_override_rejected(self, instance):
        with pytest.raises(InvalidParameterError, match="unknown DGDConfig"):
            run_dgd_batch(instance.costs, None, seeds=[1], iteration=10)

    def test_missing_behavior_rejected(self, instance):
        with pytest.raises(InvalidParameterError, match="behavior"):
            run_dgd_batch(
                instance.costs, None, DGDConfig(faulty_ids=(0,), f=1), seeds=[1]
            )

    def test_faulty_bound_enforced(self, instance):
        with pytest.raises(InvalidParameterError, match="exceed"):
            run_dgd_batch(
                instance.costs,
                make_attack("zero"),
                DGDConfig(faulty_ids=(0, 1), f=1),
                seeds=[1],
            )


# ---------------------------------------------------------------------------
# Batched filter kernels vs their scalar counterparts
# ---------------------------------------------------------------------------

def _tensors(max_k=5, max_n=8, max_d=4):
    shapes = st.tuples(
        st.integers(1, max_k), st.integers(3, max_n), st.integers(1, max_d)
    )
    return shapes.flatmap(
        lambda shape: hnp.arrays(
            dtype=np.float64,
            shape=shape,
            elements=st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
        )
    )


def _filters_for(n):
    f = 1 if n >= 3 else 0
    return [
        ComparativeGradientElimination(f=f),
        ComparativeGradientElimination(f=f, mode="mean"),
        CoordinateWiseTrimmedMean(f=f),
        CoordinateWiseMedian(f=f),
        Average(f=f),
        TrimmedSum(f=f),
    ]


@settings(max_examples=40, deadline=None)
@given(tensor=_tensors())
def test_aggregate_batch_matches_scalar(tensor):
    for gradient_filter in _filters_for(tensor.shape[1]):
        batched = gradient_filter.aggregate_batch(tensor)
        stacked = np.stack([gradient_filter(matrix) for matrix in tensor])
        assert np.array_equal(batched, stacked), type(gradient_filter).__name__


@settings(max_examples=25, deadline=None)
@given(
    tensor=_tensors(),
    row=st.integers(0, 7),
    value=st.sampled_from([np.nan, np.inf, -np.inf]),
)
def test_aggregate_batch_sanitizes_like_scalar(tensor, row, value):
    # Non-finite rows must be neutralized identically in both paths.
    tensor = tensor.copy()
    tensor[0, row % tensor.shape[1], :] = value
    for gradient_filter in _filters_for(tensor.shape[1]):
        batched = gradient_filter.aggregate_batch(tensor)
        stacked = np.stack([gradient_filter(matrix) for matrix in tensor])
        assert np.array_equal(batched, stacked), type(gradient_filter).__name__
        assert np.all(np.isfinite(batched))


def test_cge_batch_kept_indices_respect_norm_ties():
    # argpartition breaks ties arbitrarily; the batched kept-set must fall
    # back to the scalar (stable, index-ordered) resolution when norms tie
    # at the cut boundary.
    gradient_filter = ComparativeGradientElimination(f=2)
    matrix = np.array(
        [[3.0, 0.0], [1.0, 0.0], [-3.0, 0.0], [0.0, 3.0], [1.0, 0.0], [0.0, 1.0]]
    )
    tensor = np.stack([matrix, matrix[::-1].copy()])
    batched = gradient_filter.aggregate_batch(tensor)
    stacked = np.stack([gradient_filter(m) for m in tensor])
    assert np.array_equal(batched, stacked)


def test_aggregate_batch_rejects_bad_shapes():
    gradient_filter = Average(f=0)
    with pytest.raises(InvalidParameterError):
        gradient_filter.aggregate_batch(np.zeros((3, 2)))
    with pytest.raises(InvalidParameterError):
        gradient_filter.aggregate_batch(np.zeros((0, 3, 2)))


class TestForgedMatrixOwnership:
    """Regression: ``M = G`` aliasing let the forged write-back mutate the
    honest gradient tensor in place; anything reading ``G`` after the
    aggregation step (telemetry, hooks, future per-round diagnostics) saw
    forged values under honest labels."""

    def test_forged_matrix_does_not_alias_honest_tensor(self):
        from repro.system.batch import _forged_matrix

        G = np.arange(24, dtype=float).reshape(2, 4, 3)
        snapshot = G.copy()
        forged = np.full((2, 2, 3), -99.0)
        M = _forged_matrix(G, forged, np.array([1, 3]))
        assert not np.shares_memory(M, G)
        assert np.array_equal(G, snapshot)  # honest tensor untouched
        assert np.array_equal(M[:, [1, 3]], forged)
        assert np.array_equal(M[:, [0, 2]], G[:, [0, 2]])

    def test_honest_gradients_stay_honest_through_a_run(self, instance):
        # An adaptive behaviour reads honest gradients via AttackContext on
        # the per-slice path; under the old aliasing it could observe its
        # own previous round's forgeries.
        from repro.attacks.base import ByzantineBehavior

        class Probe(ByzantineBehavior):
            name = "probe"

            def __init__(self, log):
                self._log = log

            def forge(self, context):
                self._log.append(np.asarray(context.honest_gradients).copy())
                return np.full(
                    (len(context.faulty_ids), context.dimension), 7.5
                )

        config = DGDConfig(iterations=5, gradient_filter="cge", faulty_ids=(2,), f=1)
        seen = []
        run_dgd_batch(instance.costs, Probe(seen), config, seeds=[3])
        sequential_seen = []
        run_dgd(instance.costs, Probe(sequential_seen), config, seed=3)
        assert len(seen) == len(sequential_seen)
        for a, b in zip(seen, sequential_seen):
            assert np.array_equal(a, b)


class TestConstantBiasValidation:
    """Regression: the bias-dimension check lived inside the per-round forge
    closure, so a mismatched bias surfaced only after round 0 had already
    executed (and, with iterations=0, never)."""

    def test_wrong_dimension_rejected_at_construction(self, instance):
        from repro.attacks.simple import ConstantBias
        from repro.system.batch import _vectorized_forger

        rngs = [np.random.default_rng(0)]
        with pytest.raises(InvalidParameterError, match="bias"):
            _vectorized_forger(
                ConstantBias(np.ones(5)), [0], [1, 2, 3, 4, 5],
                instance.costs, rngs,
            )

    def test_run_fails_before_any_round_executes(self, instance):
        from repro.attacks.simple import ConstantBias

        fired = []
        config = DGDConfig(
            iterations=50, gradient_filter="cge", faulty_ids=(0,), f=1
        )
        with pytest.raises(InvalidParameterError, match="bias"):
            run_dgd_batch(
                instance.costs,
                ConstantBias(np.ones(7)),
                config,
                seeds=SEEDS,
                round_hook=lambda *a, **k: fired.append(1),
            )
        assert fired == []  # raised before round 0, not during it


class TestSingleSanitizePerRound:
    """Regression: telemetry-enabled rounds sanitized the forged tensor twice
    (once for aggregation, once for the round record), doubling the cost of
    the non-finite sweep and leaving the two consumers free to drift."""

    def test_one_sanitize_per_round_with_telemetry(self, instance, monkeypatch):
        from repro.aggregators.base import GradientFilter
        from repro.observability import MemorySink, Telemetry

        calls = []
        original = GradientFilter.sanitize

        def counting(gradients):
            calls.append(np.asarray(gradients).shape)
            return original(gradients)

        monkeypatch.setattr(GradientFilter, "sanitize", staticmethod(counting))
        sink = MemorySink()
        config = DGDConfig(
            iterations=12, gradient_filter="cge", faulty_ids=(0,), f=1
        )
        run_dgd_batch(
            instance.costs,
            make_attack("sign-flip"),
            config,
            seeds=SEEDS,
            telemetry=Telemetry([sink]),
        )
        batch_calls = [shape for shape in calls if len(shape) == 3]
        assert len(batch_calls) == config.iterations
        rounds = [r for r in sink.records if r.get("event") == "round"]
        assert len(rounds) == config.iterations * len(SEEDS)

    def test_telemetry_does_not_perturb_estimates(self, instance):
        from repro.observability import MemorySink, Telemetry

        config = DGDConfig(
            iterations=30, gradient_filter="cwtm", faulty_ids=(0,), f=1
        )
        behavior = make_attack("sign-flip")
        plain = run_dgd_batch(instance.costs, behavior, config, seeds=SEEDS)
        with_tel = run_dgd_batch(
            instance.costs, behavior, config, seeds=SEEDS,
            telemetry=Telemetry([MemorySink()]),
        )
        for a, b in zip(plain, with_tel):
            assert_traces_identical(a, b)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    tie_count=st.integers(2, 12),
)
def test_cge_large_n_tie_boundary_is_stable(seed, tie_count):
    # Large-n stress for the argpartition cut: engineer `tie_count` rows
    # whose norms all equal the boundary (keep-1) norm, scattered across
    # the batch, and require the batched kept set to be bit-identical to
    # the stable sequential (norm, index) resolution.
    n, d, f = 128, 4, 16
    keep = n - f
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(n, d))
    norms = np.linalg.norm(base, axis=1)
    boundary_row = base[np.argsort(norms, kind="stable")[keep - 1]]
    positions = rng.choice(n, size=tie_count, replace=False)
    matrix = base.copy()
    matrix[positions] = boundary_row  # ties straddle the cut exactly
    tensor = np.stack([matrix, matrix[::-1].copy(), base])

    gradient_filter = ComparativeGradientElimination(f=f)
    batched_kept = gradient_filter._kept_indices_batch(tensor)
    batched_agg = gradient_filter.aggregate_batch(tensor)
    for k in range(tensor.shape[0]):
        scalar_kept = gradient_filter._kept_indices(tensor[k])
        assert np.array_equal(batched_kept[k], scalar_kept)
        assert np.array_equal(batched_agg[k], gradient_filter(tensor[k]))
