"""Tests for the CGE gradient filter — the paper's aggregation rule."""

import numpy as np
import pytest

from repro.aggregators.cge import ComparativeGradientElimination
from repro.aggregators.mean import TrimmedSum
from repro.exceptions import InvalidParameterError


class TestDefinition:
    def test_sums_smallest_norm_gradients(self):
        gradients = np.array(
            [[10.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, -2.0]]
        )
        cge = ComparativeGradientElimination(f=1)
        # The (10, 0) row has the largest norm and is eliminated.
        assert np.allclose(cge(gradients), [1.0, -1.0])

    def test_eliminates_exactly_f(self):
        gradients = np.array([[5.0], [4.0], [3.0], [2.0], [1.0]])
        cge = ComparativeGradientElimination(f=2)
        assert cge(gradients)[0] == pytest.approx(1.0 + 2.0 + 3.0)

    def test_f_zero_is_plain_sum(self):
        rng = np.random.default_rng(0)
        gradients = rng.normal(size=(6, 3))
        cge = ComparativeGradientElimination(f=0)
        assert np.allclose(cge(gradients), TrimmedSum(0)(gradients))

    def test_mean_mode_rescales(self):
        rng = np.random.default_rng(1)
        gradients = rng.normal(size=(5, 2))
        total = ComparativeGradientElimination(f=1, mode="sum")(gradients)
        mean = ComparativeGradientElimination(f=1, mode="mean")(gradients)
        assert np.allclose(mean, total / 4.0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(InvalidParameterError):
            ComparativeGradientElimination(f=1, mode="max")


class TestTieBreaking:
    def test_ties_broken_by_agent_index(self):
        # Equal norms: the lower-indexed agents are kept.
        gradients = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, 0.0]])
        cge = ComparativeGradientElimination(f=1)
        kept = cge.kept_indices(gradients)
        assert list(kept) == [0, 1]

    def test_deterministic_output_under_ties(self):
        gradients = np.ones((4, 2))
        cge = ComparativeGradientElimination(f=2)
        assert np.allclose(cge(gradients), cge(gradients))


class TestRobustnessProperties:
    def test_large_byzantine_gradient_always_eliminated(self):
        rng = np.random.default_rng(2)
        honest = rng.normal(size=(5, 3))
        attack = 1e6 * np.ones((1, 3))
        gradients = np.vstack([attack, honest])
        cge = ComparativeGradientElimination(f=1)
        assert 0 not in cge.kept_indices(gradients)

    def test_output_norm_bounded_by_kept_norms(self):
        # ||CGE(...)|| <= (n - f) * max kept norm <= (n - f) * (n-f)-th norm.
        rng = np.random.default_rng(3)
        gradients = rng.normal(size=(7, 4))
        cge = ComparativeGradientElimination(f=2)
        norms = np.sort(np.linalg.norm(gradients, axis=1))
        assert np.linalg.norm(cge(gradients)) <= 5 * norms[4] + 1e-12

    def test_nan_payload_does_not_crash_and_is_eliminated(self):
        honest = np.ones((4, 2))
        gradients = np.vstack([[[np.nan, np.inf]], honest])
        cge = ComparativeGradientElimination(f=1)
        out = cge(gradients)
        assert np.all(np.isfinite(out))
        assert np.allclose(out, [4.0, 4.0])


class TestValidation:
    def test_too_few_inputs_rejected(self):
        cge = ComparativeGradientElimination(f=3)
        with pytest.raises(InvalidParameterError):
            cge(np.ones((3, 2)))

    def test_negative_f_rejected(self):
        with pytest.raises(InvalidParameterError):
            ComparativeGradientElimination(f=-1)

    def test_repr_mentions_mode(self):
        assert "sum" in repr(ComparativeGradientElimination(f=1))
