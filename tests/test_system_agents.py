"""Tests for agent processes and the adversary coordinator."""

import numpy as np
import pytest

from repro.attacks.simple import GradientReverse, SignFlip
from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import TranslatedQuadratic
from repro.system.adversary import Adversary
from repro.system.agents import CrashAgent, HonestAgent
from repro.system.messages import SERVER_ID, EstimateBroadcast


def broadcast(t=0, x=(0.0, 0.0)):
    return EstimateBroadcast(sender=SERVER_ID, round_index=t, estimate=np.asarray(x))


class TestHonestAgent:
    def test_replies_with_true_gradient(self):
        cost = TranslatedQuadratic([1.0, 1.0])
        agent = HonestAgent(3, cost)
        reply = agent.on_estimate(broadcast())
        assert reply.sender == 3
        assert reply.round_index == 0
        assert np.allclose(reply.gradient, cost.gradient(np.zeros(2)))

    def test_negative_id_rejected(self):
        with pytest.raises(InvalidParameterError):
            HonestAgent(-1, TranslatedQuadratic([0.0]))


class TestCrashAgent:
    def test_crashes_at_round(self):
        agent = CrashAgent(0, TranslatedQuadratic([0.0, 0.0]), crash_round=2)
        assert agent.on_estimate(broadcast(0)) is not None
        assert agent.on_estimate(broadcast(1)) is not None
        assert agent.on_estimate(broadcast(2)) is None
        assert agent.crashed
        # Crash is permanent.
        assert agent.on_estimate(broadcast(3)) is None

    def test_probabilistic_crash_requires_rng(self):
        with pytest.raises(InvalidParameterError):
            CrashAgent(0, TranslatedQuadratic([0.0]), crash_probability=0.5)

    def test_probabilistic_crash_eventually_happens(self):
        rng = np.random.default_rng(0)
        agent = CrashAgent(0, TranslatedQuadratic([0.0]), crash_probability=0.9, rng=rng)
        replies = [agent.on_estimate(broadcast(t, (0.0,))) for t in range(20)]
        assert any(r is None for r in replies)


class TestAdversary:
    def _costs(self):
        return {0: TranslatedQuadratic([1.0, 0.0]), 1: TranslatedQuadratic([0.0, 1.0])}

    def _honest_messages(self, t=0):
        agents = [HonestAgent(i, TranslatedQuadratic([0.5, 0.5])) for i in (2, 3, 4)]
        return [a.on_estimate(broadcast(t)) for a in agents]

    def test_forges_one_message_per_speaking_faulty(self):
        adversary = Adversary(GradientReverse(), [0, 1], costs=self._costs(), seed=0)
        forged = adversary.forge_messages(broadcast(), self._honest_messages())
        assert [m.sender for m in forged] == [0, 1]
        assert all(m.round_index == 0 for m in forged)

    def test_gradient_reverse_uses_true_costs(self):
        adversary = Adversary(GradientReverse(), [0], costs=self._costs(), seed=0)
        forged = adversary.forge_messages(broadcast(), self._honest_messages())
        true_gradient = self._costs()[0].gradient(np.zeros(2))
        assert np.allclose(forged[0].gradient, -true_gradient)

    def test_rushing_adversary_sees_honest_messages(self):
        adversary = Adversary(SignFlip(), [0], costs=self._costs(), seed=0)
        honest = self._honest_messages()
        forged = adversary.forge_messages(broadcast(), honest)
        mean = np.mean([m.gradient for m in honest], axis=0)
        assert np.allclose(forged[0].gradient, -mean)

    def test_silent_ids_stay_silent(self):
        adversary = Adversary(
            GradientReverse(), [0, 1], costs=self._costs(), silent_ids=[1], seed=0
        )
        forged = adversary.forge_messages(broadcast(), self._honest_messages())
        assert [m.sender for m in forged] == [0]

    def test_active_faulty_restriction(self):
        adversary = Adversary(GradientReverse(), [0, 1], costs=self._costs(), seed=0)
        forged = adversary.forge_messages(
            broadcast(), self._honest_messages(), active_faulty=[1]
        )
        assert [m.sender for m in forged] == [1]

    def test_silent_ids_must_be_faulty(self):
        with pytest.raises(InvalidParameterError):
            Adversary(GradientReverse(), [0], silent_ids=[5], seed=0)
