"""Exit-code contract of ``repro bench`` and ``repro trace`` (0/1/2)."""

import json

import pytest

from repro.cli import main
from repro.observability.perf import (
    BaselineStore,
    load_bench_payload,
    register_bench,
    run_registered,
)
from repro.utils.atomicio import write_json_atomic

# A deliberately trivial bench: microsecond-scale (so the default noise
# floor always suppresses the timing comparison) with one deterministic
# quality metric the tests can tamper with to force a gate failure.
register_bench(
    "unit_cli_tiny",
    workload={"kind": "unit"},
    tags=("unit_cli",),
    metrics=lambda value: {"quality": value},
    description="trivial bench for CLI exit-code tests",
    replace=True,
)(lambda tel: 1.0)


def _seed_baseline(directory):
    store = BaselineStore(str(directory))
    store.store(run_registered("unit_cli_tiny", repeats=1).result)
    return store


class TestBenchSelection:
    def test_no_selection_is_usage_error(self, capsys):
        assert main(["bench", "run"]) == 2
        assert "no benches selected" in capsys.readouterr().err

    def test_unknown_name_is_usage_error(self, capsys):
        assert main(["bench", "run", "no_such_bench"]) == 2
        assert "unknown bench" in capsys.readouterr().err

    def test_names_and_tag_conflict(self, capsys):
        assert main(["bench", "run", "unit_cli_tiny", "--tag", "smoke"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_unknown_tag_on_list(self, capsys):
        assert main(["bench", "list", "--tag", "no_such_tag"]) == 2
        assert "no benches carry tag" in capsys.readouterr().err

    def test_list_shows_registered_benches(self, capsys):
        assert main(["bench", "list", "--tag", "unit_cli"]) == 0
        out = capsys.readouterr().out
        assert "unit_cli_tiny" in out
        assert "trivial bench" in out


class TestBenchRun:
    def test_run_writes_schema_record(self, tmp_path, capsys):
        code = main([
            "bench", "run", "unit_cli_tiny",
            "--repeats", "2", "--output-dir", str(tmp_path),
        ])
        assert code == 0
        assert "unit_cli_tiny: best" in capsys.readouterr().out
        payload = load_bench_payload(str(tmp_path / "BENCH_unit_cli_tiny.json"))
        assert payload["repeats"] == 2
        assert payload["metrics"] == {"quality": 1.0}

    def test_bad_repeats_is_usage_error(self, tmp_path, capsys):
        code = main([
            "bench", "run", "unit_cli_tiny",
            "--repeats", "0", "--output-dir", str(tmp_path),
        ])
        assert code == 2


class TestBenchGate:
    def test_gate_passes_against_fresh_baseline(self, tmp_path, capsys):
        _seed_baseline(tmp_path)
        code = main([
            "bench", "gate", "unit_cli_tiny", "--repeats", "1",
            "--baseline-dir", str(tmp_path),
        ])
        assert code == 0
        assert "gate: ok" in capsys.readouterr().out

    def test_gate_fails_on_injected_regression(self, tmp_path, capsys):
        store = _seed_baseline(tmp_path)
        # Tamper with the committed baseline: the bench still reports
        # quality=1.0, so a baseline demanding 2.0 is a >1% metric drift.
        path = store.path_for("unit_cli_tiny")
        payload = load_bench_payload(path)
        payload["metrics"]["quality"] = 2.0
        write_json_atomic(path, payload)
        code = main([
            "bench", "gate", "unit_cli_tiny", "--repeats", "1",
            "--baseline-dir", str(tmp_path),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "gate: FAIL" in out
        assert "quality" in out

    def test_gate_without_baseline_is_informational(self, tmp_path, capsys):
        code = main([
            "bench", "gate", "unit_cli_tiny", "--repeats", "1",
            "--baseline-dir", str(tmp_path / "empty"),
        ])
        assert code == 0
        assert "new" in capsys.readouterr().out

    def test_gate_strict_missing_fails(self, tmp_path, capsys):
        code = main([
            "bench", "gate", "unit_cli_tiny", "--repeats", "1",
            "--baseline-dir", str(tmp_path / "empty"), "--strict-missing",
        ])
        assert code == 1
        assert "gate: FAIL" in capsys.readouterr().out

    def test_gate_persists_candidate_records(self, tmp_path):
        _seed_baseline(tmp_path / "baselines")
        out_dir = tmp_path / "fresh"
        code = main([
            "bench", "gate", "unit_cli_tiny", "--repeats", "1",
            "--baseline-dir", str(tmp_path / "baselines"),
            "--output-dir", str(out_dir),
        ])
        assert code == 0
        assert (out_dir / "BENCH_unit_cli_tiny.json").exists()


class TestBenchCompare:
    def test_compare_pass_and_regression(self, tmp_path, capsys):
        store = _seed_baseline(tmp_path / "baselines")
        current = tmp_path / "current"
        main([
            "bench", "run", "unit_cli_tiny",
            "--repeats", "1", "--output-dir", str(current),
        ])
        capsys.readouterr()
        args = [
            "bench", "compare", "unit_cli_tiny",
            "--baseline-dir", str(tmp_path / "baselines"),
            "--current-dir", str(current),
        ]
        assert main(args) == 0
        payload = load_bench_payload(store.path_for("unit_cli_tiny"))
        payload["metrics"]["quality"] = 2.0
        write_json_atomic(store.path_for("unit_cli_tiny"), payload)
        assert main(args) == 1

    def test_compare_missing_candidate_is_usage_error(self, tmp_path, capsys):
        code = main([
            "bench", "compare", "unit_cli_tiny",
            "--baseline-dir", str(tmp_path),
            "--current-dir", str(tmp_path / "nowhere"),
        ])
        assert code == 2
        assert "cannot load candidate" in capsys.readouterr().err


class TestTraceReport:
    @staticmethod
    def _write_stream(path, records):
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")

    def test_report_on_healthy_stream(self, tmp_path, capsys):
        stream = tmp_path / "run.jsonl"
        self._write_stream(stream, [
            {"event": "span", "name": "round", "seconds": 0.01}
            for _ in range(20)
        ])
        assert main(["trace", "report", str(stream)]) == 0
        out = capsys.readouterr().out
        assert "trace report" in out
        assert "0 anomaly flag(s)" in out

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        code = main(["trace", "report", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_bad_windows_is_usage_error(self, tmp_path, capsys):
        stream = tmp_path / "run.jsonl"
        self._write_stream(stream, [])
        code = main(["trace", "report", str(stream), "--windows", "0"])
        assert code == 2

    def test_fail_on_anomaly(self, tmp_path, capsys):
        stream = tmp_path / "stalled.jsonl"
        records = [
            {"event": "span", "name": "round", "seconds": 0.01}
            for _ in range(20)
        ]
        records.append({"event": "span", "name": "round", "seconds": 1.0})
        self._write_stream(stream, records)
        # Informational by default; a hard failure only when asked.
        assert main(["trace", "report", str(stream)]) == 0
        capsys.readouterr()
        code = main(["trace", "report", str(stream), "--fail-on-anomaly"])
        assert code == 1
        assert "[stall]" in capsys.readouterr().out

    def test_json_report_is_written_atomically(self, tmp_path, capsys):
        from repro.utils.atomicio import read_json_dict_checked

        stream = tmp_path / "run.jsonl"
        self._write_stream(stream, [
            {"event": "span", "name": "round", "seconds": 0.01},
        ])
        target = tmp_path / "report.json"
        code = main([
            "trace", "report", str(stream), "--json", str(target),
        ])
        assert code == 0
        document = read_json_dict_checked(str(target))
        assert document["reports"][0]["source"] == str(stream)
