"""Grid-level chaos tests: the sweep engine under injected infrastructure faults.

The contract under test: whatever the infrastructure does — workers
raising, worker processes dying, chunks hanging, cache entries corrupted,
runs killed mid-grid — every cell the engine reports as succeeded is
bit-identical to a fault-free sequential run, persistent failures are
quarantined instead of aborting the grid, and ``resume()`` recomputes only
the cells that never completed (proven by event-log cache-hit counts).
"""

import os
import shutil

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.sweep import RegressionGrid, SweepEngine, summarize_grid
from repro.system.faultinjection import (
    CrashOnCalls,
    FailEveryNth,
    FailMatching,
    FailOnCalls,
    FaultyWorker,
    HangOnCalls,
    corrupt_cache_entry,
)

GRID = RegressionGrid(
    filters=("cge", "average"),
    attacks=("gradient-reverse", "zero"),
    num_seeds=2,
    iterations=20,
)


@pytest.fixture(scope="module")
def reference_cells():
    """Fault-free, sequential, uncached execution — the ground truth."""
    return SweepEngine(parallel=False, retries=0).run_regression_grid(GRID)


def assert_cells_equal(cells, reference):
    assert len(cells) == len(reference)
    for cell, ref in zip(cells, reference):
        assert (cell.filter_name, cell.attack_name, cell.f, cell.seed) == (
            ref.filter_name, ref.attack_name, ref.f, ref.seed
        )
        assert not cell.failed, cell.error
        assert cell.final_error == ref.final_error
        assert np.array_equal(cell.estimates, ref.estimates)


def cache_entries(cache_dir):
    return sorted(
        name for name in os.listdir(cache_dir)
        if name.endswith(".json") and not name.startswith("manifest")
    )


class TestChaosGrids:
    def test_transient_worker_failures_bit_identical(self, tmp_path,
                                                     reference_cells):
        engine = SweepEngine(
            parallel=True, max_workers=2, retries=4, retry_backoff=0.01,
            chunk_size=1,
            worker_wrapper=lambda w: FaultyWorker(
                w, [FailEveryNth(4)], counter_dir=str(tmp_path / "calls")
            ),
        )
        cells = engine.run_regression_grid(GRID)
        assert_cells_equal(cells, reference_cells)
        counts = engine.events.counts()
        assert counts.get("chunk_retry", 0) >= 1
        assert "quarantine" not in counts

    def test_worker_process_crash_bit_identical(self, tmp_path, reference_cells):
        engine = SweepEngine(
            parallel=True, max_workers=2, retries=4, retry_backoff=0.01,
            chunk_size=1,
            worker_wrapper=lambda w: FaultyWorker(
                w, [CrashOnCalls((0,))], counter_dir=str(tmp_path / "calls")
            ),
        )
        cells = engine.run_regression_grid(GRID)
        assert_cells_equal(cells, reference_cells)
        counts = engine.events.counts()
        assert counts.get("chunk_crash", 0) >= 1
        assert counts.get("pool_rebuild", 0) >= 1

    def test_hung_chunk_times_out_bit_identical(self, tmp_path, reference_cells):
        engine = SweepEngine(
            parallel=True, max_workers=2, retries=4, retry_backoff=0.01,
            chunk_size=1, timeout=1.5,
            worker_wrapper=lambda w: FaultyWorker(
                w, [HangOnCalls((0,), duration=6.0)],
                counter_dir=str(tmp_path / "calls"),
            ),
        )
        cells = engine.run_regression_grid(GRID)
        assert_cells_equal(cells, reference_cells)
        counts = engine.events.counts()
        assert counts.get("chunk_timeout", 0) >= 1
        assert counts.get("pool_rebuild", 0) >= 1

    def test_persistent_failure_quarantined_inprocess(self, reference_cells):
        engine = SweepEngine(
            parallel=False, retries=1, retry_backoff=0.01,
            worker_wrapper=lambda w: FaultyWorker(
                w, [FailMatching("'filter': 'average'")]
            ),
        )
        cells = engine.run_regression_grid(GRID)
        good = [c for c in cells if c.filter_name == "cge"]
        bad = [c for c in cells if c.filter_name == "average"]
        assert_cells_equal(
            good, [c for c in reference_cells if c.filter_name == "cge"]
        )
        assert all(c.failed and c.quarantined for c in bad)
        assert all("quarantined" in c.error for c in bad)
        assert engine.events.counts()["quarantine"] >= 1
        # The grid still summarizes; quarantined groups render as n/a.
        rows = {(r[1], r[2]): r for r in summarize_grid(cells).rows}
        assert rows[("average", "zero")][4] == "n/a"
        assert isinstance(rows[("cge", "zero")][4], float)

    def test_persistent_failure_degrades_then_quarantines_in_pool(
        self, reference_cells
    ):
        engine = SweepEngine(
            parallel=True, max_workers=2, retries=1, retry_backoff=0.01,
            chunk_size=1,
            worker_wrapper=lambda w: FaultyWorker(
                w, [FailMatching("'filter': 'average'")]
            ),
        )
        cells = engine.run_regression_grid(GRID)
        good = [c for c in cells if c.filter_name == "cge"]
        bad = [c for c in cells if c.filter_name == "average"]
        assert_cells_equal(
            good, [c for c in reference_cells if c.filter_name == "cge"]
        )
        assert all(c.failed and c.quarantined for c in bad)
        counts = engine.events.counts()
        assert counts.get("chunk_degraded", 0) >= 1
        assert counts.get("quarantine", 0) >= 1


class TestCacheIntegrity:
    TINY = RegressionGrid(filters=("cge",), attacks=("zero",), num_seeds=2,
                          iterations=15)

    @pytest.mark.parametrize("mode", ["truncate", "bitflip", "garbage"])
    def test_corrupt_entry_recomputed_not_poisoned(self, tmp_path, mode):
        cache = str(tmp_path / f"cache-{mode}")
        reference = SweepEngine(
            parallel=False, cache_dir=cache
        ).run_regression_grid(self.TINY)
        corrupt_cache_entry(cache, index=0, mode=mode, seed=1)
        engine = SweepEngine(parallel=False, cache_dir=cache)
        cells = engine.run_regression_grid(self.TINY)
        assert_cells_equal(cells, reference)
        counts = engine.events.counts()
        assert counts["cache_corrupt"] == 1
        assert counts["cache_hit"] == len(reference) - 1
        # The corrupt entry was rewritten: a third run is all hits.
        engine3 = SweepEngine(parallel=False, cache_dir=cache)
        engine3.run_regression_grid(self.TINY)
        assert engine3.events.counts()["cache_hit"] == len(reference)

    def test_legacy_unchecksummed_entries_still_hit(self, tmp_path):
        # Entries written by the pre-hardening engine (bare payloads) must
        # keep serving hits rather than being recomputed wholesale.
        import json

        cache = str(tmp_path / "cache")
        engine = SweepEngine(parallel=False, cache_dir=cache)
        first = engine.run_regression_grid(self.TINY)
        for name in cache_entries(cache):
            path = os.path.join(cache, name)
            payload = json.loads(open(path).read())["payload"]
            with open(path, "w") as handle:
                json.dump(payload, handle)
        engine2 = SweepEngine(parallel=False, cache_dir=cache)
        cells = engine2.run_regression_grid(self.TINY)
        assert_cells_equal(cells, first)
        assert engine2.events.counts()["cache_hit"] == len(first)


class TestResume:
    def test_resume_recomputes_only_missing_cells(self, tmp_path,
                                                  reference_cells):
        cache = str(tmp_path / "cache")
        SweepEngine(parallel=False, cache_dir=cache).run_regression_grid(GRID)
        entries = cache_entries(cache)
        killed = entries[:3]  # simulate a run killed before these completed
        for name in killed:
            os.remove(os.path.join(cache, name))
        engine = SweepEngine(parallel=False, cache_dir=cache)
        progress = engine.grid_progress(GRID)
        assert progress["total"] == len(reference_cells)
        assert progress["completed"] == len(reference_cells) - len(killed)
        cells = engine.resume(GRID)
        assert_cells_equal(cells, reference_cells)
        counts = engine.events.counts()
        assert counts["resume"] == 1
        assert counts["cache_hit"] == len(reference_cells) - len(killed)
        assert counts["cache_miss"] == len(killed)
        # After resume the grid is complete: a further resume is all hits.
        engine2 = SweepEngine(parallel=False, cache_dir=cache)
        engine2.resume(GRID)
        assert engine2.events.counts()["cache_hit"] == len(reference_cells)
        assert engine2.events.counts().get("cache_miss", 0) == 0

    def test_resume_requires_cache_dir(self):
        with pytest.raises(InvalidParameterError, match="cache_dir"):
            SweepEngine(parallel=False).resume(GRID)

    def test_manifest_written_with_grid_inventory(self, tmp_path):
        cache = str(tmp_path / "cache")
        engine = SweepEngine(parallel=False, cache_dir=cache)
        engine.run_regression_grid(self_grid := TestCacheIntegrity.TINY)
        from repro.utils.atomicio import read_json_checked

        manifest = read_json_checked(engine.manifest_path(self_grid))
        assert manifest["grid"]["num_seeds"] == self_grid.num_seeds
        assert len(manifest["cells"]) == self_grid.num_seeds
        assert manifest["failed"] == []


class TestAcceptanceScenario:
    """ISSUE 2 acceptance: crashes + a hang + a corrupt cache entry, at once."""

    GRID = RegressionGrid(
        filters=("cge", "average", "median"),
        attacks=("gradient-reverse", "zero"),
        num_seeds=2,
        iterations=20,
    )

    def test_chaos_sweep_completes_bit_identical(self, tmp_path):
        cache = str(tmp_path / "cache")
        # Fault-free sequential seeding run: ground truth + warm cache.
        reference = SweepEngine(
            parallel=False, cache_dir=cache
        ).run_regression_grid(self.GRID)
        corrupt_cache_entry(cache, index=2, mode="bitflip", seed=7)

        # Chaos pass: 1-in-5 worker raises, one hard process crash, one
        # hung chunk, against the damaged cache. retries=4 covers the
        # worst case where every injected fault lands on the same chunk.
        policies = [
            FailEveryNth(5),
            CrashOnCalls((3,)),
            HangOnCalls((2,), duration=6.0),
        ]
        engine = SweepEngine(
            parallel=True, max_workers=2, retries=4, retry_backoff=0.01,
            chunk_size=1, timeout=1.5, cache_dir=cache,
            events=str(tmp_path / "events.jsonl"),
            worker_wrapper=lambda w: FaultyWorker(
                w, policies, counter_dir=str(tmp_path / "calls")
            ),
        )
        cells = engine.run_regression_grid(self.GRID)

        # Every cell completed (nothing quarantined) and is bit-identical
        # to the fault-free run.
        assert_cells_equal(cells, reference)
        counts = engine.events.counts()
        assert "quarantine" not in counts
        # The faults really fired and were really survived...
        disruptions = (
            counts.get("chunk_retry", 0)
            + counts.get("chunk_timeout", 0)
            + counts.get("chunk_crash", 0)
        )
        assert disruptions >= 2
        assert counts.get("pool_rebuild", 0) >= 1
        # ...and the corrupted entry was the only recomputation.
        assert counts["cache_corrupt"] == 1
        assert counts["cache_hit"] == len(reference) - 1
        # The JSONL mirror survives for post-mortems.
        from repro.experiments.sweep import SweepEvents

        assert SweepEvents.load(str(tmp_path / "events.jsonl")) == engine.events.records


class TestRoundHookInjection:
    """Mid-execution fault injection through run_dgd_batch's round hook."""

    def test_raising_hook_aborts_then_clean_rerun_is_bit_identical(self):
        from repro.exceptions import InjectedFault
        from repro.problems.linear_regression import make_redundant_regression
        from repro.system.batch import run_dgd_batch
        from repro.system.runner import DGDConfig

        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=1)
        config = DGDConfig(iterations=30, gradient_filter="cge", f=1,
                           faulty_ids=(0,), seed=0)
        from repro.attacks.registry import make_attack

        behavior = make_attack("gradient-reverse")
        seen = []

        def hook(t):
            seen.append(t)
            if t == 9:
                raise InjectedFault("mid-run fault")

        with pytest.raises(InjectedFault):
            run_dgd_batch(instance.costs, behavior, config, seeds=[1, 2],
                          round_hook=hook)
        assert seen == list(range(10))
        # A clean re-execution is unaffected by the aborted attempt.
        clean = run_dgd_batch(instance.costs, behavior, config, seeds=[1, 2])
        again = run_dgd_batch(instance.costs, behavior, config, seeds=[1, 2])
        for a, b in zip(clean, again):
            assert np.array_equal(a.estimates, b.estimates)

    def test_hook_sees_every_round(self):
        from repro.problems.linear_regression import make_redundant_regression
        from repro.system.batch import run_dgd_batch
        from repro.system.runner import DGDConfig

        instance = make_redundant_regression(n=4, d=2, f=1, noise_std=0.0, seed=1)
        rounds = []
        run_dgd_batch(instance.costs, None,
                      DGDConfig(iterations=12, gradient_filter="average"),
                      seeds=[0], round_hook=rounds.append)
        assert rounds == list(range(12))


class _FakeDoneFuture:
    """A future that is already done; ``result()`` replays its outcome."""

    def __init__(self, value=None, exc=None):
        self._value = value
        self._exc = exc

    def done(self):
        return True

    def result(self, timeout=None):
        if self._exc is not None:
            raise self._exc
        return self._value


class _ScriptedPool:
    """Fake executor: per-chunk scripted outcomes, synchronous execution.

    ``script`` maps a chunk's first item to either an exception instance
    (``result()`` raises it) or ``None`` (compute the chunk for real).
    The script applies to this pool only — a rebuilt pool gets a fresh
    (usually empty) script, which is exactly how a transient
    infrastructure fault looks to the failure ladder.
    """

    def __init__(self, script):
        self._script = dict(script)

    def submit(self, fn, worker, chunk):
        outcome = self._script.get(chunk[0])
        if isinstance(outcome, BaseException):
            return _FakeDoneFuture(exc=outcome)
        try:
            return _FakeDoneFuture(value=fn(worker, chunk))
        except BaseException as exc:  # surfaces at result(), like a real pool
            return _FakeDoneFuture(exc=exc)

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def _times_ten(x):
    return x * 10


def _fail_on_one(x):
    if x == 1:
        raise ValueError("always fails")
    return x * 10


class TestSalvagePathChargesFailures:
    """Regression: the pool-rebuild salvage path must never swallow a
    done-but-failed chunk's exception (it used to resubmit it attempt-free,
    so a deterministically failing chunk cycled through rebuilds forever
    with no event, no attempt charged, and no quarantine)."""

    @staticmethod
    def _engine_with_pools(monkeypatch, pools, **kwargs):
        from concurrent.futures import BrokenExecutor  # noqa: F401

        engine = SweepEngine(parallel=True, max_workers=2, chunk_size=1,
                             retry_backoff=0.0, **kwargs)
        queue = list(pools)
        monkeypatch.setattr(engine, "_new_pool", lambda workers: queue.pop(0))
        return engine

    def test_salvaged_failure_charged_and_retried(self, monkeypatch):
        from concurrent.futures import BrokenExecutor

        # Round 1: chunk [0] breaks the pool (rebuild), chunk [1] is done
        # but failed — the salvage path must charge it. Round 2 (fresh
        # pool, empty script): everything computes.
        pools = [
            _ScriptedPool({0: BrokenExecutor("worker died"),
                           1: ValueError("poisoned chunk")}),
            _ScriptedPool({}),
        ]
        engine = self._engine_with_pools(monkeypatch, pools, retries=2)
        results = engine.map(_times_ten, [0, 1, 2])
        assert results == [0, 10, 20]
        counts = engine.events.counts()
        assert counts.get("chunk_salvage_failed", 0) == 1
        assert counts.get("pool_rebuild", 0) == 1
        salvage = [r for r in engine.events.records
                   if r["event"] == "chunk_salvage_failed"]
        assert salvage[0]["attempt"] == 1
        assert "ValueError: poisoned chunk" in salvage[0]["error"]

    def test_persistent_salvaged_failure_quarantines(self, monkeypatch):
        from concurrent.futures import BrokenExecutor

        # Chunk [0] breaks the pool every round, so chunk [1] — whose
        # worker genuinely fails — is only ever seen by the salvage path.
        # With retries=1 both must reach quarantine after two charged
        # attempts instead of looping attempt-free forever.
        pools = [
            _ScriptedPool({0: BrokenExecutor("worker died")}),
            _ScriptedPool({0: BrokenExecutor("worker died again")}),
            _ScriptedPool({}),
        ]
        engine = self._engine_with_pools(monkeypatch, pools, retries=1)
        quarantined = []
        results = engine.map(
            _fail_on_one, [0, 1, 2],
            on_item_error=lambda exc, item: quarantined.append((item, exc)) or -1,
        )
        assert results == [-1, -1, 20]
        assert sorted(item for item, _ in quarantined) == [0, 1]
        failure = dict(quarantined)[1]
        assert "always fails" in str(failure)
        counts = engine.events.counts()
        assert counts.get("chunk_salvage_failed", 0) == 2
