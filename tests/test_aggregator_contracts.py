"""Registry-wide conformance suite for gradient filters.

Every test in this module parametrizes over :func:`available_filters`,
so a newly registered aggregator is covered automatically — it must
satisfy the :class:`~repro.aggregators.base.GradientFilter` contract
(permutation invariance over honest inputs where applicable,
``kernel_spec()`` well-formedness, sanitize equivalence,
scalar-vs-singleton-batch bit-identity, graceful ``f = 0``) the moment
it lands in the registry, with no new test code.

The contract checks are factored into ``_check_*`` helpers so the suite
can also prove it has teeth: ``TestSuiteCatchesViolations`` registers a
deliberately contract-violating dummy aggregator and asserts the same
helpers reject it.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.aggregators.registry as aggregator_registry
from repro.aggregators import available_filters, make_filter
from repro.aggregators.base import GradientFilter
from repro.exceptions import InvalidParameterError, UnknownRegistryEntryError
from repro.system.backends import resolve_backend

# Instance large enough for every registered filter at f=1
# (Bulyan needs n >= 4f + 3 = 7).
N, D, F = 9, 4, 1

#: Filters whose output legitimately depends on input *order*, with the
#: reason. Everything else must be permutation invariant; add here only
#: with a documented structural justification.
PERMUTATION_EXEMPT = {
    "mom": "partitions rows into blocks by index before the median",
    "gmom": "partitions rows into blocks by index before the median",
    "bulyan": (
        "the shrinking Krum pool ends with single-neighbour scores, where "
        "mutual nearest neighbours tie exactly and argmin breaks by index"
    ),
}


def _honest_matrix(seed, n=N, d=D):
    """Tie-free (continuous) honest gradients — safe for selection filters."""
    return np.random.default_rng(seed).normal(size=(n, d))


def _fresh(name, f=F, registry=None):
    factory = (registry or {}).get(name)
    if factory is not None:
        return factory(f=f)
    return make_filter(name, f=f)


# ----------------------------------------------------------------------
# Contract checks (shared with the violation tests below)
# ----------------------------------------------------------------------


def _check_permutation_invariance(name, seed, registry=None):
    gradients = _honest_matrix(seed)
    rng = np.random.default_rng(seed + 1)
    permuted = gradients[rng.permutation(gradients.shape[0])]
    original = _fresh(name, registry=registry)(gradients)
    shuffled = _fresh(name, registry=registry)(permuted)
    assert np.allclose(original, shuffled, atol=1e-8), (
        f"{name} is not permutation invariant on tie-free honest inputs"
    )


def _check_batch_identity(name, seed, registry=None):
    gradients = _honest_matrix(seed)
    scalar = _fresh(name, registry=registry)(gradients)
    batched = _fresh(name, registry=registry).aggregate_batch(gradients[None])
    assert batched.shape == (1, gradients.shape[1])
    assert np.array_equal(scalar, batched[0]), (
        f"{name}: aggregate_batch on a singleton batch is not bit-identical "
        "to the scalar path"
    )


def _check_sanitize_contract(name, seed, registry=None):
    gradients = _honest_matrix(seed)
    corrupted = gradients.copy()
    corrupted[0, 0] = np.nan
    corrupted[1, 1] = np.inf
    corrupted[2, 0] = -np.inf
    direct = _fresh(name, registry=registry)(corrupted)
    presan = _fresh(name, registry=registry)(
        GradientFilter.sanitize(corrupted)
    )
    assert np.array_equal(direct, presan), (
        f"{name}: aggregating a non-finite matrix differs from aggregating "
        "its sanitized form"
    )
    assert np.all(np.isfinite(direct)), f"{name} produced non-finite output"


def _check_kernel_spec(name, registry=None):
    spec = _fresh(name, registry=registry).kernel_spec()
    if spec is None:
        return
    assert isinstance(spec, dict), f"{name}: kernel_spec must be a plain dict"
    assert all(isinstance(k, str) for k in spec), (
        f"{name}: kernel_spec keys must be strings"
    )
    # Must survive a JSON round-trip (sweep configs are plain data).
    assert json.loads(json.dumps(spec)) == spec
    backend = resolve_backend("numpy")
    assert backend.supports(spec), (
        f"{name} advertises kernel spec {spec!r} but the numpy backend "
        "does not support it"
    )
    # The routed kernel must be bit-identical to the filter's own batch.
    tensor = np.stack([_honest_matrix(s) for s in (0, 1, 2)])
    expected = _fresh(name, registry=registry).aggregate_batch(tensor)
    routed = backend.aggregate(tensor, spec)
    assert np.array_equal(expected, routed), (
        f"{name}: numpy backend kernel disagrees with aggregate_batch"
    )


def _check_f_zero(name, registry=None):
    gradient_filter = _fresh(name, f=0, registry=registry)
    assert gradient_filter.f == 0
    assert gradient_filter.minimum_inputs() >= 1
    out = gradient_filter(_honest_matrix(7))
    assert out.shape == (D,)
    assert np.all(np.isfinite(out))


# ----------------------------------------------------------------------
# The conformance suite proper
# ----------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
@pytest.mark.parametrize("name", available_filters())
def test_permutation_invariance_over_honest_inputs(name, seed):
    if name in PERMUTATION_EXEMPT:
        # Exempt filters still must be invariant under *block-preserving*
        # identity (trivially) — just assert determinism instead.
        gradients = _honest_matrix(seed)
        assert np.array_equal(_fresh(name)(gradients), _fresh(name)(gradients))
        return
    _check_permutation_invariance(name, seed)


@pytest.mark.parametrize("name", available_filters())
def test_scalar_vs_singleton_batch_bit_identity(name):
    for seed in (0, 11, 42):
        _check_batch_identity(name, seed)


@pytest.mark.parametrize("name", available_filters())
def test_sanitize_contract(name):
    _check_sanitize_contract(name, seed=3)


def test_sanitize_identity_and_surrogates():
    finite = _honest_matrix(0)
    assert GradientFilter.sanitize(finite) is finite
    corrupted = np.array([[np.nan, np.inf], [-np.inf, 1.0]])
    cleaned = GradientFilter.sanitize(corrupted, cap=100.0)
    assert cleaned is not corrupted
    assert np.array_equal(cleaned, [[100.0, 100.0], [-100.0, 1.0]])
    # The original is untouched.
    assert np.isnan(corrupted[0, 0])


@pytest.mark.parametrize("name", available_filters())
def test_kernel_spec_contract(name):
    _check_kernel_spec(name)


@pytest.mark.parametrize("name", available_filters())
def test_graceful_f_zero(name):
    _check_f_zero(name)


@pytest.mark.parametrize("name", available_filters())
def test_minimum_inputs_enforced(name):
    gradient_filter = make_filter(name, f=2)
    too_few = _honest_matrix(0, n=max(2, gradient_filter.minimum_inputs() - 1))
    if too_few.shape[0] >= gradient_filter.minimum_inputs():
        pytest.skip(f"{name} accepts any n >= 2")
    with pytest.raises(InvalidParameterError):
        gradient_filter(too_few)


@pytest.mark.parametrize("name", available_filters())
def test_repr_and_f_roundtrip(name):
    gradient_filter = make_filter(name, f=F)
    assert gradient_filter.f == F
    assert "f=" in repr(gradient_filter)


# ----------------------------------------------------------------------
# Registry error structure (unknown lookups)
# ----------------------------------------------------------------------


class TestRegistryErrors:
    def test_unknown_filter_is_structured(self):
        with pytest.raises(UnknownRegistryEntryError) as excinfo:
            make_filter("no-such-filter", f=1)
        err = excinfo.value
        assert err.kind == "filter"
        assert err.name == "no-such-filter"
        assert err.available == tuple(available_filters())
        for name in available_filters():
            assert name in str(err)

    def test_unknown_filter_still_invalid_parameter(self):
        # Existing callers catch InvalidParameterError; the structured
        # subclass must not break them.
        with pytest.raises(InvalidParameterError):
            make_filter("no-such-filter")


# ----------------------------------------------------------------------
# The suite has teeth: a contract-violating dummy must fail it
# ----------------------------------------------------------------------


class _OrderDependentFilter(GradientFilter):
    """Violates permutation invariance: returns the first row."""

    name = "cheat-first-row"

    def _aggregate(self, gradients):
        return np.asarray(gradients[0], dtype=float)


class _BatchMismatchFilter(GradientFilter):
    """Violates batch bit-identity: the batched kernel adds a bias."""

    name = "cheat-batch"

    def _aggregate(self, gradients):
        return gradients.mean(axis=0)

    def _aggregate_batch(self, tensor):
        return tensor.mean(axis=1) + 1e-6


class _BadSpecFilter(GradientFilter):
    """Advertises a kernel spec no backend understands."""

    name = "cheat-spec"

    def _aggregate(self, gradients):
        return gradients.mean(axis=0)

    def kernel_spec(self):
        return {"kind": "no-such-kernel"}


class TestSuiteCatchesViolations:
    """Registering a contract-violating dummy makes the suite fail."""

    def _registry_with(self, cls, monkeypatch):
        registry = dict(aggregator_registry._FACTORIES)
        registry[cls.name] = cls
        monkeypatch.setitem(aggregator_registry._FACTORIES, cls.name, cls)
        assert cls.name in available_filters()
        return registry

    def test_order_dependent_dummy_fails_permutation_check(self, monkeypatch):
        registry = self._registry_with(_OrderDependentFilter, monkeypatch)
        with pytest.raises(AssertionError, match="permutation"):
            _check_permutation_invariance(
                _OrderDependentFilter.name, seed=0, registry=registry
            )

    def test_batch_mismatch_dummy_fails_bit_identity_check(self, monkeypatch):
        registry = self._registry_with(_BatchMismatchFilter, monkeypatch)
        with pytest.raises(AssertionError, match="bit-identical"):
            _check_batch_identity(
                _BatchMismatchFilter.name, seed=0, registry=registry
            )

    def test_bad_spec_dummy_fails_kernel_check(self, monkeypatch):
        registry = self._registry_with(_BadSpecFilter, monkeypatch)
        with pytest.raises(AssertionError, match="backend"):
            _check_kernel_spec(_BadSpecFilter.name, registry=registry)

    def test_registry_restored_after_monkeypatch(self):
        for cls in (_OrderDependentFilter, _BatchMismatchFilter, _BadSpecFilter):
            assert cls.name not in available_filters()
