"""Tests for redundancy-by-design via cyclic replication."""

import numpy as np
import pytest

from repro.core.redundancy import check_2f_redundancy
from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import LeastSquaresCost
from repro.problems.linear_regression import RegressionInstance, make_redundant_regression
from repro.problems.replication import (
    minimum_replication_degree,
    replicate_cyclically,
)


def concentrated_instance(n=6, d=2):
    """A consistent instance whose one-row assignment is NOT 2f-redundant."""
    rows = [np.eye(d)[0]] * (n - d + 1) + [np.eye(d)[k] for k in range(1, d)]
    A = np.stack(rows)
    x_star = np.ones(d)
    b = A @ x_star
    costs = [LeastSquaresCost(A[i : i + 1], b[i : i + 1]) for i in range(n)]
    return RegressionInstance(A=A, b=b, x_star=x_star, noise_std=0.0, costs=costs)


class TestReplicationRepairsRedundancy:
    def test_base_is_not_redundant(self):
        base = concentrated_instance()
        assert not check_2f_redundancy(base.costs, f=1)

    def test_replication_at_threshold_is_redundant(self):
        base = concentrated_instance()
        replicated = replicate_cyclically(base, f=1)
        assert replicated.replication_degree == 3
        assert check_2f_redundancy(replicated.costs, f=1)

    @pytest.mark.parametrize("n,f", [(6, 1), (8, 2), (11, 3)])
    def test_threshold_formula(self, n, f):
        assert minimum_replication_degree(n, f) == 2 * f + 1

    def test_replicated_costs_minimize_at_x_star(self):
        base = concentrated_instance()
        replicated = replicate_cyclically(base, f=1)
        for cost in replicated.costs:
            # Consistent data: every replicated aggregate contains x*.
            assert cost.value(base.x_star) == pytest.approx(0.0, abs=1e-12)

    def test_assignments_are_cyclic_windows(self):
        base = concentrated_instance(n=5)
        replicated = replicate_cyclically(base, f=1)
        assert replicated.assignments[4] == [4, 0, 1]
        assert all(len(rows) == 3 for rows in replicated.assignments)

    def test_storage_factor(self):
        base = concentrated_instance()
        assert replicate_cyclically(base, f=1).storage_factor() == 3.0


class TestHonestMinimizer:
    def test_matches_x_star_when_consistent(self):
        base = concentrated_instance()
        replicated = replicate_cyclically(base, f=1)
        for honest in ([1, 2, 3, 4, 5], [0, 2, 3, 4, 5]):
            assert np.allclose(replicated.honest_minimizer(honest), base.x_star)

    def test_empty_honest_rejected(self):
        replicated = replicate_cyclically(concentrated_instance(), f=1)
        with pytest.raises(InvalidParameterError):
            replicated.honest_minimizer([])


class TestValidation:
    def test_degree_exceeding_n_rejected(self):
        base = concentrated_instance(n=6)
        # n=6 with f=2 gives a valid fault bound, but a degree-5 window fits;
        # force the failure with the infeasible bound directly.
        replicate_cyclically(base, f=2)  # degree 5 <= 6: fine
        with pytest.raises(Exception):
            replicate_cyclically(base, f=3)  # 2f >= n: fault bound fails

    def test_rank_deficient_base_rejected(self):
        A = np.tile(np.array([[1.0, 0.0]]), (5, 1))
        b = A @ np.ones(2)
        base = RegressionInstance(
            A=A, b=b, x_star=np.ones(2), noise_std=0.0,
            costs=[LeastSquaresCost(A[i : i + 1], b[i : i + 1]) for i in range(5)],
        )
        with pytest.raises(InvalidParameterError, match="rank-deficient"):
            replicate_cyclically(base, f=1)


class TestEndToEnd:
    def test_dgd_on_replicated_instance_recovers_x_star(self):
        from repro.attacks.simple import GradientReverse
        from repro.system.runner import run_dgd

        base = concentrated_instance()
        replicated = replicate_cyclically(base, f=1)
        trace = run_dgd(
            replicated.costs, GradientReverse(), faulty_ids=[0],
            gradient_filter="cge", iterations=2000, seed=0,
        )
        assert np.linalg.norm(trace.final_estimate - base.x_star) < 0.05

    def test_dgd_on_unreplicated_base_fails(self):
        from repro.attacks.simple import GradientReverse
        from repro.system.runner import run_dgd

        base = concentrated_instance()
        # Adversary controls the only observer of the second coordinate.
        trace = run_dgd(
            base.costs, GradientReverse(), faulty_ids=[5],
            gradient_filter="cge", iterations=2000, seed=0,
        )
        assert np.linalg.norm(trace.final_estimate - base.x_star) > 0.3

    def test_noisy_replication_bounded_margin(self):
        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.05, seed=0)
        replicated = replicate_cyclically(instance, f=1)
        from repro.core.redundancy import measure_redundancy_margin

        margin = measure_redundancy_margin(replicated.costs, 1).margin
        # Replication of noisy data keeps the margin at noise scale.
        assert margin < 0.2
