"""Property-based tests for the end-to-end runner.

Invariants that must hold for *every* (filter, attack, seed) combination:
determinism given the seed, iterates confined to the projection set,
finite recorded directions, and fault accounting bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.registry import make_attack
from repro.optimization.projections import BoxSet
from repro.problems.linear_regression import make_redundant_regression
from repro.system.runner import run_dgd

FILTERS = ("cge", "cwtm", "median", "geomed", "krum", "average", "mom")
ATTACKS = ("gradient-reverse", "random", "sign-flip", "zero", "alie", "ipm", "mimic")


@st.composite
def executions(draw):
    filter_name = draw(st.sampled_from(FILTERS))
    attack_name = draw(st.sampled_from(ATTACKS))
    seed = draw(st.integers(0, 2**31 - 1))
    return filter_name, attack_name, seed


@pytest.fixture(scope="module")
def instance():
    return make_redundant_regression(n=7, d=2, f=1, noise_std=0.01, seed=4)


@settings(max_examples=20, deadline=None)
@given(config=executions())
def test_determinism_given_seed(instance, config):
    filter_name, attack_name, seed = config
    kwargs = dict(
        gradient_filter=filter_name, faulty_ids=(0,), iterations=15, seed=seed
    )
    first = run_dgd(instance.costs, make_attack(attack_name), **kwargs)
    second = run_dgd(instance.costs, make_attack(attack_name), **kwargs)
    assert np.array_equal(first.estimates, second.estimates)
    assert np.array_equal(first.directions, second.directions)


@settings(max_examples=20, deadline=None)
@given(config=executions())
def test_iterates_stay_in_projection_set(instance, config):
    filter_name, attack_name, seed = config
    box = BoxSet.centered(2, 5.0)
    trace = run_dgd(
        instance.costs, make_attack(attack_name),
        gradient_filter=filter_name, faulty_ids=(0,),
        iterations=25, seed=seed, projection=box,
    )
    assert np.all(np.abs(trace.estimates) <= 5.0 + 1e-9)
    assert np.all(np.isfinite(trace.directions))


@settings(max_examples=15, deadline=None)
@given(config=executions())
def test_trace_bookkeeping_invariants(instance, config):
    filter_name, attack_name, seed = config
    trace = run_dgd(
        instance.costs, make_attack(attack_name),
        gradient_filter=filter_name, faulty_ids=(0,),
        iterations=10, seed=seed,
    )
    assert trace.honest_ids == list(range(1, 7))
    assert trace.faulty_ids == [0]
    assert set(trace.eliminated) <= set(trace.faulty_ids)
    assert trace.iterations == 10
    assert trace.estimates.shape == (11, 2)
    assert trace.messages_delivered > 0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_random_attack_seeds_differ(instance, seed):
    """Different seeds produce different adversary draws (random attack)."""
    a = run_dgd(instance.costs, make_attack("random"), gradient_filter="average",
                faulty_ids=(0,), iterations=5, seed=seed)
    b = run_dgd(instance.costs, make_attack("random"), gradient_filter="average",
                faulty_ids=(0,), iterations=5, seed=seed + 1)
    assert not np.array_equal(a.estimates, b.estimates)
