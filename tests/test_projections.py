"""Tests for convex sets and metric projections."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.optimization.projections import (
    BallSet,
    BoxSet,
    HalfSpace,
    IntersectionSet,
    UnconstrainedSet,
)


class TestBox:
    def test_interior_points_fixed(self):
        box = BoxSet([-1.0, -1.0], [1.0, 1.0])
        assert np.allclose(box.project([0.3, -0.7]), [0.3, -0.7])

    def test_clipping(self):
        box = BoxSet([-1.0, -1.0], [1.0, 1.0])
        assert np.allclose(box.project([5.0, -9.0]), [1.0, -1.0])

    def test_centered_constructor(self):
        box = BoxSet.centered(3, 2.0)
        assert box.contains([2.0, -2.0, 0.0])
        assert not box.contains([2.1, 0.0, 0.0])

    def test_diameter(self):
        box = BoxSet.centered(2, 1.0)
        assert box.diameter() == pytest.approx(np.sqrt(8.0))

    def test_inverted_bounds_rejected(self):
        with pytest.raises(InvalidParameterError):
            BoxSet([1.0], [0.0])

    def test_is_compact(self):
        assert BoxSet.centered(2, 1.0).is_compact


class TestBall:
    def test_interior_fixed(self):
        ball = BallSet([0.0, 0.0], 2.0)
        assert np.allclose(ball.project([1.0, 1.0]), [1.0, 1.0])

    def test_exterior_radial_projection(self):
        ball = BallSet([0.0, 0.0], 1.0)
        assert np.allclose(ball.project([3.0, 4.0]), [0.6, 0.8])

    def test_offcenter(self):
        ball = BallSet([1.0, 0.0], 1.0)
        assert np.allclose(ball.project([4.0, 0.0]), [2.0, 0.0])

    def test_diameter(self):
        assert BallSet([0.0], 3.0).diameter() == 6.0

    def test_rejects_non_positive_radius(self):
        with pytest.raises(InvalidParameterError):
            BallSet([0.0], 0.0)


class TestHalfSpace:
    def test_satisfied_point_fixed(self):
        hs = HalfSpace([1.0, 0.0], 1.0)  # x <= 1
        assert np.allclose(hs.project([0.5, 3.0]), [0.5, 3.0])

    def test_violating_point_projected_orthogonally(self):
        hs = HalfSpace([1.0, 0.0], 1.0)
        assert np.allclose(hs.project([3.0, 2.0]), [1.0, 2.0])

    def test_normal_normalized(self):
        hs = HalfSpace([2.0, 0.0], 4.0)  # same as x <= 2
        assert hs.contains([2.0, 0.0])
        assert not hs.contains([2.1, 0.0])

    def test_not_compact(self):
        assert not HalfSpace([1.0], 0.0).is_compact

    def test_zero_normal_rejected(self):
        with pytest.raises(InvalidParameterError):
            HalfSpace([0.0, 0.0], 1.0)


class TestUnconstrained:
    def test_identity(self):
        space = UnconstrainedSet(3)
        x = np.array([1.0, -2.0, 3.0])
        assert np.allclose(space.project(x), x)

    def test_not_compact(self):
        assert not UnconstrainedSet(2).is_compact


class TestIntersection:
    def test_box_ball_intersection(self):
        box = BoxSet.centered(2, 1.0)
        ball = BallSet([0.0, 0.0], 1.0)
        lens = IntersectionSet([box, ball])
        projected = lens.project([3.0, 3.0])
        assert box.contains(projected, tol=1e-6)
        assert ball.contains(projected, tol=1e-6)

    def test_matches_metric_projection_on_known_case(self):
        # Intersection of half-spaces x<=1 and y<=1: projection of (3, 2)
        # is (1, 1)... actually metric projection is (1, 1) only if both
        # violated; Dykstra must find exactly that.
        a = HalfSpace([1.0, 0.0], 1.0)
        b = HalfSpace([0.0, 1.0], 1.0)
        lens = IntersectionSet([a, b])
        assert np.allclose(lens.project([3.0, 2.0]), [1.0, 1.0], atol=1e-8)

    def test_single_member_passthrough(self):
        box = BoxSet.centered(2, 1.0)
        lens = IntersectionSet([box])
        assert np.allclose(lens.project([5.0, 0.0]), [1.0, 0.0])

    def test_interior_point_unmoved(self):
        lens = IntersectionSet([BoxSet.centered(2, 2.0), BallSet([0.0, 0.0], 2.0)])
        assert np.allclose(lens.project([0.1, 0.1]), [0.1, 0.1])

    def test_compactness_inherited(self):
        compact = IntersectionSet([BoxSet.centered(2, 1.0), UnconstrainedSet(2)])
        assert compact.is_compact
        open_set = IntersectionSet([UnconstrainedSet(2)])
        assert not open_set.is_compact

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            IntersectionSet([BoxSet.centered(2, 1.0), BoxSet.centered(3, 1.0)])

    def test_empty_member_list_rejected(self):
        with pytest.raises(InvalidParameterError):
            IntersectionSet([])


def test_projection_is_idempotent():
    for convex in (BoxSet.centered(3, 1.0), BallSet([1.0, 1.0, 1.0], 2.0)):
        x = np.array([9.0, -9.0, 9.0])
        once = convex.project(x)
        twice = convex.project(once)
        assert np.allclose(once, twice)


def test_projection_is_nonexpansive():
    rng = np.random.default_rng(0)
    ball = BallSet([0.0, 0.0], 1.0)
    for _ in range(20):
        x, y = rng.normal(size=2), rng.normal(size=2)
        assert np.linalg.norm(ball.project(x) - ball.project(y)) <= np.linalg.norm(
            x - y
        ) + 1e-12
