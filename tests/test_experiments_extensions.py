"""Tests for the extension experiments (E11, E12, A4) and CWTM guarantee."""

import numpy as np
import pytest

from repro.analysis.theory import guarantee_for_cwtm
from repro.experiments import (
    run_cwtm_dimension_sweep,
    run_replication_design,
    run_stochastic_step_sizes,
)
from repro.optimization.cost_functions import TranslatedQuadratic
from repro.optimization.projections import BallSet


class TestReplicationExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_replication_design(iterations=800)

    def test_redundancy_flips_at_threshold(self, result):
        verdicts = {row[0]: row[2] for row in result.rows}
        assert verdicts[1] == "no"
        assert verdicts[2] == "no"
        assert verdicts[3] == "yes"
        assert verdicts[4] == "yes"

    def test_error_collapses_with_redundancy(self, result):
        errors = {row[0]: row[3] for row in result.rows}
        assert errors[1] > 0.5  # missing direction: O(1) error
        assert errors[3] < 0.1

    def test_storage_factor_reported(self, result):
        assert [row[1] for row in result.rows] == [1.0, 2.0, 3.0, 4.0]

    def test_undefined_minimizer_degrades_to_nan_with_note(self, monkeypatch):
        # Regression: only *expected* numerical failures (no unique honest
        # minimizer) may produce a nan row — and they must leave a trace.
        import math

        from repro.exceptions import InvalidParameterError
        from repro.problems.replication import ReplicatedInstance

        def undefined(self, honest_ids):
            raise InvalidParameterError("honest rows are rank-deficient")

        monkeypatch.setattr(ReplicatedInstance, "honest_minimizer", undefined)
        result = run_replication_design(degrees=(1,), iterations=5)
        assert math.isnan(result.rows[0][3])
        assert any("honest minimizer undefined" in note
                   and "InvalidParameterError" in note
                   for note in result.notes)

    def test_unexpected_bug_propagates_not_swallowed(self, monkeypatch):
        # Regression: the old bare ``except Exception`` converted ANY bug
        # into a silent nan row; arbitrary exceptions must now surface.
        from repro.problems.replication import ReplicatedInstance

        def buggy(self, honest_ids):
            raise TypeError("refactor broke the call signature")

        monkeypatch.setattr(ReplicatedInstance, "honest_minimizer", buggy)
        with pytest.raises(TypeError, match="refactor broke"):
            run_replication_design(degrees=(1,), iterations=5)


class TestDimensionSweepExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_cwtm_dimension_sweep(dimensions=(2, 9, 36), iterations=300)

    def test_skew_flat_threshold_decays(self, result):
        skews = [row[1] for row in result.rows]
        thresholds = [row[2] for row in result.rows]
        assert max(skews) - min(skews) < 1e-9
        assert thresholds[0] > thresholds[1] > thresholds[2]

    def test_verdict_flips_but_error_stays_small(self, result):
        verdicts = [row[3] for row in result.rows]
        errors = [row[5] for row in result.rows]
        assert verdicts[0] == "holds"
        assert verdicts[-1] == "fails"
        assert max(errors) < 0.05

    def test_guaranteed_radius_zero_when_applicable(self, result):
        for row in result.rows:
            if row[3] == "holds":
                assert row[4] == 0.0  # exact redundancy -> radius 0


class TestStochasticAblation:
    def test_rm_beats_constant_floors(self):
        result = run_stochastic_step_sizes(iterations=3000)
        tail = {row[0]: row[2] for row in result.rows}
        rm = tail["diminishing 1/t (RM)"]
        assert all(rm < value for name, value in tail.items() if "constant" in name)

    def test_floor_scales_with_step(self):
        result = run_stochastic_step_sizes(
            iterations=2000, constant_steps=(0.05, 0.005)
        )
        tail = {row[0]: row[2] for row in result.rows}
        assert tail["constant 0.05 (not RM)"] > tail["constant 0.005 (not RM)"]


class TestCwtmGuarantee:
    def _family(self, n=6, d=4, spread=0.1):
        weights = 1.0 + spread * np.linspace(-1, 1, n)
        return [TranslatedQuadratic(np.ones(d), weight=float(w)) for w in weights]

    def test_applicable_for_small_skew(self):
        costs = self._family(spread=0.05)
        guarantee = guarantee_for_cwtm(costs, f=1, region=BallSet(np.zeros(4), 3.0))
        assert guarantee.applicable
        assert guarantee.error_radius == pytest.approx(0.0, abs=1e-9)
        assert "CWTM guarantee:" in guarantee.describe()

    def test_not_applicable_for_large_skew(self):
        costs = self._family(spread=0.8)
        guarantee = guarantee_for_cwtm(costs, f=1, region=BallSet(np.zeros(4), 3.0))
        assert not guarantee.applicable
        assert guarantee.error_radius == float("inf")
        assert "NOT applicable" in guarantee.describe()

    def test_pre_measured_skew_respected(self):
        costs = self._family()
        guarantee = guarantee_for_cwtm(
            costs, f=1, region=BallSet(np.zeros(4), 3.0), skew=0.01
        )
        assert guarantee.skew == 0.01
        assert guarantee.applicable

    def test_threshold_formula(self):
        costs = self._family(d=9, spread=0.05)
        guarantee = guarantee_for_cwtm(costs, f=1, region=BallSet(np.zeros(9), 3.0))
        expected = guarantee.constants.gamma / (guarantee.constants.mu * 3.0)
        assert guarantee.skew_threshold == pytest.approx(expected)


class TestHeterogeneitySweep:
    def test_gap_widens_with_heterogeneity(self):
        from repro.experiments import run_heterogeneity_sweep

        result = run_heterogeneity_sweep(
            heterogeneity_levels=(0.0, 2.0), iterations=150, filters=("cge",)
        )
        first_gap = result.rows[0][-1]
        last_gap = result.rows[-1][-1]
        assert first_gap < 0.05
        assert last_gap > first_gap + 0.05

    def test_series_shapes(self):
        from repro.experiments import run_heterogeneity_sweep

        result = run_heterogeneity_sweep(
            heterogeneity_levels=(0.0, 0.5), iterations=100, filters=("cge", "cwtm")
        )
        assert len(result.series["fault-free accuracy"]) == 2
        assert len(result.series["cge attacked accuracy"]) == 2
        assert len(result.rows[0]) == 2 + 2 + 2  # level, ref, 2 acc, 2 gaps


class TestLearningEvalSvmVariant:
    def test_hinge_loss_runs_and_separates(self):
        from repro.experiments import run_learning_eval

        result = run_learning_eval(
            heterogeneity_levels=(0.0,), iterations=150,
            filters=("cge", "average"), attacks=("sign-flip",), loss="hinge",
        )
        assert "loss=hinge" in result.title
        accuracy = {(row[1], row[2]): row[4] for row in result.rows}
        reference = accuracy[("fault-free", "(none)")]
        assert accuracy[("cge", "sign-flip")] > reference - 0.05
        assert accuracy[("average", "sign-flip")] < reference - 0.2
