"""Property suite for the seeded topology generators.

Pins the invariants every generator must satisfy — seed determinism,
symmetric canonical adjacency, degree bounds, connectivity — plus the
per-neighborhood 2f-redundancy accounting and its structured
infeasibility error. Hypothesis pins the construction-order invariance:
a topology built from any permutation of (possibly flipped) edges is
indistinguishable from the canonical one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    InvalidParameterError,
    TopologyInfeasibilityError,
    UnknownRegistryEntryError,
)
from repro.system.topology import (
    Topology,
    available_topologies,
    complete_topology,
    make_topology,
    random_geometric_topology,
    random_regular_topology,
    ring_topology,
    scale_free_topology,
    torus_topology,
)

#: (name, n, params) cells covering every registered generator.
GENERATOR_CELLS = [
    ("ring", 12, {"hops": 1}),
    ("ring", 12, {"hops": 3}),
    ("torus", 12, {}),
    ("random-regular", 16, {"degree": 4}),
    ("random-geometric", 20, {"radius": 0.5}),
    ("scale-free", 18, {"attach": 2}),
    ("complete", 9, {}),
]


def _adjacency(topology):
    return [topology.neighbors(i).tolist() for i in range(topology.n)]


class TestGeneratorProperties:
    @pytest.mark.parametrize("name,n,params", GENERATOR_CELLS)
    def test_seed_determinism(self, name, n, params):
        a = make_topology(name, n, seed=7, **params)
        b = make_topology(name, n, seed=7, **params)
        assert _adjacency(a) == _adjacency(b)

    @pytest.mark.parametrize("name,n,params", GENERATOR_CELLS)
    def test_symmetric_adjacency(self, name, n, params):
        topology = make_topology(name, n, seed=3, **params)
        for u in range(n):
            for v in topology.neighbors(u):
                assert u in topology.neighbors(int(v))

    @pytest.mark.parametrize("name,n,params", GENERATOR_CELLS)
    def test_neighbor_lists_sorted_no_self_loops(self, name, n, params):
        topology = make_topology(name, n, seed=3, **params)
        for u in range(n):
            peers = topology.neighbors(u).tolist()
            assert peers == sorted(set(peers))
            assert u not in peers

    def test_degree_bounds(self):
        assert set(ring_topology(12, hops=2).degrees) == {4}
        assert set(torus_topology(3, 4).degrees) == {4}
        assert set(random_regular_topology(16, 4, seed=0).degrees) == {4}
        assert set(complete_topology(8).degrees) == {7}
        sf = scale_free_topology(20, attach=2, seed=1)
        assert sf.min_degree >= 2
        geo = random_geometric_topology(20, radius=0.3, seed=5)
        assert geo.max_degree <= 19

    @pytest.mark.parametrize(
        "topology",
        [
            ring_topology(12, hops=1),
            torus_topology(3, 5),
            random_regular_topology(24, 6, seed=2),
            scale_free_topology(15, attach=2, seed=2),
            complete_topology(6),
        ],
        ids=["ring", "torus", "random-regular", "scale-free", "complete"],
    )
    def test_guaranteed_connected(self, topology):
        assert topology.is_connected
        assert topology.components() == [list(range(topology.n))]

    def test_geometric_components_partition_ids(self):
        # The one generator allowed to be disconnected: components must
        # still partition the id space exactly.
        topology = random_geometric_topology(30, radius=0.12, seed=0)
        members = [i for group in topology.components() for i in group]
        assert sorted(members) == list(range(30))

    def test_random_regular_large_n_feasible(self):
        topology = random_regular_topology(1024, 8, seed=0)
        assert set(topology.degrees) == {8}
        assert topology.is_connected

    def test_neighbor_matrix_matches_lists_and_is_frozen(self):
        topology = scale_free_topology(14, attach=2, seed=3)
        nbr, valid = topology.neighbor_matrix()
        for i in range(topology.n):
            assert nbr[i, valid[i]].tolist() == topology.neighbors(i).tolist()
        with pytest.raises(ValueError):
            nbr[0, 0] = 99

    def test_registry_round_trip_and_unknown_name(self):
        assert "ring" in available_topologies()
        for name in available_topologies():
            topology = make_topology(name, 12, seed=1)
            assert topology.n == 12
        with pytest.raises(UnknownRegistryEntryError, match="topology"):
            make_topology("hypercube", 8)

    def test_generator_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            ring_topology(2)
        with pytest.raises(InvalidParameterError):
            ring_topology(8, hops=4)  # 2*hops >= n
        with pytest.raises(InvalidParameterError):
            torus_topology(2, 5)
        with pytest.raises(InvalidParameterError):
            random_regular_topology(7, 3, seed=0)  # odd n * odd degree
        with pytest.raises(InvalidParameterError):
            Topology(4, [(0, 0)])  # self-loop
        with pytest.raises(InvalidParameterError):
            Topology(4, [(0, 9)])  # out of range


@st.composite
def edge_sets(draw):
    n = draw(st.integers(4, 12))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=len(possible))
    )
    return n, edges


class TestConstructionOrderInvariance:
    @settings(max_examples=60, deadline=None)
    @given(data=edge_sets(), flip_seed=st.integers(0, 2**31 - 1))
    def test_edge_order_and_orientation_irrelevant(self, data, flip_seed):
        n, edges = data
        canonical = Topology(n, edges)
        rng = np.random.default_rng(flip_seed)
        shuffled = [
            (v, u) if rng.integers(2) else (u, v)
            for u, v in rng.permutation(np.array(edges, dtype=np.int64))
        ]
        # duplicates of existing edges must also collapse canonically
        shuffled += edges[: len(edges) // 2]
        rebuilt = Topology(n, shuffled)
        assert _adjacency(canonical) == _adjacency(rebuilt)
        nbr_a, valid_a = canonical.neighbor_matrix()
        nbr_b, valid_b = rebuilt.neighbor_matrix()
        assert (nbr_a == nbr_b).all() and (valid_a == valid_b).all()


class TestFaultAccounting:
    def test_local_fault_counts(self):
        topology = ring_topology(6, hops=1)
        counts = topology.local_fault_counts([0])
        # agent 0's neighbors are 1 and 5: they each see one faulty peer
        assert counts.tolist() == [0, 1, 0, 0, 0, 1]
        with pytest.raises(InvalidParameterError, match="out of range"):
            topology.local_fault_counts([6])

    def test_resolve_budget_forms(self):
        topology = ring_topology(6, hops=1)
        derived = topology.resolve_budgets(None, [0])
        assert derived.tolist() == [0, 1, 0, 0, 0, 1]
        assert topology.resolve_budgets(1).tolist() == [1] * 6
        per_agent = topology.resolve_budgets([0, 1, 0, 0, 0, 1])
        assert per_agent.tolist() == [0, 1, 0, 0, 0, 1]
        with pytest.raises(InvalidParameterError):
            topology.resolve_budgets(-1)
        with pytest.raises(InvalidParameterError):
            topology.resolve_budgets([1, 2])  # wrong shape

    def test_feasibility_boundary_is_exactly_2f(self):
        topology = ring_topology(8, hops=1)  # degree 2 everywhere
        assert topology.feasible_agents(np.ones(8, dtype=int)).all()
        assert not topology.feasible_agents(np.full(8, 2)).any()

    def test_infeasibility_error_is_structured(self):
        topology = ring_topology(6, hops=1)
        # faulty {0, 2, 4}: agents 1, 3, 5 each see two Byzantine neighbors
        with pytest.raises(TopologyInfeasibilityError) as excinfo:
            topology.check_local_redundancy(None, [0, 2, 4])
        err = excinfo.value
        assert err.agents == [1, 3, 5]
        assert err.degrees == {1: 2, 3: 2, 5: 2}
        assert err.budgets == {1: 2, 3: 2, 5: 2}
        assert "2f-redundancy" in str(err)

    def test_check_passes_and_returns_budgets_when_feasible(self):
        topology = ring_topology(8, hops=2)
        resolved = topology.check_local_redundancy(None, [0, 4])
        assert resolved.sum() > 0
        assert (resolved <= 2).all()
