"""Tests for the φ-minimizing best-response adversary."""

import numpy as np
import pytest

from repro.aggregators.mean import Average
from repro.aggregators.cge import ComparativeGradientElimination
from repro.attacks.base import AttackContext
from repro.attacks.best_response import PhiMinimizingAttack
from repro.exceptions import InvalidParameterError


def make_context(estimate, honest, num_faulty=1, seed=0):
    honest = np.asarray(honest, dtype=float)
    return AttackContext(
        round_index=0,
        estimate=np.asarray(estimate, dtype=float),
        honest_gradients=honest,
        honest_ids=list(range(num_faulty, num_faulty + honest.shape[0])),
        faulty_ids=list(range(num_faulty)),
        faulty_costs=[None] * num_faulty,
        rng=np.random.default_rng(seed),
    )


class TestCandidateSearch:
    def test_never_increases_phi_over_zero_candidate(self):
        """The chosen forged vector's φ is at most the zero candidate's φ
        (zero is always in the candidate set)."""
        target = np.zeros(2)
        estimate = np.array([2.0, 1.0])
        honest = np.array([[1.0, 0.5], [0.8, 0.4], [1.2, 0.7]])
        gradient_filter = ComparativeGradientElimination(f=1)
        attack = PhiMinimizingAttack(gradient_filter, target, num_random_probes=4)
        forged = attack(make_context(estimate, honest))
        gap = estimate - target
        phi_chosen = float(gap @ gradient_filter(np.vstack([honest, forged])))
        zero = np.zeros((1, 2))
        phi_zero = float(gap @ gradient_filter(np.vstack([honest, zero])))
        assert phi_chosen <= phi_zero + 1e-9

    def test_against_average_picks_large_push(self):
        """Unfiltered averaging: the adversary exploits unbounded influence
        with its largest candidate magnitude along −(x − x_H)... which makes
        φ strongly negative."""
        target = np.zeros(2)
        estimate = np.array([1.0, 0.0])
        honest = np.ones((3, 2))
        attack = PhiMinimizingAttack(Average(), target, num_random_probes=0)
        forged = attack(make_context(estimate, honest))
        gap = estimate - target
        phi = float(gap @ Average()(np.vstack([honest, forged])))
        assert phi < 0  # averaging can always be pushed into ascent

    def test_shape_matches_faulty_count(self):
        attack = PhiMinimizingAttack(Average(), np.zeros(3))
        honest = np.ones((4, 3))
        out = attack(make_context(np.ones(3), honest, num_faulty=2))
        assert out.shape == (2, 3)
        assert np.allclose(out[0], out[1])

    def test_at_target_with_zero_honest_gradients(self):
        # Degenerate round: estimate == target, honest gradients ~ 0.
        attack = PhiMinimizingAttack(Average(), np.zeros(2), num_random_probes=2)
        out = attack(make_context(np.zeros(2), np.zeros((3, 2))))
        assert out.shape == (1, 2)
        assert np.all(np.isfinite(out))

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            PhiMinimizingAttack(Average(), np.zeros(2), num_random_probes=-1)
        with pytest.raises(InvalidParameterError):
            PhiMinimizingAttack(Average(), np.zeros(2), magnitudes=())
        with pytest.raises(InvalidParameterError):
            PhiMinimizingAttack(Average(), np.zeros(2), magnitudes=(-1.0,))


class TestEndToEnd:
    def test_dominates_fixed_attacks_against_average(self):
        from repro.analysis.metrics import final_error
        from repro.attacks.simple import GradientReverse
        from repro.problems.linear_regression import make_redundant_regression
        from repro.system.runner import run_dgd

        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=0)
        x_H = instance.honest_minimizer(range(1, 6))
        fixed = run_dgd(instance.costs, GradientReverse(), faulty_ids=[0],
                        gradient_filter="average", iterations=200, seed=0)
        best = run_dgd(
            instance.costs,
            PhiMinimizingAttack(Average(), x_H),
            faulty_ids=[0], gradient_filter="average", iterations=200, seed=0,
        )
        assert final_error(best, x_H) > final_error(fixed, x_H)

    def test_cannot_break_cge_when_alpha_positive(self):
        from repro.analysis.metrics import final_error
        from repro.core.conditions import cge_alpha, regularity_of_quadratics
        from repro.problems.linear_regression import make_redundant_regression
        from repro.system.runner import run_dgd

        instance = make_redundant_regression(n=15, d=2, f=1, noise_std=0.0, seed=2)
        honest = list(range(1, 15))
        constants = regularity_of_quadratics(instance.costs, 1, honest=honest)
        assert cge_alpha(15, 1, constants.mu, constants.gamma) > 0
        x_H = instance.honest_minimizer(honest)
        trace = run_dgd(
            instance.costs,
            PhiMinimizingAttack(ComparativeGradientElimination(f=1), x_H),
            faulty_ids=[0], gradient_filter="cge", iterations=400, seed=2,
        )
        assert final_error(trace, x_H) < 0.1
