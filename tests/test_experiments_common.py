"""Tests for the experiment-harness shared plumbing."""

import numpy as np
import pytest

from repro.experiments.common import (
    PAPER_X0,
    paper_setup,
    run_attacked,
    run_fault_free,
)


class TestPaperSetup:
    def test_configuration(self):
        instance = paper_setup()
        assert instance.n == 6
        assert instance.dimension == 2
        assert np.allclose(instance.x_star, [1.0, 1.0])

    def test_seeded_reproducibility(self):
        a = paper_setup(seed=5)
        b = paper_setup(seed=5)
        assert np.array_equal(a.b, b.b)


class TestRunners:
    def test_attacked_run_starts_at_paper_x0(self):
        instance = paper_setup()
        trace = run_attacked(instance, "cge", "gradient-reverse", iterations=3)
        assert np.allclose(trace.estimates[0], PAPER_X0)
        assert trace.faulty_ids == [0]

    def test_attack_kwargs_forwarded(self):
        instance = paper_setup()
        weak = run_attacked(
            instance, "average", "sign-flip", iterations=50,
            attack_kwargs={"strength": 1.0},
        )
        strong = run_attacked(
            instance, "average", "sign-flip", iterations=50,
            attack_kwargs={"strength": 20.0},
        )
        # Stronger sign-flip pushes the unfiltered run further.
        x_H = instance.honest_minimizer([1, 2, 3, 4, 5])
        assert np.linalg.norm(strong.final_estimate - x_H) > np.linalg.norm(
            weak.final_estimate - x_H
        )

    def test_fault_free_excludes_faulty_costs(self):
        instance = paper_setup()
        trace = run_fault_free(instance, honest_ids=[1, 2, 3, 4, 5], iterations=5)
        # Only 5 agents participate: 5 broadcasts + 5 replies per round.
        assert trace.messages_delivered == 5 * 10
        assert trace.faulty_ids == []
