"""Tests for the partially-synchronous fault model and network."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError, ProtocolViolationError
from repro.system.faultinjection import deterministic_choice, deterministic_draw
from repro.system.healing import RoundInbox
from repro.system.messages import SERVER_ID, EstimateBroadcast, GradientMessage
from repro.system.netfaults import (
    CORRUPTION_MODES,
    FaultProfile,
    NetworkFaultModel,
    PartiallySynchronousNetwork,
    corrupt_gradient,
)


def _grad(sender, round_index, values):
    return GradientMessage(
        sender=sender, round_index=round_index, gradient=np.asarray(values, dtype=float)
    )


class TestDeterministicDraws:
    def test_draw_in_unit_interval_and_reproducible(self):
        values = [deterministic_draw(7, "a", i) for i in range(100)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert values == [deterministic_draw(7, "a", i) for i in range(100)]

    def test_draw_depends_on_seed_and_key(self):
        assert deterministic_draw(1, "x") != deterministic_draw(2, "x")
        assert deterministic_draw(1, "x") != deterministic_draw(1, "y")

    def test_choice_respects_bounds(self):
        picks = {deterministic_choice(3, 2, 5, i) for i in range(200)}
        assert picks == {2, 3, 4, 5}

    def test_choice_rejects_empty_range(self):
        with pytest.raises(InvalidParameterError):
            deterministic_choice(0, 5, 4)


class TestFaultProfile:
    def test_null_profile_flags(self):
        profile = FaultProfile()
        assert profile.is_null
        assert profile.preserves_synchrony
        assert profile.worst_case_delay() == 0

    def test_probability_validation(self):
        with pytest.raises(InvalidParameterError):
            FaultProfile(drop_prob=1.5)

    def test_delay_requires_bound(self):
        with pytest.raises(InvalidParameterError):
            FaultProfile(delay_prob=0.5, max_delay=0)

    def test_corrupt_mode_validated(self):
        with pytest.raises(InvalidParameterError):
            FaultProfile(corrupt_mode="gamma-ray")

    def test_recover_must_follow_crash(self):
        with pytest.raises(InvalidParameterError):
            FaultProfile(crash_round=5, recover_round=5)
        with pytest.raises(InvalidParameterError):
            FaultProfile(recover_round=3)

    def test_crash_window(self):
        profile = FaultProfile(crash_round=5, recover_round=8)
        assert not profile.is_down(4)
        assert profile.is_down(5)
        assert profile.is_down(7)
        assert not profile.is_down(8)
        permanent = FaultProfile(crash_round=2)
        assert permanent.is_down(1_000_000)

    def test_straggle_schedule_matches_fail_every_nth(self):
        profile = FaultProfile(straggle_every=3, straggle_delay=2)
        fired = [t for t in range(9) if profile.straggles_at(t)]
        assert fired == [2, 5, 8]
        assert not profile.preserves_synchrony

    def test_duplication_and_corruption_preserve_synchrony(self):
        profile = FaultProfile(duplicate_prob=0.5, corrupt_prob=0.5)
        assert profile.preserves_synchrony
        assert not profile.is_null


class TestNetworkFaultModel:
    def test_default_is_null(self):
        model = NetworkFaultModel()
        assert model.is_null
        assert model.preserves_synchrony
        assert model.delay_bound() == 0
        assert model.staleness_bound() == 0

    def test_uniform_and_profile_lookup(self):
        profile = FaultProfile(delay_prob=0.2, max_delay=3)
        model = NetworkFaultModel.uniform([0, 1], profile, seed=4)
        assert model.profile(0) is not None and model.profile(0) == profile
        assert model.profile(9).is_null
        assert model.delay_bound() == 3
        assert model.staleness_bound() == 6

    def test_drop_only_model_gets_one_round_of_staleness(self):
        model = NetworkFaultModel(profiles={0: FaultProfile(drop_prob=0.1)})
        assert model.delay_bound() == 0
        assert model.staleness_bound() == 1

    def test_profiles_type_checked(self):
        with pytest.raises(InvalidParameterError):
            NetworkFaultModel(profiles={0: "lossy"})


class TestCorruptGradient:
    def test_input_never_modified(self):
        original = np.array([1.0, 2.0, 3.0])
        kept = original.copy()
        corrupt_gradient(original, "nan", 0, "k")
        assert np.array_equal(original, kept)

    def test_deterministic(self):
        g = np.arange(5.0)
        a = corrupt_gradient(g, "bitflip", 3, "key", 1)
        b = corrupt_gradient(g, "bitflip", 3, "key", 1)
        assert np.array_equal(a, b, equal_nan=True)

    @pytest.mark.parametrize("mode", CORRUPTION_MODES)
    def test_exactly_one_coordinate_damaged(self, mode):
        g = np.linspace(1.0, 2.0, 6)
        damaged = corrupt_gradient(g, mode, 11, "k")
        changed = [i for i in range(6) if not (damaged[i] == g[i])]
        assert len(changed) == 1
        if mode == "nan":
            assert np.isnan(damaged[changed[0]])
        elif mode == "inf":
            assert np.isinf(damaged[changed[0]])

    def test_unknown_mode_rejected(self):
        with pytest.raises(InvalidParameterError):
            corrupt_gradient(np.ones(2), "zero", 0)


class TestPartiallySynchronousNetwork:
    def test_null_model_is_synchronous(self):
        network = PartiallySynchronousNetwork()
        for sender in range(3):
            network.submit(_grad(sender, 0, [float(sender)]), SERVER_ID, 0)
        inbound = network.collect(SERVER_ID, 0)
        assert [m.sender for m in inbound] == [0, 1, 2]
        assert network.messages_delivered == 3
        assert network.pending_count == 0

    def test_drop_is_deterministic_and_accounted(self):
        model = NetworkFaultModel.uniform([0], FaultProfile(drop_prob=1.0), seed=1)
        network = PartiallySynchronousNetwork(model)
        message = _grad(0, 0, [1.0, 2.0])
        network.submit(message, SERVER_ID, 0)
        assert network.collect(SERVER_ID, 0) == []
        assert network.messages_dropped == 1
        assert network.bytes_dropped == message.size_bytes()
        # Identical rebuild replays the identical fate.
        replay = PartiallySynchronousNetwork(model)
        replay.submit(message, SERVER_ID, 0)
        assert replay.collect(SERVER_ID, 0) == []

    def test_delay_holds_message_until_due_round(self):
        model = NetworkFaultModel.uniform(
            [0], FaultProfile(delay_prob=1.0, max_delay=1), seed=2
        )
        network = PartiallySynchronousNetwork(model)
        network.submit(_grad(0, 0, [1.0]), SERVER_ID, 0)
        assert network.collect(SERVER_ID, 0) == []
        late = network.collect(SERVER_ID, 1)
        assert [m.sender for m in late] == [0]
        assert network.messages_delayed == 1

    def test_duplicate_yields_identical_copy(self):
        model = NetworkFaultModel.uniform([0], FaultProfile(duplicate_prob=1.0), seed=3)
        network = PartiallySynchronousNetwork(model)
        network.submit(_grad(0, 0, [4.0, 5.0]), SERVER_ID, 0)
        copies = network.collect(SERVER_ID, 0)
        assert len(copies) == 2
        assert copies[0].payload_digest() == copies[1].payload_digest()
        assert network.messages_duplicated == 1

    def test_corruption_hits_gradients_not_broadcasts(self):
        model = NetworkFaultModel.uniform(
            [0, 1], FaultProfile(corrupt_prob=1.0, corrupt_mode="nan"), seed=4
        )
        network = PartiallySynchronousNetwork(model)
        network.submit(_grad(0, 0, [1.0, 2.0]), SERVER_ID, 0)
        broadcast = EstimateBroadcast(sender=SERVER_ID, round_index=0, estimate=[9.0])
        network.submit(broadcast, 1, 0)
        (gradient,) = network.collect(SERVER_ID, 0)
        (estimate,) = network.collect(1, 0)
        assert not gradient.is_finite
        assert np.all(np.isfinite(estimate.estimate))
        assert network.messages_corrupted == 1

    def test_crash_window_silences_both_directions(self):
        model = NetworkFaultModel(
            profiles={1: FaultProfile(crash_round=0, recover_round=2)}, seed=5
        )
        network = PartiallySynchronousNetwork(model)
        broadcast = EstimateBroadcast(sender=SERVER_ID, round_index=0, estimate=[1.0])
        network.submit(broadcast, 1, 0)  # downlink governed by receiver 1
        network.submit(_grad(1, 0, [1.0]), SERVER_ID, 0)  # uplink by sender 1
        assert network.collect(1, 0) == []
        assert network.collect(SERVER_ID, 0) == []
        assert network.messages_dropped == 2
        # After recovery both directions flow again.
        network.submit(_grad(1, 2, [1.0]), SERVER_ID, 2)
        assert len(network.collect(SERVER_ID, 2)) == 1

    def test_reorder_is_a_seeded_permutation(self):
        profile = FaultProfile()
        messages = [_grad(s, 0, [float(s)]) for s in range(5)]
        plain = PartiallySynchronousNetwork(
            NetworkFaultModel(profiles={}, seed=6, reorder=False)
        )
        shuffled = PartiallySynchronousNetwork(
            NetworkFaultModel(profiles={}, seed=6, reorder=True)
        )
        for m in messages:
            plain.submit(m, SERVER_ID, 0)
            shuffled.submit(m, SERVER_ID, 0)
        plain_order = [m.sender for m in plain.collect(SERVER_ID, 0)]
        shuffled_order = [m.sender for m in shuffled.collect(SERVER_ID, 0)]
        assert sorted(shuffled_order) == plain_order == [0, 1, 2, 3, 4]
        # Same seed, same permutation.
        replay = PartiallySynchronousNetwork(
            NetworkFaultModel(profiles={}, seed=6, reorder=True)
        )
        for m in messages:
            replay.submit(m, SERVER_ID, 0)
        assert [m.sender for m in replay.collect(SERVER_ID, 0)] == shuffled_order
        assert profile.is_null  # silence the unused-variable lint

    def test_traffic_summary_has_fault_counters(self):
        network = PartiallySynchronousNetwork()
        summary = network.traffic_summary()
        for key in (
            "messages_delivered",
            "messages_dropped",
            "bytes_dropped",
            "messages_delayed",
            "messages_duplicated",
            "messages_corrupted",
        ):
            assert key in summary

    def test_state_round_trip_preserves_in_flight_queue(self):
        model = NetworkFaultModel.uniform(
            [0, 1], FaultProfile(delay_prob=1.0, max_delay=2, corrupt_prob=0.5), seed=7
        )
        network = PartiallySynchronousNetwork(model)
        for sender in range(2):
            network.submit(_grad(sender, 0, [1.0 + sender, -2.0]), SERVER_ID, 0)
        assert network.pending_count == 2

        clone = PartiallySynchronousNetwork(model)
        clone.restore_state(network.state())
        assert clone.pending_count == network.pending_count
        assert clone.traffic_summary() == network.traffic_summary()
        for r in range(1, 3):
            original = network.collect(SERVER_ID, r)
            restored = clone.collect(SERVER_ID, r)
            assert [m.sender for m in original] == [m.sender for m in restored]
            for a, b in zip(original, restored):
                assert np.array_equal(a.gradient, b.gradient, equal_nan=True)

    def test_state_round_trips_non_finite_payloads(self):
        network = PartiallySynchronousNetwork(
            NetworkFaultModel.uniform(
                [0], FaultProfile(delay_prob=1.0, max_delay=1), seed=8
            )
        )
        network.submit(_grad(0, 0, [np.nan, np.inf]), SERVER_ID, 0)
        clone = PartiallySynchronousNetwork(network.fault_model)
        clone.restore_state(network.state())
        (message,) = clone.collect(SERVER_ID, 1)
        assert np.isnan(message.gradient[0]) and np.isposinf(message.gradient[1])


class TestGradientMessageBoundary:
    def test_validate_rejects_non_finite(self):
        message = _grad(0, 0, [np.nan, 1.0])
        with pytest.raises(ProtocolViolationError):
            message.validate()

    def test_validate_rejects_wrong_dimension(self):
        message = _grad(0, 0, [1.0, 2.0])
        with pytest.raises(ProtocolViolationError):
            message.validate(dimension=3)

    def test_validate_returns_self_on_success(self):
        message = _grad(0, 0, [1.0, 2.0])
        assert message.validate(dimension=2) is message

    def test_payload_digest_tracks_payload_only(self):
        a = _grad(0, 0, [1.0, 2.0])
        b = _grad(5, 3, [1.0, 2.0])
        c = _grad(0, 0, [1.0, 2.000001])
        assert a.payload_digest() == b.payload_digest()
        assert a.payload_digest() != c.payload_digest()


def _inbox_messages():
    """Strategy: a pool of gradient deliveries with duplicates mixed in."""
    single = st.tuples(
        st.integers(0, 3),  # sender
        st.integers(0, 2),  # round
        st.lists(
            st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=2,
        ),
    )
    return st.lists(single, min_size=1, max_size=12)


def _fill_inbox(deliveries):
    inbox = RoundInbox()
    for sender, round_index, values in deliveries:
        inbox.offer(_grad(sender, round_index, values), dimension=2)
    return inbox


def _observable_state(inbox, rounds=3, staleness=2):
    state = {}
    for r in range(rounds):
        state[("fresh", r)] = frozenset(inbox.fresh_senders(r))
        for sender in range(4):
            found = inbox.latest(sender, r, staleness)
            state[("latest", sender, r)] = (
                None if found is None else (found[0], found[1].payload_digest())
            )
    return state


class TestRoundInboxProperties:
    @settings(max_examples=50, deadline=None)
    @given(deliveries=_inbox_messages(), seed=st.integers(0, 10_000))
    def test_permutation_invariance(self, deliveries, seed):
        """The inbox's observable state ignores arrival order."""
        rng = np.random.default_rng(seed)
        shuffled = [deliveries[i] for i in rng.permutation(len(deliveries))]
        assert _observable_state(_fill_inbox(deliveries)) == _observable_state(
            _fill_inbox(shuffled)
        )

    @settings(max_examples=50, deadline=None)
    @given(deliveries=_inbox_messages(), seed=st.integers(0, 10_000))
    def test_idempotence_under_duplicates(self, deliveries, seed):
        """Re-delivering any subset of messages changes nothing."""
        rng = np.random.default_rng(seed)
        extras = [deliveries[i] for i in rng.integers(0, len(deliveries), size=5)]
        assert _observable_state(_fill_inbox(deliveries)) == _observable_state(
            _fill_inbox(deliveries + extras)
        )

    def test_duplicate_vs_conflict_classification(self):
        inbox = RoundInbox()
        assert inbox.offer(_grad(0, 0, [1.0, 1.0])) == RoundInbox.ACCEPTED
        assert inbox.offer(_grad(0, 0, [1.0, 1.0])) == RoundInbox.DUPLICATE
        assert inbox.offer(_grad(0, 0, [2.0, 2.0])) == RoundInbox.CONFLICT
        assert inbox.conflicts_by_agent == {0: 1}

    def test_quarantine_counts_per_sender(self):
        inbox = RoundInbox()
        assert inbox.offer(_grad(3, 0, [np.nan, 0.0])) == RoundInbox.QUARANTINED
        assert inbox.quarantined_by_agent == {3: 1}
        assert inbox.quarantined_total == 1
        # Quarantine off: the payload is stored as-is.
        permissive = RoundInbox()
        status = permissive.offer(
            _grad(3, 0, [np.nan, 0.0]), quarantine_non_finite=False
        )
        assert status == RoundInbox.ACCEPTED

    def test_latest_prefers_fresh_then_falls_back(self):
        inbox = RoundInbox()
        inbox.offer(_grad(1, 0, [1.0, 0.0]))
        inbox.offer(_grad(1, 2, [2.0, 0.0]))
        found_round, message = inbox.latest(1, 2, max_staleness=2)
        assert found_round == 2 and message.gradient[0] == 2.0
        found_round, message = inbox.latest(1, 1, max_staleness=2)
        assert found_round == 0 and message.gradient[0] == 1.0
        assert inbox.latest(1, 1, max_staleness=0) is None

    def test_prune_discards_old_rounds(self):
        inbox = RoundInbox()
        inbox.offer(_grad(0, 0, [1.0, 0.0]))
        inbox.offer(_grad(0, 5, [2.0, 0.0]))
        inbox.prune(before_round=3)
        assert inbox.latest(0, 5, max_staleness=5)[0] == 5
        assert inbox.latest(0, 2, max_staleness=2) is None

    def test_state_round_trip(self):
        inbox = RoundInbox()
        inbox.offer(_grad(0, 0, [1.0, -1.0]))
        inbox.offer(_grad(0, 0, [2.0, -2.0]))  # conflict
        inbox.offer(_grad(2, 1, [np.nan, 0.0]))  # quarantined
        clone = RoundInbox()
        clone.restore_state(inbox.state())
        assert _observable_state(clone) == _observable_state(inbox)
        assert clone.quarantined_by_agent == inbox.quarantined_by_agent
        assert clone.conflicts_by_agent == inbox.conflicts_by_agent
