"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import default_seed, derive_seed, ensure_rng, spawn_rngs


def test_ensure_rng_from_int_is_deterministic():
    a = ensure_rng(7).random(5)
    b = ensure_rng(7).random(5)
    assert np.array_equal(a, b)


def test_ensure_rng_passthrough_generator():
    gen = np.random.default_rng(0)
    assert ensure_rng(gen) is gen


def test_ensure_rng_accepts_seed_sequence():
    seq = np.random.SeedSequence(42)
    gen = ensure_rng(seq)
    assert isinstance(gen, np.random.Generator)


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_spawn_rngs_are_independent_and_reproducible():
    first = [g.random(3) for g in spawn_rngs(9, 3)]
    second = [g.random(3) for g in spawn_rngs(9, 3)]
    for a, b in zip(first, second):
        assert np.array_equal(a, b)
    # Different children differ from one another.
    assert not np.array_equal(first[0], first[1])


def test_spawn_rngs_from_generator():
    children = spawn_rngs(np.random.default_rng(1), 2)
    assert len(children) == 2
    assert not np.array_equal(children[0].random(4), children[1].random(4))


def test_spawn_rngs_rejects_negative_count():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_spawn_rngs_zero_count():
    assert spawn_rngs(0, 0) == []


def test_derive_seed_in_range():
    seed = derive_seed(np.random.default_rng(3))
    assert 0 <= seed < 2**63


def test_derive_seed_draws_from_full_inclusive_range():
    # The draw is uniform over [0, 2**63): the exclusive numpy bound must be
    # 2**63 itself, not 2**63 - 1 (which silently dropped the largest seed).
    # Pin the literal value so a change to the bound or dtype cannot slip
    # through as a silent reseeding of every derived stream.
    assert derive_seed(np.random.default_rng(3)) == 789974133212406140


def test_spawn_rngs_generator_branch_uses_full_seed_range():
    # Same inclusive-range fix in the Generator branch of spawn_rngs: the
    # children must be seeded by uint64 draws over [0, 2**63).
    children = spawn_rngs(np.random.default_rng(1), 2)
    expected_seeds = [4720721261117928063, 8766480278738261043]
    for child, expected in zip(children, expected_seeds):
        assert np.array_equal(
            child.random(4), np.random.default_rng(expected).random(4)
        )


def test_default_seed_is_stable():
    assert default_seed() == default_seed()
