"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import default_seed, derive_seed, ensure_rng, spawn_rngs


def test_ensure_rng_from_int_is_deterministic():
    a = ensure_rng(7).random(5)
    b = ensure_rng(7).random(5)
    assert np.array_equal(a, b)


def test_ensure_rng_passthrough_generator():
    gen = np.random.default_rng(0)
    assert ensure_rng(gen) is gen


def test_ensure_rng_accepts_seed_sequence():
    seq = np.random.SeedSequence(42)
    gen = ensure_rng(seq)
    assert isinstance(gen, np.random.Generator)


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_spawn_rngs_are_independent_and_reproducible():
    first = [g.random(3) for g in spawn_rngs(9, 3)]
    second = [g.random(3) for g in spawn_rngs(9, 3)]
    for a, b in zip(first, second):
        assert np.array_equal(a, b)
    # Different children differ from one another.
    assert not np.array_equal(first[0], first[1])


def test_spawn_rngs_from_generator():
    children = spawn_rngs(np.random.default_rng(1), 2)
    assert len(children) == 2
    assert not np.array_equal(children[0].random(4), children[1].random(4))


def test_spawn_rngs_rejects_negative_count():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_spawn_rngs_zero_count():
    assert spawn_rngs(0, 0) == []


def test_derive_seed_in_range():
    seed = derive_seed(np.random.default_rng(3))
    assert 0 <= seed < 2**63


def test_default_seed_is_stable():
    assert default_seed() == default_seed()
