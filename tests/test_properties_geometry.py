"""Property-based tests for the geometry and redundancy primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.geometry import FinitePointSet, Singleton, hausdorff_distance
from repro.core.redundancy import measure_redundancy_margin
from repro.optimization.cost_functions import QuadraticCost, TranslatedQuadratic
from repro.optimization.projections import BallSet, BoxSet

finite_floats = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False)


def points(rows):
    return arrays(dtype=np.float64, shape=(rows, 2), elements=finite_floats)


class TestHausdorffMetricAxioms:
    @settings(max_examples=30, deadline=None)
    @given(a=points(3), b=points(4))
    def test_symmetry(self, a, b):
        A, B = FinitePointSet(a), FinitePointSet(b)
        assert hausdorff_distance(A, B) == pytest.approx(hausdorff_distance(B, A))

    @settings(max_examples=30, deadline=None)
    @given(a=points(3))
    def test_identity(self, a):
        A = FinitePointSet(a)
        assert hausdorff_distance(A, A) == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(a=points(2), b=points(3), c=points(2))
    def test_triangle_inequality(self, a, b, c):
        A, B, C = FinitePointSet(a), FinitePointSet(b), FinitePointSet(c)
        assert hausdorff_distance(A, C) <= (
            hausdorff_distance(A, B) + hausdorff_distance(B, C) + 1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(a=points(4), x=arrays(np.float64, (2,), elements=finite_floats))
    def test_point_distance_lower_bounds_hausdorff(self, a, x):
        A = FinitePointSet(a)
        X = Singleton(x)
        assert A.distance_to(x) <= hausdorff_distance(A, X) + 1e-9


class TestProjectionProperties:
    @settings(max_examples=40, deadline=None)
    @given(x=arrays(np.float64, (3,), elements=finite_floats))
    def test_idempotence(self, x):
        for convex in (BoxSet.centered(3, 2.0), BallSet(np.zeros(3), 1.5)):
            once = convex.project(x)
            assert np.allclose(convex.project(once), once, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        x=arrays(np.float64, (3,), elements=finite_floats),
        y=arrays(np.float64, (3,), elements=finite_floats),
    )
    def test_nonexpansiveness(self, x, y):
        for convex in (BoxSet.centered(3, 2.0), BallSet(np.zeros(3), 1.5)):
            px, py = convex.project(x), convex.project(y)
            assert np.linalg.norm(px - py) <= np.linalg.norm(x - y) + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(x=arrays(np.float64, (3,), elements=finite_floats))
    def test_projection_is_nearest_feasible_point(self, x):
        ball = BallSet(np.zeros(3), 1.0)
        projected = ball.project(x)
        rng = np.random.default_rng(0)
        for _ in range(10):
            candidate = ball.project(rng.normal(size=3) * 2.0)
            assert np.linalg.norm(x - projected) <= np.linalg.norm(x - candidate) + 1e-9


class TestRedundancyMarginProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        targets=arrays(np.float64, (5, 2), elements=st.floats(-5, 5, allow_nan=False)),
    )
    def test_margin_bounded_by_target_diameter(self, targets):
        """Aggregate minimizers are convex combinations of the targets, so
        the redundancy margin never exceeds the targets' diameter."""
        costs = [TranslatedQuadratic(t) for t in targets]
        margin = measure_redundancy_margin(costs, f=1).margin
        diameter = np.max(
            np.linalg.norm(targets[:, None, :] - targets[None, :, :], axis=2)
        )
        assert margin <= diameter + 1e-6

    @settings(max_examples=15, deadline=None)
    @given(
        target=arrays(np.float64, (2,), elements=st.floats(-5, 5, allow_nan=False)),
        n=st.integers(3, 6),
    )
    def test_identical_costs_always_exact(self, target, n):
        costs = [TranslatedQuadratic(target) for _ in range(n)]
        report = measure_redundancy_margin(costs, f=(n - 1) // 2)
        assert report.margin == pytest.approx(0.0, abs=1e-8)

    @settings(max_examples=10, deadline=None)
    @given(shift=st.floats(0.1, 3.0))
    def test_margin_translation_invariant(self, shift):
        base = [TranslatedQuadratic([float(i), 0.0]) for i in range(5)]
        moved = [TranslatedQuadratic([float(i) + shift, 0.0]) for i in range(5)]
        assert measure_redundancy_margin(base, 1).margin == pytest.approx(
            measure_redundancy_margin(moved, 1).margin, rel=1e-6
        )


class TestQuadraticArgminProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        diag=arrays(np.float64, (3,), elements=st.floats(0.1, 10.0)),
        target=arrays(np.float64, (3,), elements=finite_floats),
    )
    def test_argmin_gradient_is_zero(self, diag, target):
        P = np.diag(diag)
        cost = QuadraticCost(P, -P @ target)
        point = cost.argmin_set().project(np.zeros(3))
        assert np.linalg.norm(cost.gradient(point)) < 1e-6

    @settings(max_examples=25, deadline=None)
    @given(
        diag=arrays(np.float64, (3,), elements=st.floats(0.1, 10.0)),
        target=arrays(np.float64, (3,), elements=finite_floats),
        probe=arrays(np.float64, (3,), elements=finite_floats),
    )
    def test_argmin_value_is_minimal(self, diag, target, probe):
        P = np.diag(diag)
        cost = QuadraticCost(P, -P @ target)
        point = cost.argmin_set().project(np.zeros(3))
        assert cost.value(point) <= cost.value(probe) + 1e-6
