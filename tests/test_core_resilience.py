"""Tests for repro.core.resilience."""

import numpy as np
import pytest

from repro.core.resilience import (
    distance_to_honest_minimizer,
    evaluate_resilience,
    is_exactly_fault_tolerant,
)
from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import TranslatedQuadratic


def identical_costs(n, target=(1.0, 2.0)):
    return [TranslatedQuadratic(np.asarray(target)) for _ in range(n)]


class TestExactVerdicts:
    def test_true_minimizer_is_exact(self):
        costs = identical_costs(5)
        report = evaluate_resilience([1.0, 2.0], costs, honest=[0, 1, 2, 3], f=1)
        assert report.exact
        assert report.epsilon == pytest.approx(0.0, abs=1e-12)

    def test_offset_point_is_not_exact(self):
        costs = identical_costs(5)
        report = evaluate_resilience([1.5, 2.0], costs, honest=[0, 1, 2, 3], f=1)
        assert not report.exact
        assert report.epsilon == pytest.approx(0.5)
        assert report.worst_subset is not None

    def test_boolean_wrapper(self):
        costs = identical_costs(5)
        assert is_exactly_fault_tolerant([1.0, 2.0], costs, [0, 1, 2, 3], 1)
        assert not is_exactly_fault_tolerant([9.0, 9.0], costs, [0, 1, 2, 3], 1)


class TestQuantification:
    def test_epsilon_is_worst_over_subsets(self):
        # Honest minimizers differ; epsilon is the max subset distance.
        costs = [
            TranslatedQuadratic([0.0, 0.0]),
            TranslatedQuadratic([1.0, 0.0]),
            TranslatedQuadratic([2.0, 0.0]),
            TranslatedQuadratic([3.0, 0.0]),
        ]
        report = evaluate_resilience([1.5, 0.0], costs, honest=[0, 1, 2, 3], f=1)
        # Subsets of size 3 have centroids 1.0, 4/3, 5/3, 2.0 -> worst 0.5.
        assert report.epsilon == pytest.approx(0.5)
        assert len(report.per_subset) == 4

    def test_exactly_n_minus_f_honest_gives_one_subset(self):
        costs = identical_costs(5)
        report = evaluate_resilience([1.0, 2.0], costs, honest=[1, 2, 3, 4], f=1)
        assert len(report.per_subset) == 1


class TestValidation:
    def test_too_few_honest_rejected(self):
        costs = identical_costs(5)
        with pytest.raises(InvalidParameterError):
            evaluate_resilience([0.0, 0.0], costs, honest=[0, 1], f=1)

    def test_out_of_range_honest_rejected(self):
        costs = identical_costs(4)
        with pytest.raises(InvalidParameterError):
            evaluate_resilience([0.0, 0.0], costs, honest=[0, 1, 9], f=1)

    def test_summary_strings(self):
        costs = identical_costs(5)
        exact = evaluate_resilience([1.0, 2.0], costs, [0, 1, 2, 3], 1)
        assert "exact" in exact.summary()
        rough = evaluate_resilience([5.0, 5.0], costs, [0, 1, 2, 3], 1)
        assert "approximate" in rough.summary()


def test_distance_to_honest_minimizer():
    costs = identical_costs(4, target=(2.0, 0.0))
    assert distance_to_honest_minimizer([0.0, 0.0], costs, [0, 1, 2]) == pytest.approx(2.0)
