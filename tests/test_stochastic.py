"""Tests for the stochastic gradient oracles (SGD extension)."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import TranslatedQuadratic
from repro.optimization.stochastic import (
    MinibatchCost,
    NoisyGradientCost,
    with_gradient_noise,
)


class TestNoisyGradientCost:
    def test_value_is_exact(self):
        base = TranslatedQuadratic([1.0, 1.0])
        noisy = NoisyGradientCost(base, noise_std=0.5, seed=0)
        x = np.array([0.2, -0.4])
        assert noisy.value(x) == pytest.approx(base.value(x))

    def test_gradient_unbiased(self):
        base = TranslatedQuadratic([1.0, 1.0])
        noisy = NoisyGradientCost(base, noise_std=0.5, seed=1)
        x = np.array([0.0, 0.0])
        draws = np.stack([noisy.gradient(x) for _ in range(4000)])
        assert np.allclose(draws.mean(axis=0), base.gradient(x), atol=0.05)
        assert np.allclose(draws.std(axis=0), 0.5, atol=0.05)

    def test_zero_noise_is_exact(self):
        base = TranslatedQuadratic([2.0])
        noisy = NoisyGradientCost(base, noise_std=0.0, seed=0)
        assert np.allclose(noisy.gradient([0.0]), base.gradient([0.0]))

    def test_exact_gradient_accessor(self):
        base = TranslatedQuadratic([2.0])
        noisy = NoisyGradientCost(base, noise_std=1.0, seed=0)
        assert np.allclose(noisy.exact_gradient([0.0]), base.gradient([0.0]))

    def test_delegates_hessian_and_argmin(self):
        base = TranslatedQuadratic([3.0, 0.0])
        noisy = NoisyGradientCost(base, noise_std=0.1, seed=0)
        assert np.allclose(noisy.hessian(np.zeros(2)), base.hessian(np.zeros(2)))
        assert np.allclose(noisy.argmin_set().point, [3.0, 0.0])

    def test_negative_noise_rejected(self):
        with pytest.raises(InvalidParameterError):
            NoisyGradientCost(TranslatedQuadratic([0.0]), noise_std=-1.0)

    def test_reproducible_given_seed(self):
        base = TranslatedQuadratic([0.0, 0.0])
        a = NoisyGradientCost(base, 1.0, seed=5).gradient(np.zeros(2))
        b = NoisyGradientCost(base, 1.0, seed=5).gradient(np.zeros(2))
        assert np.array_equal(a, b)


class TestMinibatchCost:
    def _data(self, m=50, d=3, seed=0):
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(m, d))
        x_star = np.arange(1.0, d + 1.0)
        b = A @ x_star
        return A, b, x_star

    def test_value_is_full_empirical_risk(self):
        A, b, _ = self._data()
        cost = MinibatchCost(A, b, batch_size=5, seed=0)
        x = np.ones(3)
        expected = float(np.mean((A @ x - b) ** 2))
        assert cost.value(x) == pytest.approx(expected)

    def test_gradient_unbiased(self):
        A, b, _ = self._data(m=20, d=2)
        cost = MinibatchCost(A, b, batch_size=4, seed=1)
        x = np.array([0.5, -0.5])
        draws = np.stack([cost.gradient(x) for _ in range(6000)])
        assert np.allclose(draws.mean(axis=0), cost.exact_gradient(x), atol=0.1)

    def test_full_batch_is_exact(self):
        A, b, _ = self._data(m=10, d=2)
        cost = MinibatchCost(A, b, batch_size=10_000, seed=0)
        assert cost.batch_size == 10
        # Full batch with replacement is still stochastic; use exact_gradient
        # for the deterministic reference.
        x = np.zeros(2)
        assert np.allclose(cost.exact_gradient(x), (2.0 / 10) * A.T @ (A @ x - b))

    def test_argmin_is_least_squares_solution(self):
        A, b, x_star = self._data()
        cost = MinibatchCost(A, b, batch_size=5, seed=0)
        assert np.allclose(cost.argmin_set().project(np.zeros(3)), x_star, atol=1e-8)

    def test_invalid_parameters(self):
        A, b, _ = self._data()
        with pytest.raises(InvalidParameterError):
            MinibatchCost(A, b, batch_size=0)
        with pytest.raises(InvalidParameterError):
            MinibatchCost(np.zeros((0, 2)), np.zeros(0), batch_size=1)

    def test_sgd_converges_with_diminishing_steps(self):
        from repro.optimization.gd import gradient_descent
        from repro.optimization.step_sizes import DiminishingStepSize

        A, b, x_star = self._data(m=40, d=2, seed=3)
        cost = MinibatchCost(A, b, batch_size=8, seed=3)
        result = gradient_descent(
            cost, np.zeros(2), step_sizes=DiminishingStepSize(c=1.0, t0=5.0),
            max_iterations=4000, gradient_tolerance=0.0,
        )
        assert np.linalg.norm(result.minimizer - x_star) < 0.05


class TestWithGradientNoise:
    def test_wraps_every_cost_independently(self):
        costs = [TranslatedQuadratic([float(i)]) for i in range(4)]
        noisy = with_gradient_noise(costs, 0.3, seed=0)
        assert len(noisy) == 4
        draws = [c.gradient([0.0]) for c in noisy]
        # Independent streams: not all equal.
        assert len({float(d[0]) for d in draws}) > 1

    def test_byzantine_run_with_noisy_gradients(self):
        from repro.attacks.simple import GradientReverse
        from repro.problems.linear_regression import make_redundant_regression
        from repro.system.runner import run_dgd

        from repro.optimization.step_sizes import DiminishingStepSize, suggest_diminishing

        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=0)
        noisy = with_gradient_noise(instance.costs, 0.2, seed=0)
        matched = suggest_diminishing(instance.costs, aggregation="sum")
        # SGD needs c·γ > 1 strictly; boost the curvature-matched schedule.
        schedule = DiminishingStepSize(c=4 * matched.c, t0=4 * matched.t0)
        trace = run_dgd(
            noisy, GradientReverse(), faulty_ids=[0],
            gradient_filter="cge", iterations=3000, step_sizes=schedule, seed=0,
        )
        x_H = instance.honest_minimizer(range(1, 6))
        assert np.linalg.norm(trace.final_estimate - x_H) < 0.15
