"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import (
    DimensionMismatchError,
    InfeasibleConfigurationError,
    InvalidParameterError,
)
from repro.utils.validation import (
    check_fault_bound,
    check_matrix,
    check_probability,
    check_vector,
    require,
)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_default_exception(self):
        with pytest.raises(InvalidParameterError, match="boom"):
            require(False, "boom")

    def test_raises_custom_exception(self):
        with pytest.raises(InfeasibleConfigurationError):
            require(False, "boom", InfeasibleConfigurationError)


class TestCheckVector:
    def test_coerces_list(self):
        out = check_vector([1, 2, 3])
        assert out.dtype == np.float64
        assert out.shape == (3,)

    def test_scalar_becomes_length_one(self):
        assert check_vector(5.0).shape == (1,)

    def test_rejects_matrix(self):
        with pytest.raises(DimensionMismatchError):
            check_vector(np.zeros((2, 2)))

    def test_enforces_dimension(self):
        with pytest.raises(DimensionMismatchError, match="dimension 4"):
            check_vector([1, 2], dimension=4)

    def test_rejects_nan(self):
        with pytest.raises(InvalidParameterError, match="non-finite"):
            check_vector([1.0, float("nan")])

    def test_rejects_inf(self):
        with pytest.raises(InvalidParameterError):
            check_vector([float("inf")])


class TestCheckMatrix:
    def test_coerces_nested_list(self):
        out = check_matrix([[1, 2], [3, 4]])
        assert out.shape == (2, 2)

    def test_rejects_vector(self):
        with pytest.raises(DimensionMismatchError):
            check_matrix([1, 2, 3])

    def test_enforces_shape(self):
        with pytest.raises(DimensionMismatchError):
            check_matrix(np.zeros((2, 3)), rows=3)
        with pytest.raises(DimensionMismatchError):
            check_matrix(np.zeros((2, 3)), cols=2)

    def test_allow_non_finite_flag(self):
        m = np.array([[np.inf, 1.0]])
        assert check_matrix(m, allow_non_finite=True).shape == (1, 2)
        with pytest.raises(InvalidParameterError):
            check_matrix(m)


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, p):
        assert check_probability(p) == p

    @pytest.mark.parametrize("p", [-0.1, 1.1])
    def test_rejects_invalid(self, p):
        with pytest.raises(InvalidParameterError):
            check_probability(p)


class TestCheckFaultBound:
    def test_server_accepts_strict_minority(self):
        check_fault_bound(5, 2)

    def test_server_rejects_half(self):
        with pytest.raises(InfeasibleConfigurationError):
            check_fault_bound(4, 2)

    def test_peer_requires_third(self):
        check_fault_bound(4, 1)
        with pytest.raises(InfeasibleConfigurationError):
            check_fault_bound(3, 1, architecture="peer")

    def test_rejects_negative_f(self):
        with pytest.raises(InvalidParameterError):
            check_fault_bound(5, -1)

    def test_rejects_non_positive_n(self):
        with pytest.raises(InvalidParameterError):
            check_fault_bound(0, 0)

    def test_rejects_unknown_architecture(self):
        with pytest.raises(InvalidParameterError):
            check_fault_bound(5, 1, architecture="mesh")
