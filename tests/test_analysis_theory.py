"""Tests for the theory-validation bridge."""

import numpy as np
import pytest

from repro.analysis.theory import guarantee_for_cge, validate_guarantee
from repro.attacks.simple import GradientReverse
from repro.problems.linear_regression import make_redundant_regression
from repro.system.runner import run_dgd


@pytest.fixture(scope="module")
def large_redundant_instance():
    # Large n keeps f/n small so that alpha > 0 and the guarantee applies.
    return make_redundant_regression(n=30, d=2, f=1, noise_std=0.0, seed=2)


class TestGuaranteeConstruction:
    def test_applicable_for_small_fault_fraction(self, large_redundant_instance):
        guarantee = guarantee_for_cge(large_redundant_instance.costs, f=1)
        assert guarantee.applicable
        assert guarantee.alpha > 0
        # Exact redundancy -> zero error radius.
        assert guarantee.error_radius == pytest.approx(0.0, abs=1e-9)
        assert "alpha" in guarantee.describe()

    def test_not_applicable_for_paper_instance(self, paper):
        # n=6, f=1 with mu/gamma ~ 4 violates alpha > 0 — matching the
        # paper's own experimental regime (works empirically, no guarantee).
        guarantee = guarantee_for_cge(paper.costs, f=1)
        assert not guarantee.applicable
        assert "NOT applicable" in guarantee.describe()

    def test_precomputed_margin_respected(self, large_redundant_instance):
        guarantee = guarantee_for_cge(
            large_redundant_instance.costs, f=1, redundancy_margin=0.5
        )
        assert guarantee.redundancy_margin == 0.5
        assert guarantee.error_radius > 0


class TestGuaranteeValidation:
    def test_execution_satisfies_guarantee(self, large_redundant_instance):
        instance = large_redundant_instance
        guarantee = guarantee_for_cge(instance.costs, f=1)
        trace = run_dgd(
            instance.costs, GradientReverse(), faulty_ids=[0],
            gradient_filter="cge", iterations=600, seed=0,
        )
        x_H = instance.honest_minimizer(range(1, 30))
        assert validate_guarantee(trace, guarantee, x_H, absolute_floor=5e-3)

    def test_validation_false_when_not_applicable(self, paper):
        guarantee = guarantee_for_cge(paper.costs, f=1)
        trace = run_dgd(paper.costs, GradientReverse(), faulty_ids=[0],
                        gradient_filter="cge", iterations=50, seed=0)
        assert not validate_guarantee(trace, guarantee, paper.x_star)
