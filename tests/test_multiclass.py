"""Tests for SoftmaxCost and the multi-class learning generator."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.optimization.cost_functions import SoftmaxCost
from repro.problems.multiclass import make_multiclass_instance


def numerical_gradient(cost, x, h=1e-6):
    grad = np.zeros_like(x)
    for k in range(x.size):
        e = np.zeros_like(x)
        e[k] = h
        grad[k] = (cost.value(x + e) - cost.value(x - e)) / (2 * h)
    return grad


class TestSoftmaxCost:
    def _cost(self, reg=0.1, seed=0, m=25, p=3, K=4):
        rng = np.random.default_rng(seed)
        Z = rng.normal(size=(m, p))
        y = rng.integers(0, K, size=m)
        return SoftmaxCost(Z, y, num_classes=K, regularization=reg)

    def test_gradient_matches_finite_differences(self):
        cost = self._cost()
        x = np.random.default_rng(1).normal(size=cost.dimension)
        assert np.allclose(cost.gradient(x), numerical_gradient(cost, x), atol=1e-6)

    def test_value_stable_for_large_scores(self):
        cost = self._cost(reg=0.0)
        huge = 1e4 * np.ones(cost.dimension)
        assert np.isfinite(cost.value(huge))
        assert np.all(np.isfinite(cost.gradient(huge)))

    def test_uniform_weights_give_log_k_loss(self):
        cost = self._cost(reg=0.0, K=4)
        assert cost.value(np.zeros(cost.dimension)) == pytest.approx(np.log(4.0))

    def test_predict_shape_and_range(self):
        cost = self._cost(K=3, p=2)
        rng = np.random.default_rng(2)
        predictions = cost.predict(rng.normal(size=cost.dimension), rng.normal(size=(10, 2)))
        assert predictions.shape == (10,)
        assert set(predictions) <= {0, 1, 2}

    def test_validation(self):
        Z = np.ones((3, 2))
        with pytest.raises(InvalidParameterError):
            SoftmaxCost(Z, np.array([0, 1, 5]), num_classes=3)
        with pytest.raises(InvalidParameterError):
            SoftmaxCost(Z, np.array([0, 1, 2]), num_classes=1)
        with pytest.raises(DimensionMismatchError):
            SoftmaxCost(Z, np.array([0, 1]), num_classes=3)

    def test_convexity_along_random_segments(self):
        cost = self._cost(reg=0.0)
        rng = np.random.default_rng(3)
        for _ in range(10):
            a = rng.normal(size=cost.dimension)
            b = rng.normal(size=cost.dimension)
            mid = cost.value((a + b) / 2.0)
            assert mid <= (cost.value(a) + cost.value(b)) / 2.0 + 1e-9


class TestMulticlassGenerator:
    def test_shapes(self):
        instance = make_multiclass_instance(n=5, num_classes=3, num_features=4, seed=0)
        assert instance.n == 5
        assert instance.dimension == 12
        assert instance.features[0].shape == (60, 4)
        assert set(np.unique(np.concatenate(instance.labels))) <= {0, 1, 2}

    def test_iid_instance_is_learnable_distributedly(self):
        from repro.optimization.step_sizes import DiminishingStepSize
        from repro.system.runner import run_dgd

        instance = make_multiclass_instance(
            n=6, num_classes=3, num_features=3, samples_per_agent=80, seed=1
        )
        trace = run_dgd(
            instance.costs, None, gradient_filter="average",
            iterations=300, step_sizes=DiminishingStepSize(c=4.0, t0=5.0), seed=1,
        )
        assert instance.accuracy(trace.final_estimate) > 0.8

    def test_robust_filter_resists_sign_flip(self):
        from repro.attacks.simple import SignFlip
        from repro.optimization.step_sizes import DiminishingStepSize
        from repro.system.runner import run_dgd

        instance = make_multiclass_instance(
            n=8, num_classes=3, num_features=3, samples_per_agent=60, seed=2
        )
        schedule = DiminishingStepSize(c=4.0, t0=5.0)
        robust = run_dgd(
            instance.costs, SignFlip(strength=5.0), faulty_ids=[0, 1],
            gradient_filter="cge", iterations=300, step_sizes=schedule, seed=2,
        )
        broken = run_dgd(
            instance.costs, SignFlip(strength=5.0), faulty_ids=[0, 1],
            gradient_filter="average", iterations=300, step_sizes=schedule, seed=2,
        )
        assert instance.accuracy(robust.final_estimate) > 0.75
        assert instance.accuracy(broken.final_estimate) < instance.accuracy(
            robust.final_estimate
        )

    def test_heterogeneity_skews_local_class_distributions(self):
        iid = make_multiclass_instance(n=6, num_classes=3, heterogeneity=0.0, seed=3)
        skewed = make_multiclass_instance(n=6, num_classes=3, heterogeneity=5.0, seed=3)

        def dominant_fraction(instance):
            fractions = []
            for y in instance.labels:
                counts = np.bincount(y, minlength=3)
                fractions.append(counts.max() / counts.sum())
            return float(np.mean(fractions))

        assert dominant_fraction(skewed) > dominant_fraction(iid) + 0.15

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            make_multiclass_instance(n=0)
        with pytest.raises(InvalidParameterError):
            make_multiclass_instance(n=2, num_classes=1)
        with pytest.raises(InvalidParameterError):
            make_multiclass_instance(n=2, num_classes=5, samples_per_agent=3)
