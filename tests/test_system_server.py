"""Tests for the DGD server: update rule, elimination, protocol checks."""

import numpy as np
import pytest

from repro.aggregators.cge import ComparativeGradientElimination
from repro.aggregators.mean import Average
from repro.exceptions import InvalidParameterError, ProtocolViolationError
from repro.optimization.projections import BallSet, BoxSet
from repro.optimization.step_sizes import ConstantStepSize
from repro.system.messages import GradientMessage
from repro.system.server import DGDServer


def make_server(n=4, f=1, x0=(0.0, 0.0), filter_=None, step=0.1, projection=None):
    return DGDServer.with_fixed_filter(
        filter_ or Average(),
        ConstantStepSize(step),
        projection or BoxSet.centered(2, 100.0),
        np.asarray(x0, dtype=float),
        n=n,
        f=f,
    )


def msgs(server, gradients):
    return [
        GradientMessage(sender=i, round_index=server.round_index, gradient=g)
        for i, g in enumerate(gradients)
    ]


class TestUpdateRule:
    def test_single_step_matches_formula(self):
        server = make_server()
        gradients = [np.array([1.0, 0.0])] * 4
        new = server.step(msgs(server, gradients))
        # x1 = x0 - eta * mean = -0.1 * (1, 0)
        assert np.allclose(new, [-0.1, 0.0])
        assert server.round_index == 1

    def test_projection_applied(self):
        server = make_server(projection=BallSet([0.0, 0.0], 0.05))
        gradients = [np.array([10.0, 0.0])] * 4
        new = server.step(msgs(server, gradients))
        assert np.linalg.norm(new) <= 0.05 + 1e-12

    def test_initial_estimate_projected(self):
        server = make_server(x0=(50.0, 0.0), projection=BallSet([0.0, 0.0], 1.0))
        assert np.linalg.norm(server.estimate) <= 1.0 + 1e-12

    def test_last_direction_recorded(self):
        server = make_server()
        server.step(msgs(server, [np.array([2.0, 0.0])] * 4))
        assert np.allclose(server.last_direction, [2.0, 0.0])

    def test_broadcast_message_carries_round_and_estimate(self):
        server = make_server(x0=(1.0, 2.0))
        broadcast = server.make_broadcast()
        assert broadcast.round_index == 0
        assert np.allclose(broadcast.estimate, [1.0, 2.0])


class TestElimination:
    def test_silent_agent_eliminated_and_budget_decremented(self):
        server = make_server(n=4, f=1, filter_=ComparativeGradientElimination(f=1))
        messages = msgs(server, [np.zeros(2)] * 4)[:3]  # agent 3 silent
        server.step(messages)
        assert server.eliminated_agents == [3]
        assert server.n == 3
        assert server.f == 0
        # Filter rebuilt with the reduced budget.
        assert server.gradient_filter.f == 0

    def test_too_many_silent_violates_synchrony(self):
        server = make_server(n=4, f=1)
        messages = msgs(server, [np.zeros(2)] * 4)[:2]  # two silent, f = 1
        with pytest.raises(ProtocolViolationError, match="synchrony"):
            server.step(messages)

    def test_eliminated_agent_cannot_speak_again(self):
        server = make_server(n=4, f=1)
        server.step(msgs(server, [np.zeros(2)] * 4)[:3])
        stale = GradientMessage(sender=3, round_index=server.round_index, gradient=np.zeros(2))
        with pytest.raises(ProtocolViolationError, match="inactive"):
            server.step([stale])


class TestProtocolChecks:
    def test_wrong_round_rejected(self):
        server = make_server()
        bad = GradientMessage(sender=0, round_index=5, gradient=np.zeros(2))
        with pytest.raises(ProtocolViolationError, match="round"):
            server.step([bad] + msgs(server, [np.zeros(2)] * 4)[1:])

    def test_duplicate_sender_rejected(self):
        server = make_server()
        duplicate = msgs(server, [np.zeros(2)] * 4) + [
            GradientMessage(sender=0, round_index=0, gradient=np.ones(2))
        ]
        with pytest.raises(ProtocolViolationError, match="duplicate"):
            server.step(duplicate)

    def test_invalid_construction(self):
        with pytest.raises(InvalidParameterError):
            make_server(n=0)
        with pytest.raises(InvalidParameterError):
            make_server(n=3, f=3)


class TestConvergenceSmoke:
    def test_fault_free_descent_reaches_minimizer(self):
        from repro.optimization.cost_functions import TranslatedQuadratic

        costs = [TranslatedQuadratic([1.0, -1.0]) for _ in range(4)]
        server = make_server(step=0.1)
        for _ in range(200):
            x = server.estimate
            gradients = [c.gradient(x) for c in costs]
            server.step(msgs(server, gradients))
        assert np.allclose(server.estimate, [1.0, -1.0], atol=1e-6)
