"""Bench registry, run harness, and the ``repro.bench/v1`` schema."""

import pytest

from repro.exceptions import BenchSchemaError, InvalidParameterError
from repro.observability.perf import (
    BENCH_SCHEMA,
    PROVENANCE_KEYS,
    BenchResult,
    BenchSpec,
    available_benches,
    bench_output_path,
    collect_provenance,
    get_bench,
    load_bench_payload,
    register_bench,
    run_bench,
    run_registered,
    validate_bench_payload,
    write_bench_result,
)
from repro.utils.atomicio import CacheIntegrityError


def _spec(name="unit_spec", **kwargs):
    defaults = dict(
        runner=lambda tel: {"answer": 42.0},
        workload={"n": 6},
        metrics=lambda value: {"answer": value["answer"]},
    )
    defaults.update(kwargs)
    return BenchSpec(name=name, **defaults)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def test_register_and_resolve():
    @register_bench("unit_registered", workload={"k": 1}, tags=("unit",),
                    replace=True)
    def _runner(tel):
        """First docstring line becomes the description."""
        return None

    spec = get_bench("unit_registered")
    assert spec.workload == {"k": 1}
    assert spec.description == "First docstring line becomes the description."
    assert "unit_registered" in available_benches(tag="unit")
    assert "unit_registered" in available_benches()


def test_duplicate_registration_rejected():
    register_bench("unit_dup", replace=True)(lambda tel: None)
    with pytest.raises(InvalidParameterError, match="already registered"):
        register_bench("unit_dup")(lambda tel: None)


def test_bad_names_rejected():
    for name in ("", "has space", "has/slash", "has.dot"):
        with pytest.raises(InvalidParameterError, match="bench name"):
            register_bench(name)(lambda tel: None)


def test_unknown_bench_names_known_ones():
    with pytest.raises(InvalidParameterError, match="unknown bench"):
        get_bench("no_such_bench_anywhere")


# ----------------------------------------------------------------------
# run_bench
# ----------------------------------------------------------------------


def test_run_bench_shapes_result():
    outcome = run_bench(_spec(), repeats=3)
    result = outcome.result
    assert result.schema == BENCH_SCHEMA
    assert result.repeats == 3
    assert len(result.timings["seconds_per_repeat"]) == 3
    assert result.timings["best_seconds"] == min(
        result.timings["seconds_per_repeat"]
    )
    assert result.metrics == {"answer": 42.0}
    assert result.memory["tracked"] is True
    assert outcome.value == {"answer": 42.0}
    assert outcome.path is None
    for key in PROVENANCE_KEYS:
        assert key in result.provenance


def test_run_bench_rejects_bad_repeats():
    with pytest.raises(InvalidParameterError, match="repeats"):
        run_bench(_spec(), repeats=0)


def test_run_bench_collects_phases_from_spans():
    def runner(tel):
        with tel.span("phase_a"):
            pass
        with tel.span("phase_a"):
            pass
        with tel.span("phase_b"):
            pass
        return None

    outcome = run_bench(_spec(runner=runner, metrics=None), repeats=2)
    phases = outcome.result.phases
    assert phases["phase_a"]["count"] == 2
    assert phases["phase_b"]["count"] == 1
    assert set(phases["phase_a"]) == {"count", "total", "p50", "p95"}


def test_run_bench_observations_are_json_clean():
    import numpy as np

    spec = _spec(
        runner=lambda tel: {"ratio": np.float64(2.5), "grid": np.arange(3)},
        metrics=None,
        observations=lambda value: value,
    )
    outcome = run_bench(spec, repeats=1)
    assert outcome.result.observations == {"ratio": 2.5, "grid": [0, 1, 2]}


def test_run_bench_memory_toggle():
    outcome = run_bench(_spec(), repeats=1, memory=False)
    assert outcome.result.memory == {"peak_bytes": 0, "tracked": False}
    outcome = run_bench(_spec(), repeats=1, memory=True)
    assert outcome.result.memory["peak_bytes"] >= 0


def test_run_bench_writes_telemetry_streams(tmp_path):
    tel_dir = tmp_path / "telemetry"

    def runner(tel):
        with tel.span("work"):
            pass
        return None

    run_bench(_spec(runner=runner, metrics=None), repeats=2,
              telemetry_dir=str(tel_dir))
    streams = sorted(p.name for p in tel_dir.glob("*.jsonl"))
    assert streams == [
        "bench_unit_spec.repeat0.jsonl",
        "bench_unit_spec.repeat1.jsonl",
    ]


def test_run_registered_round_trips_to_disk(tmp_path):
    register_bench("unit_disk", metrics=lambda v: {"x": v}, replace=True)(
        lambda tel: 1.5
    )
    outcome = run_registered("unit_disk", repeats=2, output_dir=str(tmp_path))
    assert outcome.path == bench_output_path(str(tmp_path), "unit_disk")
    payload = load_bench_payload(outcome.path)
    assert payload == outcome.result.to_payload()
    assert BenchResult.from_payload(payload).metrics == {"x": 1.5}


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------


def _valid_payload():
    return run_bench(_spec(), repeats=2).result.to_payload()


def test_validate_accepts_harness_output():
    assert validate_bench_payload(_valid_payload())["schema"] == BENCH_SCHEMA


@pytest.mark.parametrize(
    "mutate, match",
    [
        (lambda p: p.update(schema="repro.bench/v0"), "unsupported bench schema"),
        (lambda p: p.pop("metrics"), "missing 'metrics'"),
        (lambda p: p.update(repeats="2"), "'repeats' must be int"),
        (lambda p: p["timings"].pop("seconds_per_repeat"), "must be a list"),
        (lambda p: p.update(repeats=5), "does not match repeats"),
        (lambda p: p["timings"].update(best_seconds=-1.0), "non-negative"),
        (
            lambda p: p["timings"].update(
                best_seconds=p["timings"]["best_seconds"] + 1.0
            ),
            "not the minimum",
        ),
        (lambda p: p["metrics"].update(answer="fast"), "must be numeric"),
        (lambda p: p["provenance"].pop("git_sha"), "provenance missing"),
        (lambda p: p.update(observations=[1, 2]), "observations"),
    ],
)
def test_validate_rejects_violations(mutate, match):
    payload = _valid_payload()
    mutate(payload)
    with pytest.raises(BenchSchemaError, match=match):
        validate_bench_payload(payload)


def test_validate_rejects_non_mapping():
    with pytest.raises(BenchSchemaError, match="JSON object"):
        validate_bench_payload([1, 2, 3])


def test_load_rejects_tampered_file(tmp_path):
    path = write_bench_result(run_bench(_spec(), repeats=1).result,
                              str(tmp_path))
    text = open(path).read().replace("42.0", "43.0")
    with open(path, "w") as handle:
        handle.write(text)
    with pytest.raises(CacheIntegrityError):
        load_bench_payload(path)


def test_collect_provenance_is_complete():
    provenance = collect_provenance()
    assert set(provenance) == set(PROVENANCE_KEYS)
    assert provenance["python"] and provenance["numpy"]
    # Inside this git checkout the sha must resolve.
    assert provenance["git_sha"] is None or len(provenance["git_sha"]) == 40
