"""Tests for the non-differentiable (L1) cost support.

These pin the claim that the exact-fault-tolerance characterization —
redundancy checking, resilience evaluation, and the subset-enumeration
algorithm — runs on non-differentiable costs, where the gradient-descent
machinery does not apply.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact_algorithm import SubsetEnumerationAlgorithm
from repro.core.geometry import AxisAlignedBox, Singleton, hausdorff_distance
from repro.core.redundancy import check_2f_redundancy, measure_redundancy_margin
from repro.core.resilience import evaluate_resilience
from repro.exceptions import InvalidParameterError
from repro.optimization.nonsmooth import (
    AbsoluteDeviationCost,
    l1_aggregate_argmin,
    l1_solver,
    weighted_median_interval,
)


class TestWeightedMedian:
    def test_odd_unweighted_is_median(self):
        lo, hi = weighted_median_interval([3.0, 1.0, 2.0], [1.0, 1.0, 1.0])
        assert lo == hi == 2.0

    def test_even_unweighted_is_interval(self):
        lo, hi = weighted_median_interval([1.0, 2.0, 3.0, 4.0], [1.0] * 4)
        assert (lo, hi) == (2.0, 3.0)

    def test_heavy_weight_dominates(self):
        lo, hi = weighted_median_interval([0.0, 10.0], [10.0, 1.0])
        assert lo == hi == 0.0

    def test_balanced_two_points(self):
        lo, hi = weighted_median_interval([0.0, 10.0], [1.0, 1.0])
        assert (lo, hi) == (0.0, 10.0)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            weighted_median_interval([], [])
        with pytest.raises(InvalidParameterError):
            weighted_median_interval([1.0], [0.0])

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=9),
        seed=st.integers(0, 1000),
    )
    def test_interval_minimizes_objective(self, values, seed):
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.1, 3.0, size=len(values))

        def objective(x):
            return float(np.sum(weights * np.abs(x - np.asarray(values))))

        lo, hi = weighted_median_interval(values, weights)
        base = objective((lo + hi) / 2.0)
        assert objective(lo) == pytest.approx(base, abs=1e-9 * max(1.0, abs(base)))
        # No probe point beats the interval's value.
        for probe in rng.uniform(-150, 150, size=20):
            assert objective(probe) >= base - 1e-9 * max(1.0, abs(base))


class TestAbsoluteDeviationCost:
    def test_value_and_subgradient(self):
        cost = AbsoluteDeviationCost([1.0, -1.0], weight=2.0)
        assert cost.value([2.0, 0.0]) == pytest.approx(2.0 * 2.0)
        assert np.allclose(cost.gradient([2.0, 0.0]), [2.0, 2.0])
        assert np.allclose(cost.gradient([1.0, -1.0]), [0.0, 0.0])

    def test_argmin(self):
        cost = AbsoluteDeviationCost([3.0, 4.0])
        assert np.allclose(cost.argmin_set().point, [3.0, 4.0])

    def test_invalid_weight(self):
        with pytest.raises(InvalidParameterError):
            AbsoluteDeviationCost([0.0], weight=0.0)


class TestL1AggregateArgmin:
    def test_unique_median_gives_singleton(self):
        costs = [AbsoluteDeviationCost([float(v), 0.0]) for v in (0, 1, 2)]
        argmin = l1_aggregate_argmin(costs)
        assert isinstance(argmin, Singleton)
        assert np.allclose(argmin.point, [1.0, 0.0])

    def test_even_count_gives_box(self):
        costs = [AbsoluteDeviationCost([float(v)]) for v in (0, 1, 2, 3)]
        argmin = l1_aggregate_argmin(costs)
        assert isinstance(argmin, AxisAlignedBox)
        assert argmin.contains([1.0])
        assert argmin.contains([2.0])
        assert not argmin.contains([0.5])

    def test_subset_selection(self):
        costs = [AbsoluteDeviationCost([float(v)]) for v in (0, 5, 10)]
        argmin = l1_aggregate_argmin(costs, indices=(0, 2))
        assert argmin.contains([3.0])  # anywhere in [0, 10]

    def test_argmin_actually_minimizes(self):
        rng = np.random.default_rng(0)
        costs = [
            AbsoluteDeviationCost(rng.normal(size=3), weight=rng.uniform(0.5, 2.0))
            for _ in range(5)
        ]
        argmin = l1_aggregate_argmin(costs)
        point = argmin.project(np.zeros(3))
        total = lambda x: sum(c.value(x) for c in costs)
        base = total(point)
        for _ in range(30):
            assert total(rng.normal(scale=2.0, size=3)) >= base - 1e-9

    def test_rejects_non_l1_members(self):
        from repro.optimization.cost_functions import TranslatedQuadratic

        with pytest.raises(InvalidParameterError):
            l1_aggregate_argmin([TranslatedQuadratic([0.0])])


class TestNonSmoothTheory:
    def test_identical_l1_costs_are_redundant(self):
        costs = [AbsoluteDeviationCost([1.0, -1.0]) for _ in range(5)]
        assert check_2f_redundancy(costs, f=2, solver=l1_solver)

    def test_spread_l1_costs_margin_positive(self):
        costs = [AbsoluteDeviationCost([float(i), 0.0]) for i in range(5)]
        report = measure_redundancy_margin(costs, f=1, solver=l1_solver)
        assert report.margin > 0.5

    def test_exact_algorithm_on_nonsmooth_costs(self):
        # Identical honest L1 targets (exactly 2f-redundant); Byzantine
        # agent submits a far-away target. The subset algorithm must output
        # the honest target exactly — no gradients involved anywhere.
        target = np.array([2.0, -3.0])
        costs = [AbsoluteDeviationCost(target) for _ in range(6)]
        costs[0] = AbsoluteDeviationCost([100.0, 100.0])
        algorithm = SubsetEnumerationAlgorithm(n=6, f=1, solver=l1_solver)
        result = algorithm.run(costs)
        assert np.allclose(result.output, target, atol=1e-9)
        report = evaluate_resilience(
            result.output, costs, honest=[1, 2, 3, 4, 5], f=1, solver=l1_solver
        )
        assert report.exact

    def test_hausdorff_between_box_and_singleton(self):
        box = AxisAlignedBox([0.0, 0.0], [2.0, 0.0])
        point = Singleton([1.0, 1.0])
        # Farthest corner (0,0) or (2,0) is sqrt(2) away from (1,1).
        assert hausdorff_distance(box, point) == pytest.approx(np.sqrt(2.0))


class TestAxisAlignedBoxSet:
    def test_projection_and_distance(self):
        box = AxisAlignedBox([0.0, 0.0], [1.0, 1.0])
        assert np.allclose(box.project([2.0, 0.5]), [1.0, 0.5])
        assert box.distance_to([2.0, 0.5]) == pytest.approx(1.0)
        assert box.distance_to([0.5, 0.5]) == 0.0

    def test_degenerate_detection(self):
        assert AxisAlignedBox([1.0], [1.0]).is_degenerate()
        assert not AxisAlignedBox([0.0], [1.0]).is_degenerate()

    def test_corner_support_points(self):
        box = AxisAlignedBox([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
        assert box.support_points().shape == (8, 3)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(InvalidParameterError):
            AxisAlignedBox([1.0], [0.0])

    def test_dimension_guard_for_corners(self):
        box = AxisAlignedBox(np.zeros(20), np.ones(20))
        with pytest.raises(InvalidParameterError):
            box.support_points()
