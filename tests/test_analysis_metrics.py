"""Tests for analysis metrics and reporting."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    area_under_error,
    convergence_iteration,
    distance_series,
    final_error,
    loss_series,
    relative_regret,
)
from repro.analysis import metrics
from repro.analysis.reporting import ExperimentResult, format_series, format_table
from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import QuadraticCost, TranslatedQuadratic
from repro.system.runner import run_dgd


@pytest.fixture(scope="module")
def simple_trace():
    costs = [TranslatedQuadratic([1.0, 1.0]) for _ in range(4)]
    return costs, run_dgd(costs, None, gradient_filter="average", iterations=100, seed=0)


class TestTraceMetrics:
    def test_distance_series_monotone_for_convex_descent(self, simple_trace):
        costs, trace = simple_trace
        distances = distance_series(trace, [1.0, 1.0])
        assert distances.shape == (101,)
        assert distances[-1] < 0.01
        # Distances non-increasing (convex, exact gradients).
        assert np.all(np.diff(distances) <= 1e-9)

    def test_loss_series_decreases(self, simple_trace):
        costs, trace = simple_trace
        losses = loss_series(trace, costs)
        assert losses[-1] < losses[0]

    def test_loss_series_subset_selection(self, simple_trace):
        costs, trace = simple_trace
        all_losses = loss_series(trace, costs, ids=[0, 1, 2, 3])
        half_losses = loss_series(trace, costs, ids=[0, 1])
        assert np.allclose(all_losses, 2 * half_losses)

    def test_final_error(self, simple_trace):
        _, trace = simple_trace
        assert final_error(trace, [1.0, 1.0]) < 0.01
        assert final_error(trace, [100.0, 100.0]) > 100.0

    def test_relative_regret_near_zero_at_optimum(self, simple_trace):
        costs, trace = simple_trace
        assert relative_regret(trace, costs, [1.0, 1.0]) < 1e-3

    def test_relative_regret_near_zero_optimal_loss_stays_finite(self):
        # Translated quadratics have minimum value exactly 0, so the
        # denominator hits its eps floor: the regret must stay finite and
        # non-negative rather than dividing by zero.
        costs = [TranslatedQuadratic([2.0]) for _ in range(3)]
        trace = run_dgd(costs, None, gradient_filter="average", iterations=2, seed=0)
        regret = relative_regret(trace, costs, [2.0])
        assert np.isfinite(regret)
        assert regret >= 0.0

    def test_relative_regret_sign_with_negative_optimal_loss(self):
        # The anisotropic quadratic below has minimum value −6 at (1, 1); a
        # 3-round run cannot converge exactly along both axes. With |L(x_H)|
        # in the denominator the regret keeps its sign: positive iff the
        # output is worse than x_H, even though L(x_H) < 0.
        P = np.diag([1.0, 3.0])
        costs = [QuadraticCost(P, [-1.0, -3.0], c=-4.0) for _ in range(3)]
        trace = run_dgd(costs, None, gradient_filter="average", iterations=3, seed=0)
        final_loss = sum(c.value(trace.final_estimate) for c in costs)
        optimal_loss = sum(c.value([1.0, 1.0]) for c in costs)
        assert optimal_loss < 0
        assert final_loss > optimal_loss  # a short run has not converged
        regret = relative_regret(trace, costs, [1.0, 1.0])
        assert regret > 0
        assert regret == pytest.approx(
            (final_loss - optimal_loss) / abs(optimal_loss)
        )


class TestConvergenceIteration:
    def test_settling_semantics(self):
        series = np.array([1.0, 0.05, 1.0, 0.05, 0.05, 0.05])
        assert convergence_iteration(series, 0.1) == 3

    def test_never_converges(self):
        assert convergence_iteration(np.ones(10), 0.1) is None

    def test_immediately_below(self):
        assert convergence_iteration(np.zeros(5), 0.1) == 0

    def test_positive_threshold_required(self):
        with pytest.raises(InvalidParameterError):
            convergence_iteration(np.ones(3), 0.0)

    def test_ending_exactly_at_threshold_is_not_below(self):
        # The comparison is strict (<): a series that ends exactly at the
        # threshold has not settled below it.
        series = np.array([1.0, 0.5, 0.1])
        assert convergence_iteration(series, 0.1) is None

    def test_single_element_below(self):
        assert convergence_iteration(np.array([0.05]), 0.1) == 0

    def test_single_element_above(self):
        assert convergence_iteration(np.array([1.0]), 0.1) is None


class TestAreaUnderError:
    def test_matches_trapezoid(self):
        series = np.array([1.0, 0.5, 0.0])
        assert area_under_error(series) == pytest.approx(1.0)

    def test_requires_at_least_two_points(self):
        with pytest.raises(InvalidParameterError):
            area_under_error(np.array([1.0]))

    def test_matches_manual_trapezoid_formula(self):
        # Regression for the numpy-version shim: ``np.trapezoid`` exists
        # only on numpy>=2 and ``np.trapz`` only on numpy<2, so the module
        # resolves an alias at import time. Pin it to the textbook formula
        # so the alias cannot silently resolve to something else.
        series = np.random.default_rng(0).random(17)
        expected = 0.5 * float((series[:-1] + series[1:]).sum())
        assert area_under_error(series) == pytest.approx(expected)

    def test_trapezoid_alias_resolved_to_this_numpy(self):
        assert callable(metrics._trapezoid)
        available = {
            name: getattr(np, name)
            for name in ("trapezoid", "trapz")
            if hasattr(np, name)
        }
        assert metrics._trapezoid in available.values()


class TestFormatting:
    def test_table_alignment_and_content(self):
        table = format_table(["name", "value"], [["cge", 0.5], ["avg", 12345.678]])
        lines = table.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "cge" in table and "0.5" in table

    def test_table_title(self):
        table = format_table(["a"], [[1]], title="Table 1")
        assert table.startswith("Table 1")

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(InvalidParameterError):
            format_table(["a", "b"], [[1]])

    def test_table_scientific_notation_for_extremes(self):
        table = format_table(["x"], [[1.5e-7]])
        assert "e-07" in table

    def test_series_sparkline(self):
        line = format_series("loss", np.geomspace(100.0, 0.01, 200), width=40)
        assert "loss" in line
        assert "start=100" in line

    def test_series_constant(self):
        line = format_series("flat", np.ones(10))
        assert "start=1" in line

    def test_series_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            format_series("x", np.array([]))

    def test_experiment_result_render(self):
        result = ExperimentResult(
            experiment_id="E0",
            title="demo",
            headers=["a"],
            rows=[[1.0]],
            series={"s": np.linspace(1, 0, 10)},
            notes=["hello"],
        )
        rendered = result.render()
        assert "E0" in rendered and "demo" in rendered
        assert "note: hello" in rendered
