"""Tests for step-size schedules."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import HuberCost, TranslatedQuadratic
from repro.optimization.step_sizes import (
    ConstantStepSize,
    DiminishingStepSize,
    PolynomialStepSize,
    suggest_diminishing,
)


class TestConstant:
    def test_value(self):
        schedule = ConstantStepSize(0.5)
        assert schedule(0) == schedule(100) == 0.5

    def test_not_robbins_monro(self):
        assert not ConstantStepSize(0.1).satisfies_robbins_monro

    def test_rejects_non_positive(self):
        with pytest.raises(InvalidParameterError):
            ConstantStepSize(0.0)

    def test_rejects_negative_iteration(self):
        with pytest.raises(InvalidParameterError):
            ConstantStepSize(0.1)(-1)


class TestDiminishing:
    def test_harmonic_values(self):
        schedule = DiminishingStepSize(c=2.0, t0=1.0)
        assert schedule(0) == pytest.approx(2.0)
        assert schedule(3) == pytest.approx(0.5)

    def test_robbins_monro(self):
        assert DiminishingStepSize().satisfies_robbins_monro

    def test_strictly_decreasing(self):
        schedule = DiminishingStepSize(c=1.0)
        values = [schedule(t) for t in range(50)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            DiminishingStepSize(c=0.0)
        with pytest.raises(InvalidParameterError):
            DiminishingStepSize(t0=0.0)


class TestPolynomial:
    def test_power_window_enforced(self):
        PolynomialStepSize(power=0.6)
        PolynomialStepSize(power=1.0)
        with pytest.raises(InvalidParameterError):
            PolynomialStepSize(power=0.5)
        with pytest.raises(InvalidParameterError):
            PolynomialStepSize(power=1.2)

    def test_values(self):
        schedule = PolynomialStepSize(c=1.0, power=0.75, t0=1.0)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(15) == pytest.approx(16.0**-0.75)

    def test_robbins_monro(self):
        assert PolynomialStepSize(power=0.7).satisfies_robbins_monro


class TestSuggestDiminishing:
    def test_isotropic_quadratics(self):
        # TranslatedQuadratic: Hessian 2 I; sum of 4 -> gamma = L = 8.
        costs = [TranslatedQuadratic([0.0, 0.0]) for _ in range(4)]
        schedule = suggest_diminishing(costs, aggregation="sum")
        assert schedule(0) == pytest.approx(1.0 / 8.0 / 1.0)
        assert schedule.satisfies_robbins_monro

    def test_mean_aggregation_scales_up_steps(self):
        costs = [TranslatedQuadratic([0.0, 0.0]) for _ in range(4)]
        sum_schedule = suggest_diminishing(costs, aggregation="sum")
        mean_schedule = suggest_diminishing(costs, aggregation="mean")
        assert mean_schedule(0) > sum_schedule(0)

    def test_fallback_without_hessian(self):
        schedule = suggest_diminishing([HuberCost([0.0])], aggregation="sum")
        assert schedule.satisfies_robbins_monro

    def test_invalid_aggregation(self):
        with pytest.raises(InvalidParameterError):
            suggest_diminishing([TranslatedQuadratic([0.0])], aggregation="median")

    def test_empty_costs_rejected(self):
        with pytest.raises(InvalidParameterError):
            suggest_diminishing([], aggregation="sum")


def test_robbins_monro_numerically():
    """The harmonic schedule's partial sums diverge while squares converge."""
    schedule = DiminishingStepSize(c=1.0, t0=1.0)
    values = np.array([schedule(t) for t in range(100_000)])
    assert values.sum() > 11.0  # ~ln(1e5) ≈ 11.5, unbounded in the limit
    assert (values**2).sum() < np.pi**2 / 6 + 1e-6
