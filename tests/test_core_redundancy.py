"""Tests for repro.core.redundancy — Definition 1 machinery."""

import numpy as np
import pytest

from repro.core.redundancy import (
    check_2f_redundancy,
    measure_redundancy_margin,
    minimal_subset_rank_condition,
)
from repro.exceptions import InfeasibleConfigurationError
from repro.optimization.cost_functions import TranslatedQuadratic
from repro.problems.linear_regression import design_rows, make_redundant_regression


class TestIdenticalCosts:
    """Identical costs are 2f-redundant for every feasible f."""

    def test_identical_quadratics_are_redundant(self):
        costs = [TranslatedQuadratic([1.0, -1.0]) for _ in range(5)]
        assert check_2f_redundancy(costs, f=2)

    def test_margin_is_zero(self):
        costs = [TranslatedQuadratic([0.5, 0.5]) for _ in range(5)]
        report = measure_redundancy_margin(costs, f=1)
        assert report.margin == pytest.approx(0.0, abs=1e-9)
        assert report.holds
        assert report.exhaustive


class TestSpreadCosts:
    """Distinct minimizers break redundancy and the margin quantifies it."""

    def test_spread_targets_violate_redundancy(self):
        costs = [TranslatedQuadratic([float(i), 0.0]) for i in range(5)]
        report = measure_redundancy_margin(costs, f=1)
        assert not report.holds
        assert report.margin > 0.1
        assert report.worst_pair is not None

    def test_margin_scales_with_spread(self):
        small = [TranslatedQuadratic([0.01 * i, 0.0]) for i in range(5)]
        large = [TranslatedQuadratic([1.0 * i, 0.0]) for i in range(5)]
        assert (
            measure_redundancy_margin(small, 1).margin
            < measure_redundancy_margin(large, 1).margin
        )


class TestRegressionInstances:
    def test_noiseless_instance_is_redundant(self, noiseless):
        assert check_2f_redundancy(noiseless.costs, f=1)

    def test_noisy_instance_margin_positive(self, paper):
        report = measure_redundancy_margin(paper.costs, f=1)
        assert not report.holds
        assert 0.0 < report.margin < 0.2

    def test_margin_grows_with_noise(self):
        margins = []
        for sigma in (0.01, 0.1):
            instance = make_redundant_regression(6, 2, 1, noise_std=sigma, seed=0)
            margins.append(measure_redundancy_margin(instance.costs, 1).margin)
        assert margins[0] < margins[1]


class TestEdgeCases:
    def test_f_zero_is_vacuously_redundant(self):
        costs = [TranslatedQuadratic([float(i)]) for i in range(3)]
        report = measure_redundancy_margin(costs, f=0)
        assert report.holds
        assert report.pairs_total == 0

    def test_infeasible_f_rejected(self):
        costs = [TranslatedQuadratic([0.0]) for _ in range(4)]
        with pytest.raises(InfeasibleConfigurationError):
            measure_redundancy_margin(costs, f=2)

    def test_sampling_path(self):
        costs = [TranslatedQuadratic([0.0, 0.0]) for _ in range(12)]
        report = measure_redundancy_margin(costs, f=3, max_pairs=50, seed=1)
        assert not report.exhaustive
        assert report.pairs_checked == 50
        assert report.holds

    def test_keep_details_records_every_pair(self):
        costs = [TranslatedQuadratic([float(i), 0.0]) for i in range(4)]
        report = measure_redundancy_margin(costs, f=1, keep_details=True)
        assert len(report.per_pair) == report.pairs_checked
        assert max(report.per_pair.values()) == pytest.approx(report.margin)

    def test_summary_mentions_verdict(self):
        costs = [TranslatedQuadratic([0.0]) for _ in range(3)]
        assert "holds" in measure_redundancy_margin(costs, 1).summary()


class TestRankCondition:
    def test_design_matrix_passes(self):
        assert minimal_subset_rank_condition(design_rows(6, 2), f=1)

    def test_duplicated_direction_fails(self):
        # Every row identical: no 2-subset has rank 2.
        A = np.tile(np.array([[1.0, 0.0]]), (6, 1))
        assert not minimal_subset_rank_condition(A, f=1)

    def test_too_small_subsets_fail(self):
        # n - 2f < d can never have full column rank.
        assert not minimal_subset_rank_condition(np.eye(5)[:, :4], f=2)
