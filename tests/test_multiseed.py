"""Tests for multi-seed experiment aggregation."""

import numpy as np
import pytest

from repro.analysis.reporting import ExperimentResult
from repro.exceptions import InvalidParameterError
from repro.experiments.multiseed import summarize_over_seeds


def make_fake(seed: int) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    return ExperimentResult(
        experiment_id="EX",
        title="fake",
        headers=["label", "value", "verdict"],
        rows=[["a", float(rng.normal(loc=1.0, scale=0.1)), "yes"]],
        series={"curve": np.linspace(0, 1, 5) + rng.normal(scale=0.01, size=5)},
    )


class TestAggregation:
    def test_numeric_cells_become_mean_pm_std(self):
        aggregated = summarize_over_seeds(make_fake, seeds=(0, 1, 2, 3))
        cell = aggregated.rows[0][1]
        assert "±" in cell
        mean = float(cell.split("±")[0])
        assert mean == pytest.approx(1.0, abs=0.2)

    def test_identical_labels_pass_through(self):
        aggregated = summarize_over_seeds(make_fake, seeds=(0, 1))
        assert aggregated.rows[0][0] == "a"
        assert aggregated.rows[0][2] == "yes"

    def test_series_mean_and_std_companions(self):
        aggregated = summarize_over_seeds(make_fake, seeds=(0, 1, 2))
        assert "curve" in aggregated.series
        assert "curve/std" in aggregated.series
        assert np.all(aggregated.series["curve/std"] >= 0)
        assert np.allclose(aggregated.series["curve"], np.linspace(0, 1, 5), atol=0.05)

    def test_title_annotated_and_seeds_noted(self):
        aggregated = summarize_over_seeds(make_fake, seeds=(0, 1))
        assert "mean ± std over 2 seeds" in aggregated.title
        assert "seeds" in aggregated.notes[0]

    def test_seed_sensitive_labels_flagged(self):
        def flaky(seed):
            result = make_fake(seed)
            result.rows[0][2] = "yes" if seed % 2 == 0 else "no"
            return result

        aggregated = summarize_over_seeds(flaky, seeds=(0, 1))
        assert aggregated.rows[0][2] == "(seed-sensitive)"

    def test_requires_two_seeds(self):
        with pytest.raises(InvalidParameterError):
            summarize_over_seeds(make_fake, seeds=(0,))

    def test_shape_mismatch_rejected(self):
        def mutating(seed):
            result = make_fake(seed)
            if seed == 1:
                result.rows.append(["extra", 0.0, "yes"])
            return result

        with pytest.raises(InvalidParameterError):
            summarize_over_seeds(mutating, seeds=(0, 1))


class TestOnRealExperiment:
    def test_table1_across_seeds(self):
        from repro.experiments import run_table1

        aggregated = summarize_over_seeds(
            lambda seed: run_table1(iterations=200, seed=seed), seeds=(1, 2, 3)
        )
        assert aggregated.experiment_id == "E1"
        # Filter/attack labels preserved; errors aggregated.
        assert aggregated.rows[0][0] == "cge"
        assert "±" in aggregated.rows[0][3]
