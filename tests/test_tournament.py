"""Tournament engine: config, scoring, caching/resume, artifacts, CLI.

The heavier behaviours (cache hit/miss accounting, kill-and-resume
bit-identity, exit codes) run on a deliberately tiny tournament — two
filters, two attacks, two seeds, a handful of iterations — so the suite
stays fast while exercising the same code paths as the full
cross-product.
"""

import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.exceptions import (
    CacheIntegrityError,
    InvalidParameterError,
    TournamentSchemaError,
    UnknownRegistryEntryError,
)
from repro.experiments.sweep import SweepEngine
from repro.experiments.tournament import (
    TOURNAMENT_SCHEMA,
    AttackSpec,
    TournamentConfig,
    artifact_filename,
    default_attack_bank,
    load_tournament_artifact,
    run_tournament,
    score_match,
    validate_tournament_payload,
    write_tournament_artifact,
)
from repro.utils.atomicio import write_json_atomic


def tiny_config(**overrides):
    settings = dict(
        name="unit",
        filters=("average", "cwtm"),
        attacks=(
            AttackSpec.with_params("zero", "zero"),
            AttackSpec.with_params(
                "ipm", "ipm", kind="adaptive",
                palette=[{"scale": 0.5}, {"scale": 8.0}],
            ),
        ),
        rounds=2,
        num_seeds=2,
        iterations=40,
        n=8,
        d=2,
        f=1,
    )
    settings.update(overrides)
    return TournamentConfig(**settings)


def strip_nondeterministic(payload):
    """Drop the host-dependent keys; the rest must be bit-identical."""
    return {
        key: value
        for key, value in payload.items()
        if key not in ("provenance", "execution")
    }


class TestAttackSpec:
    def test_bad_kind_rejected(self):
        with pytest.raises(InvalidParameterError, match="kind"):
            AttackSpec(name="x", attack="zero", kind="chaotic")

    def test_adaptive_needs_palette(self):
        with pytest.raises(InvalidParameterError, match="palette"):
            AttackSpec(name="x", attack="ipm", kind="adaptive")

    def test_palette_escalation_clamps(self):
        spec = AttackSpec.with_params(
            "ipm", "ipm", kind="adaptive",
            palette=[{"scale": 0.5}, {"scale": 2.0}],
        )
        assert spec.params_at(0) == {"scale": 0.5}
        assert spec.params_at(1) == {"scale": 2.0}
        assert spec.params_at(99) == {"scale": 2.0}  # clamped
        assert spec.params_at(-3) == {"scale": 0.5}
        assert spec.max_level() == 1

    def test_static_params_roundtrip(self):
        spec = AttackSpec.with_params("r", "random", params={"scale": 200.0})
        assert spec.params_at(0) == {"scale": 200.0}
        assert spec.max_level() == 0

    def test_default_bank_shape(self):
        bank = default_attack_bank()
        assert len(bank) >= 6
        names = [spec.name for spec in bank]
        assert len(set(names)) == len(names)
        kinds = {spec.kind for spec in bank}
        assert kinds == {"static", "adaptive", "best-response"}


class TestTournamentConfig:
    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"rounds": 0}, "rounds"),
            ({"num_seeds": 1}, "num_seeds"),
            ({"f": 0}, "Byzantine"),
            ({"f": 4, "n": 8}, "n/2"),
            ({"iterations": 0}, "iterations"),
            ({"win_threshold": 0.5, "loss_threshold": 0.4}, "threshold"),
            ({"win_threshold": 0.0}, "threshold"),
            ({"attacks": ()}, "non-empty"),
        ],
    )
    def test_invalid_configs_rejected(self, overrides, match):
        with pytest.raises(InvalidParameterError, match=match):
            tiny_config(**overrides)

    def test_duplicate_bank_names_rejected(self):
        with pytest.raises(InvalidParameterError, match="unique"):
            tiny_config(
                attacks=(
                    AttackSpec.with_params("zero", "zero"),
                    AttackSpec.with_params("zero", "sign-flip"),
                )
            )

    def test_empty_filters_means_whole_registry(self):
        from repro.aggregators import available_filters

        assert tiny_config(filters=()).resolved_filters() == tuple(
            available_filters()
        )

    def test_unknown_filter_raises_structured_error(self):
        with pytest.raises(UnknownRegistryEntryError, match="no-such"):
            tiny_config(filters=("average", "no-such")).resolved_filters()

    def test_seeds_are_prefix_stable(self):
        wide = tiny_config(num_seeds=5).seeds()
        narrow = tiny_config(num_seeds=2).seeds()
        assert wide[:2] == narrow


class TestScoring:
    def test_bands(self):
        assert score_match(0.05, 0.1, 0.4) == "win"
        assert score_match(0.1, 0.1, 0.4) == "win"  # boundary inclusive
        assert score_match(0.25, 0.1, 0.4) == "draw"
        assert score_match(0.4, 0.1, 0.4) == "loss"  # boundary inclusive
        assert score_match(7.0, 0.1, 0.4) == "loss"

    def test_non_finite_is_a_loss(self):
        assert score_match(float("nan"), 0.1, 0.4) == "loss"
        assert score_match(float("inf"), 0.1, 0.4) == "loss"

    def test_invalid_thresholds(self):
        with pytest.raises(InvalidParameterError):
            score_match(0.2, 0.4, 0.1)
        with pytest.raises(InvalidParameterError):
            score_match(0.2, 0.0, 0.4)


class TestRunTournament:
    def test_payload_shape_and_counts(self):
        payload = run_tournament(tiny_config())
        validate_tournament_payload(payload)
        assert payload["schema"] == TOURNAMENT_SCHEMA
        # rounds x filters x attacks x seeds
        assert payload["counts"]["matches"] == 2 * 2 * 2 * 2
        assert payload["counts"]["failed"] == 0
        roles = {row["player"]: row["role"] for row in
                 payload["leaderboard"]["all"]}
        assert roles == {"average": "filter", "cwtm": "filter",
                         "zero": "attack", "ipm": "attack"}
        assert len(payload["leaderboard"]["filters"]) == 2
        assert len(payload["leaderboard"]["attacks"]) == 2
        assert payload["table"]["headers"] == ["player", "role", "elo"]

    def test_deterministic_given_config(self):
        first = run_tournament(tiny_config())
        second = run_tournament(tiny_config())
        assert strip_nondeterministic(first) == strip_nondeterministic(second)

    def test_robust_filter_outranks_fragile_one(self):
        payload = run_tournament(
            tiny_config(
                filters=("cwtm", "average"),
                attacks=(
                    AttackSpec.with_params("gradient-reverse",
                                           "gradient-reverse"),
                    AttackSpec.with_params(
                        "random", "random", params={"scale": 200.0}
                    ),
                ),
                iterations=120,
            )
        )
        filters = payload["leaderboard"]["filters"]
        assert filters[0]["player"] == "cwtm"
        assert filters[0]["rating_mean"] > filters[-1]["rating_mean"]

    def test_infeasible_pairing_is_recorded_not_raised(self):
        # Bulyan needs n >= 4f + 3 = 7; with n = 6 every bulyan match
        # fails while the feasible filter still plays.
        payload = run_tournament(
            tiny_config(filters=("average", "bulyan"), n=6)
        )
        assert payload["counts"]["failed"] == 2 * 2 * 2  # rounds x attacks x seeds
        errors = [
            m for r in payload["rounds"] for m in r["matches"]
            if m["outcome"] == "error"
        ]
        assert errors and all(m["filter"] == "bulyan" for m in errors)
        assert all("error" in m for m in errors)

    def test_filter_attack_name_collision_rejected(self):
        with pytest.raises(InvalidParameterError, match="collide"):
            run_tournament(
                tiny_config(
                    attacks=(AttackSpec.with_params("average", "zero"),)
                )
            )

    def test_adaptive_retuning_escalates_on_filter_wins(self):
        # cwtm beats weak IPM in round 0, so round 1 must re-tune the
        # (cwtm, ipm) pairing up the palette.
        payload = run_tournament(
            tiny_config(filters=("cwtm",), iterations=120, rounds=2)
        )
        retuned = payload["rounds"][0]["retuned"]
        assert any(
            r["filter"] == "cwtm" and r["attack"] == "ipm" and r["level"] == 1
            for r in retuned
        )
        round1 = {
            (m["filter"], m["attack"]): m["params"]
            for m in payload["rounds"][1]["matches"]
        }
        assert round1[("cwtm", "ipm")] == {"scale": 8.0}


class TestCacheAndResume:
    def test_cold_run_populates_cache_warm_run_hits(self, tmp_path):
        cache = str(tmp_path / "cache")
        cold = run_tournament(
            tiny_config(), SweepEngine(parallel=False, cache_dir=cache)
        )
        # Round 0 misses everything; round 1 re-runs the escalated
        # (filter, ipm) pairings but hits every unchanged one.
        assert cold["execution"]["cache_misses"] > 0
        warm = run_tournament(
            tiny_config(), SweepEngine(parallel=False, cache_dir=cache)
        )
        assert warm["execution"]["cache_misses"] == 0
        assert warm["execution"]["cache_hits"] == warm["counts"]["matches"]
        assert strip_nondeterministic(cold) == strip_nondeterministic(warm)

    def test_resume_after_partial_cache_recomputes_only_missing(self, tmp_path):
        cache = str(tmp_path / "cache")
        run_tournament(
            tiny_config(), SweepEngine(parallel=False, cache_dir=cache)
        )
        entries = sorted(os.listdir(cache))
        assert entries
        # Simulate a killed run: delete one finished match entry.
        os.remove(os.path.join(cache, entries[0]))
        resumed = run_tournament(
            tiny_config(), SweepEngine(parallel=False, cache_dir=cache)
        )
        assert resumed["execution"]["cache_misses"] == 1
        assert resumed["execution"]["cache_hits"] == (
            resumed["counts"]["matches"] - 1
        )

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        cache = str(tmp_path / "cache")
        run_tournament(
            tiny_config(), SweepEngine(parallel=False, cache_dir=cache)
        )
        victim = os.path.join(cache, sorted(os.listdir(cache))[0])
        with open(victim, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        resumed = run_tournament(
            tiny_config(), SweepEngine(parallel=False, cache_dir=cache)
        )
        assert resumed["counts"]["failed"] == 0
        assert resumed["execution"]["cache_misses"] == 1

    def test_foreign_shaped_entry_recomputed(self, tmp_path):
        # A checksummed document of the wrong shape (e.g. a regression
        # cell under a colliding key) must be discarded, not trusted.
        cache = str(tmp_path / "cache")
        run_tournament(
            tiny_config(), SweepEngine(parallel=False, cache_dir=cache)
        )
        victim = os.path.join(cache, sorted(os.listdir(cache))[0])
        write_json_atomic(victim, {"final_estimate": [0.0], "estimates": []})
        resumed = run_tournament(
            tiny_config(), SweepEngine(parallel=False, cache_dir=cache)
        )
        assert resumed["counts"]["failed"] == 0
        assert resumed["execution"]["cache_misses"] == 1

    def test_threshold_change_rescores_for_free(self, tmp_path):
        # Scoring thresholds are not part of the match cache key.
        cache = str(tmp_path / "cache")
        run_tournament(
            tiny_config(), SweepEngine(parallel=False, cache_dir=cache)
        )
        rescored = run_tournament(
            tiny_config(win_threshold=0.01, loss_threshold=0.02),
            SweepEngine(parallel=False, cache_dir=cache),
        )
        assert rescored["execution"]["cache_misses"] == 0


class TestArtifacts:
    def test_write_load_roundtrip(self, tmp_path):
        payload = run_tournament(tiny_config())
        path = write_tournament_artifact(payload, str(tmp_path))
        assert os.path.basename(path) == artifact_filename("unit")
        loaded = load_tournament_artifact(path)
        assert strip_nondeterministic(loaded) == strip_nondeterministic(payload)

    def test_filename_sanitized(self):
        assert artifact_filename("a b/c") == "TOURNAMENT_a_b_c.json"
        assert artifact_filename("ok-name_1") == "TOURNAMENT_ok-name_1.json"

    def test_tampered_artifact_rejected(self, tmp_path):
        payload = run_tournament(tiny_config())
        path = write_tournament_artifact(payload, str(tmp_path))
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        doc["payload"]["name"] = "tampered"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        with pytest.raises(CacheIntegrityError):
            load_tournament_artifact(path)

    def test_valid_json_bad_schema_rejected(self, tmp_path):
        path = str(tmp_path / "TOURNAMENT_bad.json")
        write_json_atomic(path, {"schema": "nope"})
        with pytest.raises(TournamentSchemaError):
            load_tournament_artifact(path)


class TestSchemaValidation:
    def _payload(self):
        return run_tournament(tiny_config())

    def test_non_dict_rejected(self):
        with pytest.raises(TournamentSchemaError, match="dict"):
            validate_tournament_payload([1, 2])

    def test_missing_fields_listed(self):
        with pytest.raises(TournamentSchemaError, match="missing fields"):
            validate_tournament_payload({"schema": TOURNAMENT_SCHEMA})

    def test_unknown_schema_tag(self):
        payload = self._payload()
        payload["schema"] = "repro.tournament/v999"
        with pytest.raises(TournamentSchemaError, match="schema"):
            validate_tournament_payload(payload)

    def test_bad_outcome_vocabulary(self):
        payload = self._payload()
        payload["rounds"][0]["matches"][0]["outcome"] = "rout"
        with pytest.raises(TournamentSchemaError, match="outcome"):
            validate_tournament_payload(payload)

    def test_count_mismatch(self):
        payload = self._payload()
        payload["counts"]["matches"] += 1
        with pytest.raises(TournamentSchemaError, match="disagrees"):
            validate_tournament_payload(payload)

    def test_unsorted_leaderboard(self):
        payload = self._payload()
        payload["leaderboard"]["all"].reverse()
        with pytest.raises(TournamentSchemaError, match="sorted"):
            validate_tournament_payload(payload)

    def test_missing_row_field(self):
        payload = self._payload()
        del payload["leaderboard"]["all"][0]["ci95"]
        with pytest.raises(TournamentSchemaError, match="ci95"):
            validate_tournament_payload(payload)


RUN_ARGS = [
    "tournament", "run", "--name", "cli-unit",
    "--filters", "average", "cwtm",
    "--attacks", "zero", "ipm",
    "--rounds", "1", "--num-seeds", "2", "--iterations", "30",
    "--sequential",
]


class TestCli:
    def test_run_writes_artifact_and_prints_leaderboard(self, tmp_path, capsys):
        assert main(RUN_ARGS + ["--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "robustness leaderboard" in out
        assert "cwtm" in out
        path = tmp_path / artifact_filename("cli-unit")
        assert path.exists()
        load_tournament_artifact(str(path))

    def test_run_then_resume_hits_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = RUN_ARGS + ["--out-dir", str(tmp_path), "--cache-dir", cache]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "(8 from cache)" in out

    def test_resume_without_cache_dir_is_usage_error(self, tmp_path, capsys):
        args = RUN_ARGS + ["--out-dir", str(tmp_path), "--resume"]
        assert main(args) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_unknown_bank_attack_is_usage_error(self, tmp_path, capsys):
        args = [
            "tournament", "run", "--attacks", "nope",
            "--out-dir", str(tmp_path), "--sequential",
        ]
        assert main(args) == 2
        err = capsys.readouterr().err
        assert "unknown bank attack" in err
        assert "gradient-reverse" in err  # available names listed

    def test_failed_matches_exit_one(self, tmp_path, capsys):
        # n=6 makes bulyan infeasible: matches fail, artifact still lands.
        args = [
            "tournament", "run", "--name", "cli-fail",
            "--filters", "average", "bulyan", "--attacks", "zero",
            "--rounds", "1", "--num-seeds", "2", "--iterations", "20",
            "--n", "6", "--sequential", "--out-dir", str(tmp_path),
        ]
        assert main(args) == 1
        assert "failed" in capsys.readouterr().err
        assert (tmp_path / artifact_filename("cli-fail")).exists()

    def test_invalid_config_is_usage_error(self, tmp_path, capsys):
        args = RUN_ARGS + ["--out-dir", str(tmp_path), "--rounds", "0"]
        assert main(args) == 2
        assert "rounds" in capsys.readouterr().err

    def test_leaderboard_and_report_commands(self, tmp_path, capsys):
        assert main(RUN_ARGS + ["--out-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        path = str(tmp_path / artifact_filename("cli-unit"))
        assert main(["tournament", "leaderboard", path]) == 0
        assert "robustness leaderboard" in capsys.readouterr().out
        assert main(["tournament", "report", path]) == 0
        assert "most decisive matches" in capsys.readouterr().out

    def test_leaderboard_on_missing_file_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "TOURNAMENT_nope.json")
        assert main(["tournament", "leaderboard", missing]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_events_log_records_cache_traffic(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        events = str(tmp_path / "events.jsonl")
        args = RUN_ARGS + [
            "--out-dir", str(tmp_path), "--cache-dir", cache,
            "--events", events,
        ]
        assert main(args) == 0
        kinds = [
            json.loads(line)["event"]
            for line in open(events, encoding="utf-8")
        ]
        assert "cache_miss" in kinds
