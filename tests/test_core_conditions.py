"""Tests for regularity constants and convergence conditions."""

from math import inf

import numpy as np
import pytest

from repro.core.conditions import (
    RegularityConstants,
    cge_alpha,
    cge_error_radius,
    cge_max_tolerable_faults,
    cwtm_error_radius,
    estimate_gradient_skew,
    estimate_lipschitz_smoothness,
    estimate_strong_convexity,
    regularity_of_quadratics,
)
from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import QuadraticCost, TranslatedQuadratic
from repro.optimization.projections import BoxSet


class TestRegularityOfQuadratics:
    def test_identical_isotropic_costs(self):
        costs = [TranslatedQuadratic([0.0, 0.0]) for _ in range(5)]
        constants = regularity_of_quadratics(costs, f=1)
        # TranslatedQuadratic has Hessian 2 I.
        assert constants.mu == pytest.approx(2.0)
        assert constants.gamma == pytest.approx(2.0)
        assert constants.exact

    def test_gamma_at_most_mu(self, paper):
        constants = regularity_of_quadratics(paper.costs, f=1)
        assert 0 < constants.gamma <= constants.mu
        constants.validate()

    def test_rank_one_costs_have_positive_gamma_in_aggregate(self, paper):
        constants = regularity_of_quadratics(paper.costs, f=1)
        # Individually rank-1 (gamma would be 0), but the (n-f)-averages mix
        # directions, so gamma > 0.
        assert constants.gamma > 0.1

    def test_non_quadratic_rejected(self):
        from repro.optimization.cost_functions import HuberCost

        with pytest.raises(InvalidParameterError):
            regularity_of_quadratics([HuberCost([0.0])] * 3, f=1)

    def test_validate_rejects_gamma_above_mu(self):
        with pytest.raises(InvalidParameterError):
            RegularityConstants(mu=1.0, gamma=2.0, dimension=2, exact=True).validate()

    def test_condition_number(self):
        constants = RegularityConstants(mu=4.0, gamma=2.0, dimension=2, exact=True)
        assert constants.condition_number == pytest.approx(2.0)
        degenerate = RegularityConstants(mu=4.0, gamma=0.0, dimension=2, exact=True)
        assert degenerate.condition_number == inf


class TestSampledEstimators:
    def test_smoothness_estimate_matches_quadratic(self):
        costs = [QuadraticCost(np.diag([2.0, 6.0]), np.zeros(2))]
        region = BoxSet.centered(2, 5.0)
        estimate = estimate_lipschitz_smoothness(costs, region, num_samples=300, seed=0)
        assert estimate == pytest.approx(6.0, rel=0.05)

    def test_strong_convexity_estimate_matches_quadratic(self):
        costs = [QuadraticCost(np.diag([2.0, 6.0]), np.zeros(2)) for _ in range(3)]
        region = BoxSet.centered(2, 5.0)
        estimate = estimate_strong_convexity(costs, f=1, region=region, num_samples=200, seed=0)
        assert estimate == pytest.approx(2.0, rel=0.1)

    def test_skew_zero_for_identical_costs(self):
        costs = [TranslatedQuadratic([1.0, 1.0]) for _ in range(3)]
        region = BoxSet.centered(2, 3.0)
        assert estimate_gradient_skew(costs, region, num_samples=50, seed=0) == pytest.approx(0.0)

    def test_skew_bounded_by_two(self, paper):
        region = BoxSet.centered(2, 3.0)
        skew = estimate_gradient_skew(paper.costs, region, num_samples=50, seed=0)
        assert 0.0 < skew <= 2.0


class TestCgeCondition:
    def test_alpha_formula(self):
        # alpha = 1 - (f/n)(1 + 2 mu/gamma)
        assert cge_alpha(10, 1, mu=1.0, gamma=1.0) == pytest.approx(1 - 0.3)

    def test_alpha_decreases_with_f(self):
        alphas = [cge_alpha(12, f, 2.0, 1.0) for f in range(1, 5)]
        assert all(a > b for a, b in zip(alphas, alphas[1:]))

    def test_max_tolerable_faults_consistent_with_alpha(self):
        n, mu, gamma = 20, 2.0, 1.0
        f_max = cge_max_tolerable_faults(n, mu, gamma)
        assert cge_alpha(n, f_max, mu, gamma) > 0 or f_max == 0
        if f_max + 1 <= (n - 1) // 2:
            assert cge_alpha(n, f_max + 1, mu, gamma) <= 0

    def test_max_tolerable_faults_below_third(self):
        # gamma <= mu forces f < n/3.
        assert cge_max_tolerable_faults(30, 1.0, 1.0) < 10

    def test_error_radius_zero_under_exact_redundancy(self):
        assert cge_error_radius(10, 1, 1.0, 1.0, epsilon=0.0) == 0.0

    def test_error_radius_zero_when_no_faults(self):
        assert cge_error_radius(10, 0, 1.0, 1.0, epsilon=5.0) == 0.0

    def test_error_radius_infinite_when_alpha_nonpositive(self):
        assert cge_error_radius(6, 2, 2.0, 0.5, epsilon=0.1) == inf

    def test_error_radius_scales_linearly_in_epsilon(self):
        r1 = cge_error_radius(10, 1, 1.0, 1.0, epsilon=0.1)
        r2 = cge_error_radius(10, 1, 1.0, 1.0, epsilon=0.2)
        assert r2 == pytest.approx(2 * r1)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            cge_alpha(10, 1, mu=-1.0, gamma=1.0)
        with pytest.raises(InvalidParameterError):
            cge_error_radius(10, 1, 1.0, 1.0, epsilon=-0.5)


class TestCwtmCondition:
    def test_radius_zero_under_exact_redundancy(self):
        assert cwtm_error_radius(10, 1, 1.0, 1.0, skew=0.1, dimension=4, epsilon=0.0) == 0.0

    def test_radius_infinite_beyond_skew_threshold(self):
        # Condition: skew < gamma / (mu sqrt(d)).
        assert cwtm_error_radius(10, 1, 1.0, 1.0, skew=1.0, dimension=4, epsilon=0.1) == inf

    def test_radius_finite_and_positive_inside_threshold(self):
        radius = cwtm_error_radius(10, 1, 1.0, 1.0, skew=0.1, dimension=4, epsilon=0.1)
        assert 0 < radius < inf

    def test_dimension_tightens_condition(self):
        small_d = cwtm_error_radius(10, 1, 1.0, 1.0, skew=0.2, dimension=2, epsilon=0.1)
        large_d = cwtm_error_radius(10, 1, 1.0, 1.0, skew=0.2, dimension=50, epsilon=0.1)
        assert large_d == inf and small_d < inf
