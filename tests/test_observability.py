"""Tests for the run-telemetry layer (``repro.observability``).

Covers the sink/exporter machinery, the live handle's per-round records
and roll-ups, the zero-overhead (bit-identity) guarantee of the disabled
default across all execution engines, and the acceptance criterion: a
fault-sweep cell's JSONL elimination records reconstruct the CGE kept-set
computed by :meth:`ComparativeGradientElimination.kept_indices`.
"""

import json
import os

import numpy as np
import pytest

from repro.aggregators import ComparativeGradientElimination
from repro.aggregators.base import GradientFilter
from repro.attacks import GradientReverse, SignFlip, make_attack
from repro.exceptions import InvalidParameterError
from repro.observability import (
    JSONLSink,
    MemorySink,
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetrySink,
    count_events,
    ensure_telemetry,
    load_jsonl,
    summarize_records,
    write_summary_atomic,
)
from repro.problems.linear_regression import make_redundant_regression
from repro.system.batch import run_dgd_batch
from repro.system.peer_to_peer import run_peer_to_peer_dgd
from repro.system.runner import run_dgd
from repro.utils.atomicio import read_json_checked


@pytest.fixture(scope="module")
def instance():
    return make_redundant_regression(n=6, d=2, f=1, noise_std=0.02, seed=0)


class TestNullTelemetry:
    def test_falsy_and_shared(self):
        assert not NULL_TELEMETRY
        assert not NullTelemetry()
        assert NULL_TELEMETRY.enabled is False

    def test_all_operations_are_noops(self):
        tel = NULL_TELEMETRY
        with tel.span("anything"):
            pass
        tel.increment("x")
        tel.emit("event", a=1)
        tel.record_round(round_index=0)
        tel.annotate(byzantine_ids=[1])
        assert tel.summary() == {}
        tel.close()

    def test_span_is_shared_instance(self):
        assert NULL_TELEMETRY.span("a") is NULL_TELEMETRY.span("b")

    def test_context_manager(self):
        with NULL_TELEMETRY as tel:
            assert tel is NULL_TELEMETRY


class TestEnsureTelemetry:
    def test_none_gives_null_singleton(self):
        assert ensure_telemetry(None) is NULL_TELEMETRY

    def test_handles_pass_through(self):
        tel = Telemetry()
        assert ensure_telemetry(tel) is tel
        assert ensure_telemetry(NULL_TELEMETRY) is NULL_TELEMETRY

    def test_path_becomes_jsonl_stream(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tel = ensure_telemetry(path)
        assert isinstance(tel, Telemetry)
        tel.emit("hello")
        assert load_jsonl(path) == [{"event": "hello"}]

    def test_rejects_other_types(self):
        with pytest.raises(InvalidParameterError):
            ensure_telemetry(42)


class TestSinks:
    def test_default_sink_is_memory(self):
        tel = Telemetry()
        tel.emit("a", x=1)
        assert tel.records == [{"event": "a", "x": 1}]

    def test_jsonl_round_trip_with_numpy_values(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tel = Telemetry(path)
        tel.emit("a", i=np.int64(3), f=np.float64(0.5), v=np.array([1.0, 2.0]))
        assert load_jsonl(path) == [{"event": "a", "i": 3, "f": 0.5, "v": [1.0, 2.0]}]

    def test_jsonl_truncates_on_init(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "stale"}\n')
        JSONLSink(str(path))
        assert load_jsonl(str(path)) == []

    def test_load_skips_torn_final_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "a"}\n{"event": "b", "x"')
        assert load_jsonl(str(path)) == [{"event": "a"}]

    def test_multiple_sinks_fan_out(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        memory = MemorySink()
        tel = Telemetry([memory, JSONLSink(path)])
        tel.emit("a")
        assert memory.records == [{"event": "a"}]
        assert load_jsonl(path) == [{"event": "a"}]
        assert tel.records is memory.records

    def test_sink_sequence_must_contain_sinks(self):
        with pytest.raises(InvalidParameterError):
            Telemetry([MemorySink(), "not-a-sink"])
        with pytest.raises(InvalidParameterError):
            Telemetry([])

    def test_base_sink_is_abstract(self):
        with pytest.raises(NotImplementedError):
            TelemetrySink().emit({})

    def test_count_events(self):
        records = [{"event": "a"}, {"event": "a"}, {"event": "b"}, {}]
        assert count_events(records) == {"a": 2, "b": 1, "?": 1}


class TestTelemetryHandle:
    def test_truthy(self):
        assert Telemetry()

    def test_counters(self):
        tel = Telemetry()
        tel.increment("retries")
        tel.increment("retries", by=2)
        assert tel.counters == {"retries": 3}
        assert tel.summary()["counters"] == {"retries": 3}

    def test_span_records_duration_and_event(self):
        tel = Telemetry()
        with tel.span("work"):
            pass
        spans = [r for r in tel.records if r["event"] == "span"]
        assert len(spans) == 1
        assert spans[0]["name"] == "work"
        assert spans[0]["seconds"] >= 0.0
        assert tel.summary()["spans"]["work"]["count"] == 1

    def test_record_round_elimination_scoring(self):
        tel = Telemetry(byzantine_ids=[0, 5])
        record = tel.record_round(
            round_index=3,
            filter_name="cge",
            step_size=0.1,
            gradient_norms=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            kept_ids=[1, 2, 3, 5],
        )
        assert record["kept"] == [1, 2, 3, 5]
        assert record["eliminated"] == [0, 4]
        assert record["eliminated_byzantine"] == 1  # agent 0
        assert record["surviving_byzantine"] == 1  # agent 5
        assert record["grad_norm_min"] == 1.0
        assert record["grad_norm_median"] == 3.5
        assert record["grad_norm_max"] == 6.0
        elimination = tel.summary()["elimination"]
        assert elimination["true_positives"] == 1
        assert elimination["false_positives"] == 1
        assert elimination["false_negatives"] == 1
        assert elimination["precision"] == 0.5
        assert elimination["recall"] == 0.5

    def test_record_round_with_agent_id_mapping(self):
        # Rows need not be agent ids: with agents (2, 4, 6) present, the
        # kept/eliminated sets are reported in agent-id space.
        tel = Telemetry(byzantine_ids=[6])
        record = tel.record_round(
            round_index=0,
            filter_name="cge",
            step_size=0.1,
            gradient_norms=[1.0, 2.0, 3.0],
            agent_ids=[2, 4, 6],
            kept_ids=[2, 4],
        )
        assert record["eliminated"] == [6]
        assert record["eliminated_byzantine"] == 1
        assert record["surviving_byzantine"] == 0

    def test_record_round_without_kept_ids_has_no_elimination(self):
        tel = Telemetry(byzantine_ids=[0])
        record = tel.record_round(
            round_index=0,
            filter_name="median",
            step_size=0.1,
            gradient_norms=[1.0, 2.0],
        )
        assert "kept" not in record and "eliminated" not in record
        elimination = tel.summary()["elimination"]
        assert elimination["precision"] is None
        assert elimination["recall"] is None

    def test_distance_to_reference(self):
        tel = Telemetry(reference_point=[1.0, 1.0])
        record = tel.record_round(
            round_index=0,
            filter_name="cge",
            step_size=0.1,
            gradient_norms=[1.0],
            estimate=[4.0, 5.0],
        )
        assert record["distance_to_ref"] == pytest.approx(5.0)

    def test_annotate_overrides_ground_truth(self):
        tel = Telemetry()
        tel.annotate(byzantine_ids=[1], reference_point=[0.0])
        record = tel.record_round(
            round_index=0, filter_name="cge", step_size=0.1,
            gradient_norms=[1.0, 2.0], kept_ids=[0], estimate=[3.0],
        )
        assert record["eliminated_byzantine"] == 1
        assert record["distance_to_ref"] == pytest.approx(3.0)

    def test_close_is_idempotent_and_self_describing(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tel = Telemetry(path)
        tel.increment("hits", by=2)
        tel.emit("noise")
        tel.close()
        tel.close()
        records = load_jsonl(path)
        assert count_events(records) == {"noise": 1, "counters": 1, "summary": 1}
        assert records[-1]["event"] == "summary"

    def test_context_manager_closes(self):
        with Telemetry() as tel:
            tel.emit("a")
        assert tel.records[-1]["event"] == "summary"

    def test_summary_matches_summarize_records(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tel = Telemetry([MemorySink(), JSONLSink(path)], byzantine_ids=[0])
        tel.increment("cache_miss")
        for t in range(4):
            with tel.span("round"):
                tel.record_round(
                    round_index=t, filter_name="cge", step_size=0.1,
                    gradient_norms=[1.0, 2.0, 3.0], kept_ids=[1, 2],
                )
        live = tel.summary()
        # Counters reach the record stream only on close; everything else
        # agrees already.
        pre_close = summarize_records(tel.records)
        assert pre_close == {**live, "counters": {}}
        tel.close()  # flushes the counters record, then a post-mortem agrees
        assert summarize_records(tel.records) == live
        assert summarize_records(load_jsonl(path)) == live
        assert live["rounds"] == 4
        assert live["rounds_per_sec"] > 0
        assert live["counters"] == {"cache_miss": 1}

    def test_write_summary_atomic_round_trips(self, tmp_path):
        path = str(tmp_path / "summary.json")
        tel = Telemetry()
        tel.record_round(
            round_index=0, filter_name="cge", step_size=0.1, gradient_norms=[1.0]
        )
        write_summary_atomic(path, tel.summary())
        assert read_json_checked(path) == tel.summary()

    def test_percentiles_match_numpy(self):
        durations = [0.1, 0.2, 0.3, 0.4, 0.5]
        records = [
            {"event": "span", "name": "round", "seconds": s} for s in durations
        ]
        spans = summarize_records(records)["spans"]["round"]
        assert spans["p50"] == pytest.approx(np.percentile(durations, 50))
        assert spans["p95"] == pytest.approx(np.percentile(durations, 95))
        assert spans["total"] == pytest.approx(sum(durations))


class TestRunnerTelemetry:
    def test_disabled_run_is_bit_identical(self, instance):
        kwargs = dict(
            gradient_filter="cge", faulty_ids=(0,), iterations=40, seed=1
        )
        baseline = run_dgd(instance.costs, GradientReverse(), **kwargs)
        enabled = run_dgd(
            instance.costs, GradientReverse(), telemetry=Telemetry(), **kwargs
        )
        assert np.array_equal(baseline.estimates, enabled.estimates)
        assert np.array_equal(baseline.directions, enabled.directions)

    def test_round_records(self, instance):
        honest = [1, 2, 3, 4, 5]
        tel = Telemetry(reference_point=instance.honest_minimizer(honest))
        run_dgd(
            instance.costs, GradientReverse(), gradient_filter="cge",
            faulty_ids=(0,), iterations=30, seed=1, telemetry=tel,
        )
        rounds = [r for r in tel.records if r["event"] == "round"]
        assert len(rounds) == 30
        for record in rounds:
            assert record["filter"] == "cge"
            assert len(record["kept"]) == 5  # n - f survivors
            assert record["step_size"] > 0
            assert record["grad_norm_min"] <= record["grad_norm_median"]
            assert record["grad_norm_median"] <= record["grad_norm_max"]
            assert record["distance_to_ref"] >= 0
        # The runner annotates the handle with the true Byzantine set.
        elimination = tel.summary()["elimination"]
        assert elimination["true_positives"] + elimination["false_negatives"] == 30

    def test_span_structure(self, instance):
        tel = Telemetry()
        run_dgd(
            instance.costs, None, gradient_filter="average",
            iterations=10, seed=0, telemetry=tel,
        )
        spans = tel.summary()["spans"]
        assert spans["run"]["count"] == 1
        assert spans["round"]["count"] == 10
        assert spans["filter"]["count"] == 10

    def test_jsonl_path_accepted_directly(self, instance, tmp_path):
        path = str(tmp_path / "run.jsonl")
        run_dgd(
            instance.costs, None, gradient_filter="average",
            iterations=5, seed=0, telemetry=path,
        )
        assert count_events(load_jsonl(path))["round"] == 5


class TestBatchTelemetry:
    def test_disabled_batch_is_bit_identical(self, instance):
        kwargs = dict(
            gradient_filter="cge", faulty_ids=(0,), iterations=30,
            seeds=[1, 2, 3],
        )
        baseline = run_dgd_batch(instance.costs, GradientReverse(), **kwargs)
        enabled = run_dgd_batch(
            instance.costs, GradientReverse(), telemetry=Telemetry(), **kwargs
        )
        for before, after in zip(baseline, enabled):
            assert np.array_equal(before.estimates, after.estimates)

    def test_one_record_per_round_per_run(self, instance):
        tel = Telemetry()
        run_dgd_batch(
            instance.costs, GradientReverse(), gradient_filter="cge",
            faulty_ids=(0,), iterations=20, seeds=[1, 2, 3], telemetry=tel,
        )
        rounds = [r for r in tel.records if r["event"] == "round"]
        assert len(rounds) == 60
        assert {r["run"] for r in rounds} == {0, 1, 2}
        assert all("seed" in r for r in rounds)

    def test_batch_kept_sets_match_sequential(self, instance):
        # The batched CGE kernel and the sequential server must report the
        # same per-round elimination decisions for the same seed.
        batch_tel = Telemetry()
        run_dgd_batch(
            instance.costs, GradientReverse(), gradient_filter="cge",
            faulty_ids=(0,), iterations=15, seeds=[7], telemetry=batch_tel,
        )
        seq_tel = Telemetry()
        run_dgd(
            instance.costs, GradientReverse(), gradient_filter="cge",
            faulty_ids=(0,), iterations=15, seed=7, telemetry=seq_tel,
        )
        batch_rounds = [r for r in batch_tel.records if r["event"] == "round"]
        seq_rounds = [r for r in seq_tel.records if r["event"] == "round"]
        assert len(batch_rounds) == len(seq_rounds) == 15
        for b, s in zip(batch_rounds, seq_rounds):
            assert b["kept"] == s["kept"]
            assert b["eliminated"] == s["eliminated"]


class TestPeerToPeerTelemetry:
    def test_disabled_is_bit_identical_and_records_flow(self):
        instance = make_redundant_regression(n=7, d=2, f=1, noise_std=0.0, seed=0)
        cge = ComparativeGradientElimination(1)
        kwargs = dict(
            faulty_ids=(0,), behavior=GradientReverse(), iterations=5, seed=2
        )
        baseline = run_peer_to_peer_dgd(instance.costs, cge, **kwargs)
        tel = Telemetry()
        enabled = run_peer_to_peer_dgd(
            instance.costs, cge, telemetry=tel, **kwargs
        )
        assert np.array_equal(baseline.estimates, enabled.estimates)
        rounds = [r for r in tel.records if r["event"] == "round"]
        assert len(rounds) == 5
        assert all(len(r["kept"]) == 6 for r in rounds)
        spans = tel.summary()["spans"]
        assert spans["broadcast"]["count"] == 5
        assert spans["filter"]["count"] == 5


class _MatrixRecorder(GradientFilter):
    """Test filter wrapper that keeps each round's sanitized input matrix."""

    name = "matrix-recorder"
    stateful = True

    def __init__(self, inner: GradientFilter):
        super().__init__(inner.f)
        self.inner = inner
        self.matrices = []

    def minimum_inputs(self) -> int:
        return self.inner.minimum_inputs()

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        self.matrices.append(gradients.copy())
        return self.inner._aggregate(gradients)


class TestSweepTelemetry:
    def test_fault_sweep_records_reconstruct_cge_kept_set(self, tmp_path):
        # Acceptance criterion: run a fault-sweep cell with telemetry
        # enabled, then re-derive every round's gradient matrix and check
        # the JSONL "kept" sets against what
        # ComparativeGradientElimination.kept_indices computes on it.
        from repro.experiments.sweep import RegressionGrid, SweepEngine

        grid = RegressionGrid(
            filters=("cge",), attacks=("sign-flip",), fault_counts=(1,),
            num_seeds=2, master_seed=7, n=6, d=2, noise_std=0.0, iterations=25,
        )
        telemetry_dir = str(tmp_path / "telemetry")
        engine = SweepEngine(parallel=False, telemetry_dir=telemetry_dir)
        cells = engine.run_regression_grid(grid)
        assert not any(cell.failed for cell in cells)

        stream = os.path.join(telemetry_dir, "f1-cge-sign-flip.jsonl")
        records = load_jsonl(stream)
        rounds = [r for r in records if r["event"] == "round"]
        assert len(rounds) == grid.num_seeds * grid.iterations

        instance = make_redundant_regression(
            n=grid.n, d=grid.d, f=grid.resolved_redundancy_f(),
            noise_std=grid.noise_std, seed=grid.instance_seed,
        )
        cge = ComparativeGradientElimination(1)
        # The recording wrapper must replay the sweep's trajectory exactly,
        # so pin the step schedule the sweep's default inference chose for
        # CGE (the wrapper would otherwise infer a mean-scale schedule).
        from repro.system.runner import _default_schedule

        schedule = _default_schedule(instance.costs, cge)
        for run_index, seed in enumerate(grid.seeds()):
            recorder = _MatrixRecorder(ComparativeGradientElimination(1))
            run_dgd(
                instance.costs, make_attack("sign-flip"),
                gradient_filter=recorder, faulty_ids=(0,), f=1,
                iterations=grid.iterations, seed=seed,
                step_sizes=schedule,
            )
            run_rounds = sorted(
                (r for r in rounds if r["run"] == run_index),
                key=lambda r: r["round"],
            )
            assert len(run_rounds) == grid.iterations == len(recorder.matrices)
            for record, matrix in zip(run_rounds, recorder.matrices):
                expected = [int(i) for i in cge.kept_indices(matrix)]
                assert record["kept"] == expected
                assert record["eliminated"] == sorted(set(range(6)) - set(expected))
        # With f=1 and agent 0 faulty under sign-flip, the stream's
        # roll-up scores elimination against the true Byzantine set.
        elimination = summarize_records(records)["elimination"]
        total = grid.num_seeds * grid.iterations
        assert elimination["true_positives"] + elimination["false_negatives"] == total

    def test_sweep_results_unchanged_by_telemetry(self, tmp_path):
        from repro.experiments.sweep import RegressionGrid, SweepEngine

        grid = RegressionGrid(
            filters=("cge",), attacks=("zero",), fault_counts=(1,),
            num_seeds=2, master_seed=3, n=6, d=2, iterations=20,
        )
        plain = SweepEngine(parallel=False).run_regression_grid(grid)
        instrumented = SweepEngine(
            parallel=False, telemetry_dir=str(tmp_path / "telemetry")
        ).run_regression_grid(grid)
        for before, after in zip(plain, instrumented):
            assert before.final_error == after.final_error
            assert np.array_equal(before.final_estimate, after.final_estimate)

    def test_sequential_backend_tags_run_starts(self, tmp_path):
        from repro.experiments.sweep import RegressionGrid, SweepEngine

        grid = RegressionGrid(
            filters=("cge",), attacks=("zero",), fault_counts=(1,),
            num_seeds=2, master_seed=3, n=6, d=2, iterations=10,
        )
        telemetry_dir = str(tmp_path / "telemetry")
        SweepEngine(
            parallel=False, backend="sequential", telemetry_dir=telemetry_dir
        ).run_regression_grid(grid)
        records = load_jsonl(os.path.join(telemetry_dir, "f1-cge-zero.jsonl"))
        counts = count_events(records)
        assert counts["run_start"] == 2
        assert counts["round"] == 20

    def test_sweep_events_share_schema_with_telemetry(self, tmp_path):
        # A sweep event log and a telemetry stream are interchangeable for
        # the post-mortem tooling: same loader, same counting.
        from repro.experiments.sweep import SweepEvents

        path = str(tmp_path / "events.jsonl")
        events = SweepEvents(path)
        events.emit("chunk_done", chunk=0)
        events.emit("cache_hit", f=1)
        assert SweepEvents.load is not None
        assert SweepEvents.load(path) == events.records
        assert count_events(load_jsonl(path)) == events.counts()
