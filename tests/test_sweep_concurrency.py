"""Concurrency contracts for the sweep layer (the service's substrate).

The long-lived aggregation service multiplexes many jobs onto shared
machinery, so these properties carry the whole design:

- racing ``SweepEngine.map`` calls on one engine produce results
  bit-identical to running them sequentially (the engine's internal lock
  serializes whole maps; scheduling never leaks into results);
- engines sharing one :class:`SharedProcessPool` stay bit-identical to
  engines with private pools, and cache cells written by one sharer are
  served to the other;
- concurrent writers on one :class:`JSONLSink` never interleave partial
  lines — every line of the stream parses, and none go missing.
"""

import json
import threading

import numpy as np

from repro.experiments.sweep import (
    RegressionGrid,
    SharedProcessPool,
    SweepEngine,
)
from repro.observability import JSONLSink, load_jsonl

GRID_A = RegressionGrid(filters=("cge",), attacks=("gradient-reverse", "zero"),
                        num_seeds=2, iterations=25, master_seed=7)
GRID_B = RegressionGrid(filters=("cwtm",), attacks=("sign-flip",),
                        num_seeds=3, iterations=25, master_seed=8)


def _square(x):
    return x * x


def _run_in_threads(*targets):
    failures = []

    def wrap(fn):
        def inner():
            try:
                fn()
            except BaseException as exc:  # surface into the test thread
                failures.append(exc)
        return inner

    threads = [threading.Thread(target=wrap(t)) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if failures:
        raise failures[0]


class TestRacingMapCalls:
    def test_racing_maps_bit_identical_to_sequential(self):
        engine = SweepEngine(parallel=True, max_workers=2, chunk_size=2,
                             retry_backoff=0.0)
        items_a = list(range(40))
        items_b = list(range(100, 160))
        sequential_a = [_square(x) for x in items_a]
        sequential_b = [_square(x) for x in items_b]
        out = {}
        _run_in_threads(
            lambda: out.__setitem__("a", engine.map(_square, items_a)),
            lambda: out.__setitem__("b", engine.map(_square, items_b)),
        )
        assert out["a"] == sequential_a
        assert out["b"] == sequential_b

    def test_racing_grids_on_one_engine_bit_identical(self, tmp_path):
        solo = SweepEngine(parallel=False)
        expect_a = solo.run_regression_grid(GRID_A)
        expect_b = solo.run_regression_grid(GRID_B)

        engine = SweepEngine(parallel=True, max_workers=2,
                             cache_dir=str(tmp_path / "cache"))
        out = {}
        _run_in_threads(
            lambda: out.__setitem__("a", engine.run_regression_grid(GRID_A)),
            lambda: out.__setitem__("b", engine.run_regression_grid(GRID_B)),
        )
        for got, expected in ((out["a"], expect_a), (out["b"], expect_b)):
            assert len(got) == len(expected)
            for cell, ref in zip(got, expected):
                assert not cell.failed, cell.error
                assert cell.final_error == ref.final_error
                assert np.array_equal(cell.estimates, ref.estimates)


class TestSharedPool:
    def test_shared_pool_engines_bit_identical(self, tmp_path):
        solo = SweepEngine(parallel=False)
        expect_a = solo.run_regression_grid(GRID_A)
        expect_b = solo.run_regression_grid(GRID_B)

        with SharedProcessPool(max_workers=2) as pool:
            engine_a = SweepEngine(parallel=True, pool=pool,
                                   cache_dir=str(tmp_path / "cache"))
            engine_b = SweepEngine(parallel=True, pool=pool,
                                   cache_dir=str(tmp_path / "cache"))
            out = {}
            _run_in_threads(
                lambda: out.__setitem__(
                    "a", engine_a.run_regression_grid(GRID_A)),
                lambda: out.__setitem__(
                    "b", engine_b.run_regression_grid(GRID_B)),
            )
        for got, expected in ((out["a"], expect_a), (out["b"], expect_b)):
            for cell, ref in zip(got, expected):
                assert not cell.failed, cell.error
                assert cell.final_error == ref.final_error
                assert np.array_equal(cell.estimates, ref.estimates)

    def test_cache_cells_shared_between_pool_sharers(self, tmp_path):
        cache = str(tmp_path / "cache")
        with SharedProcessPool(max_workers=2) as pool:
            first = SweepEngine(parallel=True, pool=pool, cache_dir=cache)
            first.run_regression_grid(GRID_A)
            second = SweepEngine(parallel=True, pool=pool, cache_dir=cache)
            cells = second.run_regression_grid(GRID_A)
        assert all(cell.cached for cell in cells)
        counts = second.events.counts()
        assert counts.get("cache_hit", 0) == len(cells)
        assert counts.get("cache_miss", 0) == 0

    def test_closed_pool_refuses_new_work(self):
        pool = SharedProcessPool(max_workers=1)
        pool.close()
        engine = SweepEngine(parallel=True, pool=pool)
        # The failure ladder degrades to in-process execution rather than
        # failing the map outright.
        assert engine.map(_square, [1, 2, 3]) == [1, 4, 9]


class TestJSONLSinkConcurrency:
    def test_concurrent_writers_never_tear_lines(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        sink = JSONLSink(path)
        writers, per_writer = 8, 200
        payload = "x" * 512  # long lines make torn writes observable

        def writer(wid):
            def emit_all():
                for i in range(per_writer):
                    sink.emit({"event": "tick", "writer": wid, "i": i,
                               "payload": payload})
            return emit_all

        _run_in_threads(*[writer(w) for w in range(writers)])
        sink.close()

        with open(path) as handle:
            lines = handle.readlines()
        assert len(lines) == writers * per_writer
        records = [json.loads(line) for line in lines]  # every line parses
        seen = {(r["writer"], r["i"]) for r in records}
        assert len(seen) == writers * per_writer  # none lost, none duplicated
        # the tolerant reader agrees
        assert len(load_jsonl(path)) == writers * per_writer
