"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.problems.linear_regression import make_redundant_regression, paper_instance


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def paper():
    """The n=6, f=1, d=2 regression instance with small noise."""
    return paper_instance()


@pytest.fixture(scope="session")
def noiseless():
    """A noiseless (exactly 2f-redundant) n=6, f=1, d=2 instance."""
    return make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=0)


@pytest.fixture(scope="session")
def paper_honest_minimizer(paper):
    return paper.honest_minimizer([1, 2, 3, 4, 5])
