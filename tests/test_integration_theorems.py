"""Integration tests pinning the paper's theorem-level claims end-to-end.

Each test here is a miniature of one of the paper's results, executed
through the full stack (problem generator → message-passing simulation →
filter → analysis):

1. exact fault-tolerance is *achievable* under 2f-redundancy (subset
   algorithm, and asymptotically the CGE-filtered DGD);
2. exact fault-tolerance is *impossible* without 2f-redundancy — an
   explicit indistinguishability instance in the spirit of the necessity
   proof;
3. plain averaging is not fault-tolerant (the motivation);
4. the peer-to-peer simulation inherits the server-based guarantees.
"""

import numpy as np
import pytest

from repro.attacks.simple import CostSubstitution, GradientReverse, RandomGaussian
from repro.core.exact_algorithm import SubsetEnumerationAlgorithm
from repro.core.redundancy import check_2f_redundancy
from repro.core.resilience import evaluate_resilience
from repro.optimization.cost_functions import LeastSquaresCost, TranslatedQuadratic
from repro.problems.linear_regression import make_redundant_regression
from repro.system.runner import run_dgd


class TestAchievabilityUnderRedundancy:
    """Theorem direction: 2f-redundancy ⟹ exact fault-tolerance achievable."""

    @pytest.mark.parametrize("n,f", [(4, 1), (6, 1), (8, 2)])
    def test_subset_algorithm_is_exactly_fault_tolerant(self, n, f):
        instance = make_redundant_regression(n=n, d=2, f=f, noise_std=0.0, seed=0)
        assert check_2f_redundancy(instance.costs, f=f)
        # Byzantine agents submit costs pulling far away.
        submitted = list(instance.costs)
        for k in range(f):
            submitted[k] = TranslatedQuadratic([40.0 + k, -40.0])
        output = SubsetEnumerationAlgorithm(n, f).run(submitted).output
        honest = list(range(f, n))
        report = evaluate_resilience(output, instance.costs, honest, f)
        assert report.exact

    def test_cge_dgd_converges_to_honest_minimizer_noiseless(self):
        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=0)
        trace = run_dgd(
            instance.costs, GradientReverse(), faulty_ids=[0],
            gradient_filter="cge", iterations=4000, seed=0,
        )
        x_H = instance.honest_minimizer(range(1, 6))
        # Asymptotic exactness: after a long horizon the estimate is well
        # inside any fixed neighbourhood of x_H = x*.
        assert np.linalg.norm(trace.final_estimate - x_H) < 0.02

    def test_cge_error_decreases_with_horizon(self):
        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=0)
        x_H = instance.honest_minimizer(range(1, 6))
        errors = []
        for iterations in (100, 800, 4000):
            trace = run_dgd(
                instance.costs, GradientReverse(), faulty_ids=[0],
                gradient_filter="cge", iterations=iterations, seed=0,
            )
            errors.append(float(np.linalg.norm(trace.final_estimate - x_H)))
        assert errors[2] < errors[1] < errors[0]


class TestNecessityOfRedundancy:
    """Theorem direction: without 2f-redundancy, no deterministic algorithm
    can be exact — two executions with identical received costs but
    different honest sets force different correct answers."""

    def _indistinguishable_instances(self):
        # d = 1: honest agents 1, 2 at targets 0 and 2 (no 2f-redundancy for
        # f = 1 since subsets disagree); agent 0 is Byzantine in scenario A
        # (submitting target 4) and honest in scenario B.
        costs = [
            TranslatedQuadratic([4.0]),
            TranslatedQuadratic([0.0]),
            TranslatedQuadratic([2.0]),
        ]
        return costs

    def test_no_output_is_exact_for_both_scenarios(self):
        costs = self._indistinguishable_instances()
        assert not check_2f_redundancy(costs, f=1)
        # Scenario A: honest = {1, 2}; scenario B: honest = {0, 2}.
        for output in (np.array([v]) for v in np.linspace(-1.0, 5.0, 61)):
            exact_a = evaluate_resilience(output, costs, [1, 2], 1).exact
            exact_b = evaluate_resilience(output, costs, [0, 2], 1).exact
            assert not (exact_a and exact_b)

    def test_deterministic_algorithm_fails_one_scenario(self):
        costs = self._indistinguishable_instances()
        output = SubsetEnumerationAlgorithm(3, 1).run(costs).output
        exact_a = evaluate_resilience(output, costs, [1, 2], 1).exact
        exact_b = evaluate_resilience(output, costs, [0, 2], 1).exact
        assert not (exact_a and exact_b)


class TestAveragingIsNotFaultTolerant:
    def test_single_fault_drives_average_arbitrarily(self):
        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=0)
        x_H = instance.honest_minimizer(range(1, 6))
        trace = run_dgd(
            instance.costs, RandomGaussian(scale=200.0), faulty_ids=[0],
            gradient_filter="average", iterations=500, seed=3,
        )
        # The average-filtered run ends far outside the redundancy scale...
        assert np.linalg.norm(trace.final_estimate - x_H) > 0.5
        # ...while CGE on the identical execution stays close.
        robust = run_dgd(
            instance.costs, RandomGaussian(scale=200.0), faulty_ids=[0],
            gradient_filter="cge", iterations=500, seed=3,
        )
        assert np.linalg.norm(robust.final_estimate - x_H) < 0.1


class TestUndetectableDataPoisoning:
    def test_cost_substitution_shifts_only_within_redundancy(self):
        """A faulty agent reporting a *consistent but wrong* cost cannot move
        the subset-enumeration algorithm's output under 2f-redundancy."""
        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=0)
        shifted = instance.x_star + 3.0
        poisoned_cost = LeastSquaresCost(
            instance.A[0][None, :], (instance.A[0] @ shifted)[None]
        )
        behavior = CostSubstitution({0: poisoned_cost})
        trace = run_dgd(
            instance.costs, behavior, faulty_ids=[0],
            gradient_filter="cge", iterations=3000, seed=0,
        )
        x_H = instance.honest_minimizer(range(1, 6))
        assert np.linalg.norm(trace.final_estimate - x_H) < 0.05


class TestEliminationPath:
    def test_silent_byzantine_agent_is_eliminated_and_run_recovers(self):
        from repro.system.adversary import Adversary
        from repro.system.server import DGDServer
        from repro.aggregators.cge import ComparativeGradientElimination
        from repro.optimization.projections import BoxSet
        from repro.optimization.step_sizes import suggest_diminishing
        from repro.system.messages import SERVER_ID

        instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=0)
        adversary = Adversary(
            GradientReverse(), [0], costs={0: instance.costs[0]},
            silent_ids=[0], seed=0,
        )
        server = DGDServer.with_fixed_filter(
            ComparativeGradientElimination(f=1),
            suggest_diminishing(instance.costs, aggregation="sum"),
            BoxSet.centered(2, 100.0),
            np.zeros(2),
            n=6,
            f=1,
        )
        for _ in range(2000):
            broadcast = server.make_broadcast()
            active = set(server.active_agents)
            honest = [
                instance.costs[i].gradient(broadcast.estimate) for i in sorted(active - {0})
            ]
            from repro.system.messages import GradientMessage

            messages = [
                GradientMessage(sender=i, round_index=broadcast.round_index, gradient=g)
                for i, g in zip(sorted(active - {0}), honest)
            ]
            messages += adversary.forge_messages(
                broadcast, messages, active_faulty=sorted(active & {0})
            )
            server.step(messages)
        assert server.eliminated_agents == [0]
        assert server.f == 0
        x_H = instance.honest_minimizer(range(1, 6))
        assert np.linalg.norm(server.estimate - x_H) < 0.02
