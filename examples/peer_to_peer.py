#!/usr/bin/env python3
"""Serverless operation: peer-to-peer DGD over Byzantine broadcast.

The paper's algorithms assume a trusted server, but for f < n/3 the server
can be simulated peer-to-peer with an authenticated Byzantine broadcast
primitive (Dolev–Strong). This example runs both architectures on the same
instance with the same deterministic adversary and shows:

- the trajectories coincide exactly, and
- the price is message complexity: every gradient costs a full broadcast.

Run:  python examples/peer_to_peer.py
"""

import numpy as np

import repro
from repro.optimization.step_sizes import suggest_diminishing
from repro.system.broadcast import EquivocatingSender

N, F = 7, 2


def main() -> None:
    instance = repro.make_redundant_regression(n=N, d=2, f=F, noise_std=0.0, seed=5)
    faulty = list(range(F))
    honest = [i for i in range(N) if i not in faulty]
    x_H = instance.honest_minimizer(honest)
    schedule = suggest_diminishing(instance.costs, aggregation="sum")
    gradient_filter = repro.ComparativeGradientElimination(f=F)

    server_trace = repro.run_dgd(
        instance.costs, repro.GradientReverse(),
        gradient_filter=repro.ComparativeGradientElimination(f=F),
        faulty_ids=faulty, iterations=200, step_sizes=schedule, seed=5,
    )
    peer_result = repro.run_peer_to_peer_dgd(
        instance.costs, gradient_filter,
        faulty_ids=faulty, behavior=repro.GradientReverse(),
        iterations=200, step_sizes=schedule, seed=5, equivocate=False,
    )

    gap = float(np.linalg.norm(server_trace.final_estimate - peer_result.final_estimate))
    print(f"server-based   final error: {repro.final_error(server_trace, x_H):.6f}")
    print(f"peer-to-peer   final error: "
          f"{float(np.linalg.norm(peer_result.final_estimate - x_H)):.6f}")
    print(f"architecture gap |x_server − x_p2p| = {gap:.2e}")
    print(f"server messages:    {server_trace.messages_delivered}")
    print(f"broadcast messages: {peer_result.broadcast_messages} "
          f"({peer_result.broadcast_messages // max(server_trace.messages_delivered, 1)}x)")

    # A standalone broadcast with an equivocating faulty sender: all honest
    # nodes still deliver one common value.
    strategy = EquivocatingSender(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
    result = repro.byzantine_broadcast(
        n=N, f=F, sender=0, value=None, faulty=faulty, sender_strategy=strategy
    )
    agreed = "⊥" if result.agreed_value is None else np.round(result.agreed_value, 3)
    print(f"\nequivocating broadcast resolved to a common value: {agreed} "
          f"(over {result.rounds} rounds, {result.messages_sent} messages)")


if __name__ == "__main__":
    main()
