#!/usr/bin/env python3
"""Regenerate every table and figure of the reproduction in one run.

Runs all experiments (E1–E16 and the ablations A1–A4), prints each rendered
artefact, and saves the structured results as JSON under ``results/`` so
they can be diffed across machines or loaded for plotting.

Run:  python examples/reproduce_all.py [output_dir]
(Complete run takes a few minutes on a laptop.)
"""

import sys
import time
from pathlib import Path

from repro.analysis.serialization import save_experiment
from repro.cli import EXPERIMENTS


def main() -> int:
    output_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    output_dir.mkdir(parents=True, exist_ok=True)
    total_start = time.perf_counter()
    for experiment_id in sorted(EXPERIMENTS):
        start = time.perf_counter()
        result = EXPERIMENTS[experiment_id]()
        elapsed = time.perf_counter() - start
        print(result.render())
        path = save_experiment(result, output_dir / f"{experiment_id}.json")
        print(f"[{experiment_id}: {elapsed:.1f}s -> {path}]\n")
    print(f"all experiments regenerated in {time.perf_counter() - total_start:.1f}s")
    print(f"artifacts in {output_dir.resolve()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
