#!/usr/bin/env python3
"""Resilient distributed state estimation (sensing).

Eight sensors each observe one linear projection of a 3-dimensional system
state; two sensors are compromised and report adversarial observations.
Because the sensor network is 2f-sparse observable (equivalently: the
sensing costs are 2f-redundant), the filtered DGD recovers the true state.

Run:  python examples/state_estimation.py
"""

import numpy as np

import repro

N, F, D = 8, 2, 3


def main() -> None:
    instance = repro.make_sensing_instance(n=N, d=D, f=F, noise_std=0.0, seed=11)
    print(f"2f-sparse observable: {instance.is_sparse_observable(F)}")
    print(f"true state x* = {np.round(instance.x_star, 4)}")

    faulty = list(range(F))
    honest = [i for i in range(N) if i not in faulty]

    # The compromised sensors report observations consistent with a rogue
    # state — the hardest, undetectable kind of sensor fault.
    rogue_state = instance.x_star + np.array([5.0, -5.0, 2.0])
    substituted = {
        i: repro.LeastSquaresCost(
            instance.observation_matrices[i],
            instance.observation_matrices[i] @ rogue_state,
        )
        for i in faulty
    }
    behavior = repro.CostSubstitution(substituted)

    rows = []
    for filter_name in ("cge", "cwtm", "average"):
        trace = repro.run_dgd(
            instance.costs, behavior, gradient_filter=filter_name,
            faulty_ids=faulty, iterations=2000, seed=11,
        )
        error = float(np.linalg.norm(trace.final_estimate - instance.x_star))
        rows.append([filter_name, np.round(trace.final_estimate, 4), error])
    centralized = instance.honest_state_estimate(honest)
    rows.append(["(honest least squares)", np.round(centralized, 4),
                 float(np.linalg.norm(centralized - instance.x_star))])

    print(repro.format_table(
        ["estimator", "state estimate", "error"], rows,
        title=f"\nState recovery with {F}/{N} compromised sensors",
    ))


if __name__ == "__main__":
    main()
