#!/usr/bin/env python3
"""Exact fault-tolerance without differentiability.

The paper's characterization — 2f-redundancy is necessary *and* sufficient
for exact fault-tolerance — makes no smoothness assumption; only the
gradient-descent machinery needs differentiable costs. This example runs
the full theory on weighted absolute-deviation (L1) costs, whose aggregate
argmin sets are weighted-median *intervals* (boxes), computed in closed
form:

1. redundancy checking with set-valued (box) argmins;
2. the subset-enumeration algorithm recovering the honest minimizer
   exactly against a Byzantine submission;
3. a case where the argmin set is a genuine box, not a point.

Run:  python examples/nonsmooth_costs.py
"""

import numpy as np

import repro
from repro.optimization.nonsmooth import (
    AbsoluteDeviationCost,
    l1_aggregate_argmin,
    l1_solver,
)


def main() -> None:
    target = np.array([2.0, -1.0])

    # --- 1. Redundancy checking on L1 costs. ---
    identical = [AbsoluteDeviationCost(target) for _ in range(6)]
    spread = [AbsoluteDeviationCost(target + 0.3 * i) for i in range(6)]
    print("identical L1 costs 2f-redundant (f=2):",
          repro.check_2f_redundancy(identical, f=2, solver=l1_solver))
    report = repro.measure_redundancy_margin(spread, f=1, solver=l1_solver)
    print("spread L1 costs:", report.summary())

    # --- 2. Exact recovery via the subset algorithm, no gradients used. ---
    submitted = list(identical)
    submitted[0] = AbsoluteDeviationCost([50.0, 50.0], weight=3.0)
    algorithm = repro.SubsetEnumerationAlgorithm(n=6, f=2, solver=l1_solver)
    result = algorithm.run(submitted)
    print(f"\nByzantine agent pulls toward (50, 50) with triple weight;")
    print(f"subset algorithm output: {np.round(result.output, 6)} "
          f"(honest target {target}, error "
          f"{np.linalg.norm(result.output - target):.2e})")

    # --- 3. A set-valued argmin: even counts give median intervals. ---
    four = [AbsoluteDeviationCost([float(v)]) for v in (0.0, 1.0, 3.0, 4.0)]
    argmin = l1_aggregate_argmin(four)
    print(f"\nargmin of |x|+|x-1|+|x-3|+|x-4| is the interval "
          f"[{argmin.lower[0]}, {argmin.upper[0]}] — a set, not a point; "
          "the library's Hausdorff machinery handles it exactly.")


if __name__ == "__main__":
    main()
