#!/usr/bin/env python3
"""The achievability proof's algorithm, run against a live adversary.

Demonstrates both directions of the paper's characterization:

1. **Achievability** — on a 2f-redundant instance, the subset-enumeration
   algorithm recovers the honest minimizer exactly, whatever cost function
   the Byzantine agent submits.
2. **Necessity** — on a non-redundant instance, we exhibit two
   indistinguishable scenarios that force any deterministic algorithm to be
   wrong in at least one of them.

Run:  python examples/exact_algorithm_demo.py
"""

import numpy as np

import repro


def achievability() -> None:
    print("=== Achievability under 2f-redundancy ===")
    instance = repro.make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=0)
    print(f"2f-redundancy holds: {repro.check_2f_redundancy(instance.costs, 1)}")
    algorithm = repro.SubsetEnumerationAlgorithm(n=6, f=1)
    print(f"(cost: ~{algorithm.estimated_subset_solves()} subset argmin solves)")

    for description, byzantine_cost in [
        ("pull toward (40, -40)", repro.TranslatedQuadratic([40.0, -40.0])),
        ("mimic honest structure, shifted x*", repro.LeastSquaresCost(
            instance.A[0][None, :], (instance.A[0] @ (instance.x_star + 10.0))[None]
        )),
    ]:
        submitted = list(instance.costs)
        submitted[0] = byzantine_cost
        result = algorithm.run(submitted)
        error = float(np.linalg.norm(result.output - instance.x_star))
        print(f"  adversary: {description:<38} output error {error:.2e} "
              f"(selected subset {result.selected_subset})")


def necessity() -> None:
    print("\n=== Necessity: no redundancy, no exactness ===")
    # d=1, three agents at targets 4, 0, 2; f=1. Subsets disagree, so
    # 2f-redundancy fails.
    costs = [repro.TranslatedQuadratic([v]) for v in (4.0, 0.0, 2.0)]
    print(f"2f-redundancy holds: {repro.check_2f_redundancy(costs, 1)}")
    output = repro.SubsetEnumerationAlgorithm(3, 1).run(costs).output
    for honest, label in [([1, 2], "scenario A: agent 0 Byzantine"),
                          ([0, 2], "scenario B: agent 1 Byzantine")]:
        report = repro.evaluate_resilience(output, costs, honest, f=1)
        print(f"  {label}: output {np.round(output, 3)} is "
              f"{'EXACT' if report.exact else f'off by {report.epsilon:.3f}'}")
    print(
        "  The received costs are identical in both scenarios, so a\n"
        "  deterministic algorithm must answer the same — and is therefore\n"
        "  wrong in at least one of them."
    )


if __name__ == "__main__":
    achievability()
    necessity()
