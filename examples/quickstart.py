#!/usr/bin/env python3
"""Quickstart: fault-tolerant distributed optimization in ~40 lines.

Five robots want to agree on a meeting point that minimizes their total
travel cost, but one robot is Byzantine and lies about its gradient. We run
the distributed gradient-descent method with the paper's CGE gradient
filter and compare against unprotected averaging.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro

N, F = 5, 1


def main() -> None:
    # All robots start from (roughly) the same depot: the problem is
    # redundant, so the honest meeting point survives one liar.
    instance = repro.make_meeting_instance(n=N, d=2, spread=0.05, seed=7)
    honest = list(range(1, N))
    target = instance.honest_meeting_point(honest)
    print(f"honest meeting point: {np.round(target, 4)}")

    margin = repro.measure_redundancy_margin(instance.costs, F)
    print(margin.summary())

    for filter_name in ("cge", "average"):
        trace = repro.run_dgd(
            instance.costs,
            repro.RandomGaussian(scale=50.0),  # robot 0 sends garbage vectors
            faulty_ids=[0],
            gradient_filter=filter_name,
            iterations=400,
            seed=0,
        )
        error = repro.final_error(trace, target)
        print(
            f"{filter_name:>8}: reached {np.round(trace.final_estimate, 4)} "
            f"(error {error:.4f})"
        )

    print(
        "\nCGE eliminates the liar's large gradients and lands near the "
        "honest optimum; plain averaging is dragged around by them."
    )


if __name__ == "__main__":
    main()
