#!/usr/bin/env python3
"""The paper's evaluation workload: distributed linear regression under attack.

Recreates the core of the paper's experiments on a laptop:

- builds the n=6, f=1, d=2 regression instance with 2f-redundancy by design
  (plus small observation noise);
- measures the redundancy margin ε and the regularity constants (μ, γ);
- runs filtered DGD under the paper's two fault models (gradient-reverse
  and random) with CGE, CWTM, and plain averaging;
- prints the final-error table and loss/distance sparklines.

Run:  python examples/linear_regression_under_attack.py
"""

import numpy as np

import repro


def main() -> None:
    instance = repro.paper_instance()
    faulty = [0]
    honest = [i for i in range(instance.n) if i not in faulty]
    x_H = instance.honest_minimizer(honest)

    report = repro.measure_redundancy_margin(instance.costs, f=len(faulty))
    constants = repro.regularity_of_quadratics(instance.costs, f=len(faulty))
    print(report.summary())
    print(f"regularity: mu={constants.mu:.4g}, gamma={constants.gamma:.4g}")
    print(f"honest minimizer x_H = {np.round(x_H, 4)}\n")

    x0 = np.array([-0.0085, -0.5643])  # the paper's initial estimate
    rows = []
    series = {}
    for attack_name in ("gradient-reverse", "random"):
        for filter_name in ("cge", "cwtm", "average"):
            trace = repro.run_dgd(
                instance.costs,
                repro.make_attack(attack_name),
                gradient_filter=filter_name,
                faulty_ids=faulty,
                iterations=500,
                seed=20200803,
                x0=x0,
            )
            rows.append(
                [filter_name, attack_name,
                 np.round(trace.final_estimate, 4),
                 repro.final_error(trace, x_H)]
            )
            series[f"{filter_name}+{attack_name}"] = trace.distances_to(x_H)

    print(repro.format_table(
        ["filter", "attack", "x_out", "dist(x_H, x_out)"], rows,
        title="Final errors after 500 iterations",
    ))
    print("\ndistance-to-x_H trajectories (log scale):")
    for name, values in series.items():
        print(repro.format_series(name, values))


if __name__ == "__main__":
    main()
