#!/usr/bin/env python3
"""Byzantine-robust distributed learning on synthetic data.

Ten agents hold local two-class datasets; three are Byzantine. We train a
linear classifier with filtered distributed gradient descent and compare
test accuracy under a data-level label-flip attack and an amplified
sign-flip attack, in both the i.i.d. (redundant) and heterogeneous
regimes.

Run:  python examples/distributed_learning.py
"""

import repro
from repro.optimization.step_sizes import DiminishingStepSize
from repro.problems.learning import label_flip_attack

N, F, D = 10, 3, 5


def train(instance, behavior, filter_name, faulty_ids, schedule):
    trace = repro.run_dgd(
        instance.costs,
        behavior,
        gradient_filter=filter_name,
        faulty_ids=faulty_ids,
        iterations=300,
        step_sizes=schedule,
        seed=3,
    )
    return instance.accuracy(trace.final_estimate)


def main() -> None:
    schedule = DiminishingStepSize(c=2.0, t0=5.0)
    faulty_ids = tuple(range(F))
    rows = []
    for heterogeneity in (0.0, 0.5):
        instance = repro.make_learning_instance(
            n=N, d=D, samples_per_agent=30, heterogeneity=heterogeneity,
            regularization=0.05, seed=3,
        )
        honest = [i for i in range(N) if i not in faulty_ids]
        reference = repro.run_dgd(
            [instance.costs[i] for i in honest], None,
            gradient_filter="average", iterations=300,
            step_sizes=schedule, seed=3,
        )
        rows.append([heterogeneity, "fault-free", "(none)",
                     instance.accuracy(reference.final_estimate)])
        attacks = {
            "label-flip": label_flip_attack(instance, faulty_ids),
            "sign-flip x5": repro.SignFlip(strength=5.0),
        }
        for attack_name, behavior in attacks.items():
            for filter_name in ("cge", "cwtm", "average"):
                accuracy = train(instance, behavior, filter_name, faulty_ids, schedule)
                rows.append([heterogeneity, filter_name, attack_name, accuracy])

    print(repro.format_table(
        ["heterogeneity", "filter", "attack", "test accuracy"], rows,
        title=f"Distributed learning with {F}/{N} Byzantine agents",
    ))
    print(
        "\nIn the i.i.d. (redundant) regime the robust filters match the "
        "fault-free accuracy; plain averaging collapses under the amplified "
        "sign-flip. Heterogeneity (weaker redundancy) costs every filter "
        "some headroom — the paper's redundancy/accuracy trade-off."
    )


if __name__ == "__main__":
    main()
